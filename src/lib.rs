//! Umbrella crate for the Bismarck reproduction.
//!
//! Re-exports every workspace crate under one roof so downstream users
//! (and this package's own `tests/` and `examples/`) can depend on a
//! single `bismarck` crate. See the workspace `README.md` for the crate
//! map and the role each member plays in the paper's architecture.

pub use bismarck_baselines as baselines;
pub use bismarck_core as core;
pub use bismarck_datagen as datagen;
pub use bismarck_linalg as linalg;
pub use bismarck_sql as sql;
pub use bismarck_storage as storage;
pub use bismarck_uda as uda;
