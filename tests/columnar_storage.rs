//! Columnar chunked storage: text-format round-trip identity, scan
//! equivalence against the row-store, and out-of-core training.
//!
//! Three claims are pinned here:
//!
//! 1. `table_to_string` → `table_from_str` is the identity for every value
//!    the storage layer can hold — including adversarial TEXT payloads full
//!    of delimiters, quotes, newlines and `#` — and renders the *same* bytes
//!    whether the rows live in a row-store `Table` or a `ColumnarTable`.
//! 2. Every `TupleScan` order (clustered, permuted, range) over a columnar
//!    table yields tuple-for-tuple the same sequence as the row-store.
//! 3. An epoch-based trainer run over a **paged** columnar table whose
//!    segment cache is far smaller than the dataset produces bit-identical
//!    models to the same run over the in-memory row-store, for both
//!    Clustered and ShuffleOnce scan orders.

use bismarck_core::tasks::SvmTask;
use bismarck_core::{Trainer, TrainerConfig};
use bismarck_storage::csv::{table_from_str, tuples_to_string};
use bismarck_storage::{
    Column, ColumnarTable, DataType, ScanOrder, Schema, Table, TupleScan, Value,
};
use bismarck_uda::ConvergenceTest;
use proptest::prelude::*;

fn mixed_schema() -> Schema {
    Schema::new(vec![
        Column::nullable("id", DataType::Int),
        Column::nullable("x", DataType::Double),
        Column::nullable("note", DataType::Text),
        Column::nullable("vec", DataType::DenseVec),
    ])
    .unwrap()
}

/// One nullable value per column of [`mixed_schema`]. TEXT draws from the
/// full printable-ASCII-plus-control alphabet, so quotes, commas,
/// semicolons, leading `#` and embedded newlines all occur.
fn row_strategy() -> impl Strategy<Value = Vec<Value>> {
    (
        prop_oneof![
            prop::sample::select(vec![Value::Null]),
            (-1_000_000i64..1_000_000).prop_map(Value::Int),
        ],
        prop_oneof![
            prop::sample::select(vec![Value::Null]),
            (-1e6f64..1e6).prop_map(Value::Double),
        ],
        prop_oneof![
            prop::sample::select(vec![Value::Null]),
            ".{0,12}".prop_map(Value::Text),
            prop::sample::select(vec![
                "null".to_string(),
                "NULL".to_string(),
                String::new(),
                "#comment?".to_string(),
                "a,b;c\"d\\e".to_string(),
                "line\nbreak".to_string(),
            ])
            .prop_map(Value::Text),
        ],
        prop_oneof![
            prop::sample::select(vec![Value::Null]),
            prop::collection::vec(-100.0f64..100.0, 1..4).prop_map(Value::from),
        ],
    )
        .prop_map(|(a, b, c, d)| vec![a, b, c, d])
}

fn build_both(rows: &[Vec<Value>], chunk_capacity: usize) -> (Table, ColumnarTable) {
    let mut table = Table::new("t", mixed_schema());
    let mut columnar = ColumnarTable::with_chunk_capacity("t", mixed_schema(), chunk_capacity);
    for row in rows {
        table.insert(row.clone()).unwrap();
        columnar.insert(row.clone()).unwrap();
    }
    (table, columnar)
}

fn all_tuples<S: TupleScan + ?Sized>(source: &S) -> Vec<Vec<Value>> {
    let mut out = Vec::new();
    source.scan_tuples(&mut |t| out.push(t.values().to_vec()));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `table_to_string` → `table_from_str` is the identity, and the rendered
    /// text is byte-identical between row-store and columnar sources.
    #[test]
    fn text_format_roundtrips_row_and_columnar(
        rows in prop::collection::vec(row_strategy(), 0..24),
        chunk in 1usize..6,
    ) {
        let (table, columnar) = build_both(&rows, chunk);
        let text = tuples_to_string(&table);
        // The rendered text must not depend on the physical layout.
        prop_assert_eq!(&text, &tuples_to_string(&columnar));

        // And parsing it back must be the identity.
        let back = table_from_str("t", mixed_schema(), &text).unwrap();
        let restored = all_tuples(&back);
        prop_assert_eq!(restored, rows);
    }

    /// Clustered, permuted and range scans over a columnar table are
    /// tuple-for-tuple identical to the row-store scans.
    #[test]
    fn scan_orders_match_row_store(
        rows in prop::collection::vec(row_strategy(), 1..40),
        chunk in 1usize..8,
        seed in 0u64..1000,
        bounds in (0usize..45, 0usize..45),
    ) {
        let (table, columnar) = build_both(&rows, chunk);

        prop_assert_eq!(all_tuples(&table), all_tuples(&columnar));

        // A permutation with some out-of-range ids sprinkled in: both
        // scans must visit valid ids in order and skip the rest.
        let mut order: Vec<usize> = (0..rows.len()).collect();
        // Deterministic Fisher-Yates on the seed, no external RNG needed.
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        for i in (1..order.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        order.push(rows.len() + 3); // invalid id: skipped by both
        let mut from_row = Vec::new();
        table.scan_tuples_permuted(&order, &mut |t| from_row.push(t.values().to_vec()));
        let mut from_col = Vec::new();
        columnar.scan_tuples_permuted(&order, &mut |t| from_col.push(t.values().to_vec()));
        prop_assert_eq!(from_row, from_col);

        let (start, end) = bounds;
        let mut from_row = Vec::new();
        table.scan_tuples_range(start, end, &mut |t| from_row.push(t.values().to_vec()));
        let mut from_col = Vec::new();
        columnar.scan_tuples_range(start, end, &mut |t| from_col.push(t.values().to_vec()));
        prop_assert_eq!(from_row, from_col);
    }
}

/// Out-of-core acceptance: training an SVM over a paged columnar table whose
/// chunk cache holds a fraction of the segments produces **bit-identical**
/// models to the in-memory row-store, under both Clustered and ShuffleOnce.
#[test]
fn paged_training_is_bit_identical_to_row_store() {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("vec", DataType::DenseVec),
        Column::new("label", DataType::Double),
    ])
    .unwrap();

    const ROWS: usize = 3_000;
    const CHUNK: usize = 128; // ~24 segments
    const CACHE: usize = 3; // far fewer than the sealed segment count

    let mut table = Table::new("d", schema.clone());
    for i in 0..ROWS {
        let y = if i % 2 == 0 { 1.0 } else { -1.0 };
        let noise = ((i * 37) % 101) as f64 / 101.0 - 0.5;
        table
            .insert(vec![
                Value::Int(i as i64),
                Value::from(vec![y * 2.0 + noise, -y + noise, noise]),
                Value::Double(y),
            ])
            .unwrap();
    }

    let dir =
        std::env::temp_dir().join(format!("bismarck_paged_train_test_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut paged = ColumnarTable::create_paged("d", schema, &dir, CHUNK, CACHE).unwrap();
    for tuple in table.scan() {
        paged.insert(tuple.values().to_vec()).unwrap();
    }
    paged.flush().unwrap();
    assert!(
        paged.segment_count() > CACHE * 4,
        "dataset must dwarf the chunk cache for this test to mean anything"
    );

    let task = SvmTask::new(1, 2, 3);
    for order in [ScanOrder::Clustered, ScanOrder::ShuffleOnce { seed: 7 }] {
        let config = TrainerConfig::default()
            .with_scan_order(order)
            .with_convergence(ConvergenceTest::FixedEpochs(6));
        let from_rows = Trainer::new(&task, config.clone()).train(&table);
        let from_paged = Trainer::new(&task, config).train(&paged);
        let row_bits: Vec<u64> = from_rows.model.iter().map(|w| w.to_bits()).collect();
        let paged_bits: Vec<u64> = from_paged.model.iter().map(|w| w.to_bits()).collect();
        assert_eq!(
            row_bits, paged_bits,
            "paged columnar training diverged from row-store under {order:?}"
        );
        assert!(from_rows.model.iter().any(|w| *w != 0.0));
    }

    // The scan genuinely paged: the cache saw misses and evictions.
    let stats = paged.pager_stats().unwrap();
    assert!(stats.misses > 0, "expected paging activity: {stats:?}");
    assert!(stats.evictions > 0, "expected evictions: {stats:?}");

    std::fs::remove_dir_all(&dir).ok();
}

/// A paged table reopened from disk serves the same tuples it was built
/// with — the scan surface works straight off the on-disk segments.
#[test]
fn reopened_paged_table_scans_identically() {
    let schema = mixed_schema();
    let dir =
        std::env::temp_dir().join(format!("bismarck_paged_reopen_test_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut paged = ColumnarTable::create_paged("t", schema.clone(), &dir, 4, 2).unwrap();
    let rows: Vec<Vec<Value>> = (0..37)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Double(i as f64 * 0.5),
                Value::Text(format!("row #{i}, \"quoted\"\nline")),
                Value::from(vec![i as f64, -(i as f64)]),
            ]
        })
        .collect();
    for row in &rows {
        paged.insert(row.clone()).unwrap();
    }
    paged.flush().unwrap();
    drop(paged);

    let reopened = ColumnarTable::open_paged(&dir, 2).unwrap();
    assert_eq!(reopened.len(), rows.len());
    assert_eq!(all_tuples(&reopened), rows);

    std::fs::remove_dir_all(&dir).ok();
}
