//! Property-based integration tests on cross-crate invariants.

use bismarck_core::igd::IgdAggregate;
use bismarck_core::task::IgdTask;
use bismarck_core::tasks::{LeastSquaresTask, LogisticRegressionTask, PortfolioTask, SvmTask};
use bismarck_core::{StepSizeSchedule, Trainer, TrainerConfig};
use bismarck_storage::{Column, DataType, ScanOrder, Schema, Table, Value};
use bismarck_uda::{run_segmented, run_sequential, ConvergenceTest};
use proptest::prelude::*;

/// Build a small dense classification table from generated rows.
fn table_from_rows(rows: &[(Vec<f64>, f64)]) -> Table {
    let schema = Schema::new(vec![
        Column::new("vec", DataType::DenseVec),
        Column::new("label", DataType::Double),
    ])
    .unwrap();
    let mut t = Table::new("prop", schema);
    for (x, y) in rows {
        t.insert(vec![Value::from(x.clone()), Value::Double(*y)])
            .unwrap();
    }
    t
}

fn rows_strategy(dim: usize, max_rows: usize) -> impl Strategy<Value = Vec<(Vec<f64>, f64)>> {
    prop::collection::vec(
        (
            prop::collection::vec(-3.0f64..3.0, dim..=dim),
            prop::sample::select(vec![-1.0f64, 1.0]),
        ),
        1..max_rows,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One IGD epoch never produces NaN/inf for LR or SVM with a sane step.
    #[test]
    fn igd_epoch_keeps_model_finite(rows in rows_strategy(4, 40), alpha in 0.001f64..0.5) {
        let table = table_from_rows(&rows);
        let lr = LogisticRegressionTask::new(0, 1, 4);
        let svm = SvmTask::new(0, 1, 4);
        for model in [
            run_sequential(&IgdAggregate::new(&lr, alpha, lr.initial_model()), &table, None).model.into_vec(),
            run_sequential(&IgdAggregate::new(&svm, alpha, svm.initial_model()), &table, None).model.into_vec(),
        ] {
            prop_assert!(model.iter().all(|v| v.is_finite()));
        }
    }

    /// The objective after one epoch of least squares with a small step never
    /// increases relative to the starting model (descent on average).
    #[test]
    fn small_step_least_squares_does_not_blow_up(rows in rows_strategy(3, 30)) {
        let table = table_from_rows(&rows);
        let task = LeastSquaresTask::new(0, 1, 3);
        let before: f64 = table.scan().map(|t| task.example_loss(&[0.0; 3], t)).sum();
        let out = run_sequential(&IgdAggregate::new(&task, 0.01, vec![0.0; 3]), &table, None);
        let model = out.model.into_vec();
        let after: f64 = table.scan().map(|t| task.example_loss(&model, t)).sum();
        prop_assert!(after <= before * 1.01 + 1e-9, "after {} before {}", after, before);
    }

    /// Segmented (shared-nothing) execution counts every tuple exactly once
    /// no matter how many segments are used.
    #[test]
    fn segmented_execution_visits_every_tuple(rows in rows_strategy(3, 60), segments in 1usize..12) {
        let table = table_from_rows(&rows);
        let task = LeastSquaresTask::new(0, 1, 3);
        let agg = IgdAggregate::new(&task, 0.01, vec![0.0; 3]);
        let out = run_segmented(&agg, &table, segments);
        prop_assert_eq!(out.steps as usize, table.len());
    }

    /// Whatever the returns data looks like, the portfolio allocation stays
    /// on the probability simplex after every epoch.
    #[test]
    fn portfolio_allocation_stays_feasible(
        days in prop::collection::vec(prop::collection::vec(-0.2f64..0.2, 3..=3), 1..40),
        gamma in 0.0f64..20.0,
    ) {
        let schema = Schema::new(vec![Column::new("returns", DataType::DenseVec)]).unwrap();
        let mut table = Table::new("returns", schema);
        for r in &days {
            table.insert(vec![Value::from(r.clone())]).unwrap();
        }
        let expected = vec![0.05, 0.02, 0.03];
        let task = PortfolioTask::new(0, expected.clone(), expected, gamma, days.len());
        let out = run_sequential(&IgdAggregate::new(&task, 0.1, task.initial_model()), &table, None);
        let w = out.model.into_vec();
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        prop_assert!(w.iter().all(|&v| v >= -1e-9));
    }

    /// Scan-order permutations are always valid permutations of the row ids.
    #[test]
    fn scan_orders_produce_valid_permutations(len in 0usize..200, seed in 0u64..1000, epoch in 0usize..5) {
        for order in [ScanOrder::ShuffleOnce { seed }, ScanOrder::ShuffleAlways { seed }] {
            let perm = order.permutation(len, epoch).unwrap();
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
        }
        prop_assert!(ScanOrder::Clustered.permutation(len, epoch).is_none());
    }

    /// Training is invariant to how rows are split across segments when the
    /// model averaging weights are proportional to segment sizes: the merged
    /// step count equals the table size and the merged model stays finite.
    #[test]
    fn merge_is_well_behaved_for_any_segmentation(rows in rows_strategy(4, 50), segments in 1usize..10) {
        let table = table_from_rows(&rows);
        let task = LogisticRegressionTask::new(0, 1, 4);
        let agg = IgdAggregate::new(&task, 0.1, task.initial_model());
        let out = run_segmented(&agg, &table, segments);
        prop_assert_eq!(out.steps as usize, table.len());
        prop_assert!(out.model.as_slice().iter().all(|v| v.is_finite()));
    }

    /// Checkpoint/resume is bit-compatible: for any split point, checkpoint
    /// cadence, scan order and step-size schedule, a run stopped after
    /// `split` epochs and resumed from its checkpoint produces exactly the
    /// model (and loss trajectory) of an uninterrupted run.
    #[test]
    fn checkpoint_resume_is_bit_compatible(
        rows in rows_strategy(3, 40),
        seed in 0u64..500,
        split in 1usize..6,
        every in 1usize..4,
        order_kind in 0usize..3,
        schedule_kind in 0usize..3,
    ) {
        let table = table_from_rows(&rows);
        let task = LogisticRegressionTask::new(0, 1, 3);
        let total = 7usize;
        let split = split.min(total - 1);
        // Only cadences that actually produce a checkpoint at `split` allow
        // an exact cut there.
        let every = if split % every == 0 { every } else { 1 };
        let order = match order_kind {
            0 => ScanOrder::Clustered,
            1 => ScanOrder::ShuffleOnce { seed },
            _ => ScanOrder::ShuffleAlways { seed },
        };
        let schedule = match schedule_kind {
            0 => StepSizeSchedule::Constant(0.05),
            1 => StepSizeSchedule::Diminishing { initial: 0.1 },
            _ => StepSizeSchedule::Geometric { initial: 0.1, decay: 0.8 },
        };
        let base = TrainerConfig::default()
            .with_step_size(schedule)
            .with_scan_order(order);

        let full = Trainer::new(&task, base.clone().with_convergence(ConvergenceTest::FixedEpochs(total)))
            .train(&table);

        let path = std::env::temp_dir().join(format!(
            "bismarck_prop_{}_{seed}_{split}_{every}_{order_kind}_{schedule_kind}.ckpt",
            std::process::id()
        ));
        Trainer::new(
            &task,
            base.clone()
                .with_convergence(ConvergenceTest::FixedEpochs(split))
                .with_checkpoints(&path, every),
        )
        .train(&table);
        let resumed = Trainer::new(
            &task,
            base.with_convergence(ConvergenceTest::FixedEpochs(total)),
        )
        .resume_from(&table, &path);
        let _ = std::fs::remove_file(&path);
        let resumed = resumed.expect("resume from checkpoint");
        prop_assert_eq!(resumed.model, full.model);
        prop_assert_eq!(resumed.history.losses(), full.history.losses());
    }
}
