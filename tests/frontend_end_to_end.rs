//! Integration test: the SQL-style front-end round trip — train via
//! `*_train`, persist the model as a table, reload it, predict, and verify
//! quality — across the storage, UDA, core and datagen crates.

use bismarck_core::frontend::{
    infer_dimension, linear_predict, load_model, logistic_predict, logistic_regression_train,
    persist_model, svm_predict, svm_train,
};
use bismarck_core::metrics::{classification_accuracy, rmse};
use bismarck_core::{StepSizeSchedule, TrainerConfig};
use bismarck_datagen::{
    dense_classification, sparse_classification, DenseClassificationConfig,
    SparseClassificationConfig,
};
use bismarck_storage::{Database, ScanOrder};
use bismarck_uda::ConvergenceTest;

fn fast_config() -> TrainerConfig {
    TrainerConfig::default()
        .with_scan_order(ScanOrder::ShuffleOnce { seed: 3 })
        .with_step_size(StepSizeSchedule::Constant(0.3))
        .with_convergence(ConvergenceTest::FixedEpochs(12))
}

fn dense_db(n: usize) -> Database {
    let mut db = Database::new();
    db.register_table(dense_classification(
        "train",
        DenseClassificationConfig {
            examples: n,
            dimension: 12,
            separation: 2.0,
            ..Default::default()
        },
    ))
    .unwrap();
    db
}

#[test]
fn svm_round_trip_reaches_high_accuracy() {
    let mut db = dense_db(1_500);
    let summary = svm_train(&mut db, "svm_model", "train", "vec", "label", fast_config()).unwrap();
    assert_eq!(summary.dimension, 12);
    assert!(db.contains("svm_model"));
    assert_eq!(db.table("svm_model").unwrap().len(), 12);

    let preds = svm_predict(&db, "svm_model", "train", "vec").unwrap();
    let labels: Vec<f64> = db
        .table("train")
        .unwrap()
        .scan()
        .map(|t| t.get_double(2).unwrap())
        .collect();
    assert!(classification_accuracy(&preds, &labels) > 0.9);
}

#[test]
fn logistic_round_trip_on_sparse_data() {
    let mut db = Database::new();
    db.register_table(sparse_classification(
        "papers",
        SparseClassificationConfig {
            examples: 1_200,
            vocabulary: 4_000,
            ..Default::default()
        },
    ))
    .unwrap();
    let summary =
        logistic_regression_train(&mut db, "lr_model", "papers", "vec", "label", fast_config())
            .unwrap();
    assert!(summary.final_loss.is_finite());
    assert_eq!(
        summary.dimension,
        infer_dimension(db.table("papers").unwrap(), 1)
    );

    let probs = logistic_predict(&db, "lr_model", "papers", "vec").unwrap();
    assert_eq!(probs.len(), 1_200);
    assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
    let labels: Vec<f64> = db
        .table("papers")
        .unwrap()
        .scan()
        .map(|t| t.get_double(2).unwrap())
        .collect();
    let hard: Vec<f64> = probs
        .iter()
        .map(|&p| if p > 0.5 { 1.0 } else { -1.0 })
        .collect();
    assert!(classification_accuracy(&hard, &labels) > 0.85);
}

#[test]
fn persisted_model_reload_is_exact() {
    let mut db = dense_db(200);
    svm_train(&mut db, "m", "train", "vec", "label", fast_config()).unwrap();
    let loaded = load_model(&db, "m").unwrap();
    // Re-persist under a new name and reload — must be identical.
    persist_model(&mut db, "m2", &loaded).unwrap();
    let reloaded = load_model(&db, "m2").unwrap();
    assert_eq!(loaded, reloaded);
    assert!(rmse(&loaded, &reloaded) < 1e-15);
}

#[test]
fn linear_predict_matches_manual_dot_products() {
    let mut db = dense_db(100);
    svm_train(&mut db, "m", "train", "vec", "label", fast_config()).unwrap();
    let model = load_model(&db, "m").unwrap();
    let preds = linear_predict(&db, "m", "train", "vec").unwrap();
    for (tuple, pred) in db.table("train").unwrap().scan().zip(preds.iter()) {
        let manual = tuple.feature_view(1).unwrap().dot(&model);
        assert!((manual - pred).abs() < 1e-12);
    }
}

#[test]
fn training_on_same_data_twice_is_deterministic() {
    let mut db1 = dense_db(400);
    let mut db2 = dense_db(400);
    svm_train(&mut db1, "m", "train", "vec", "label", fast_config()).unwrap();
    svm_train(&mut db2, "m", "train", "vec", "label", fast_config()).unwrap();
    assert_eq!(
        load_model(&db1, "m").unwrap(),
        load_model(&db2, "m").unwrap()
    );
}
