//! Resource-governance integration tests: deadlines, cooperative
//! cancellation, memory budgets, admission control and graceful shutdown,
//! exercised across the SQL, training and serving layers.
//!
//! Three layers of coverage:
//!
//! * deadline/cancel semantics — a guard tripping mid-run ends training at
//!   the next epoch boundary with `TrainError::Interrupted` (carrying a
//!   finite last-good model) under every parallelization discipline, and
//!   ends SQL statements with typed `SqlError::Timeout` / `Cancelled`
//!   without poisoning the session;
//! * memory budgets — an oversized materialization is rejected with
//!   `SqlError::MemoryBudget`, the reservation is returned, and the next
//!   statement runs normally;
//! * graceful shutdown — `Governor::shutdown` drains in-flight guards,
//!   `SqlSession::shutdown` persists last-published serving models and
//!   compacts the durable catalog; with `--features fault-injection`, a
//!   crash at *every* byte-level fault point inside shutdown still leaves a
//!   catalog that recovers to a consistent state.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use bismarck_core::governor::{AdmissionError, Governor, QueryGuard, QueryLimits};
use bismarck_core::serving::{ModelHandle, ServingTask};
use bismarck_core::tasks::LogisticRegressionTask;
use bismarck_core::{
    ParallelStrategy, ParallelTrainer, StepSizeSchedule, TrainError, Trainer, TrainerConfig,
    UpdateDiscipline,
};
use bismarck_datagen::{dense_classification, DenseClassificationConfig};
use bismarck_sql::{SqlError, SqlSession};
use bismarck_storage::{Table, Value};
use bismarck_uda::ConvergenceTest;

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("bismarck-governance-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn data(n: usize) -> Table {
    dense_classification(
        "gov",
        DenseClassificationConfig {
            examples: n,
            dimension: 4,
            ..Default::default()
        },
    )
}

fn config(epochs: usize) -> TrainerConfig {
    TrainerConfig::default()
        .with_step_size(StepSizeSchedule::Constant(0.1))
        .with_convergence(ConvergenceTest::FixedEpochs(epochs))
}

/// A guard whose deadline has already passed: the very first check trips,
/// making guard-path tests deterministic (no sleeps, no timing races).
fn expired_guard() -> QueryGuard {
    QueryGuard::new(QueryLimits::none().with_deadline(Instant::now() - Duration::from_millis(1)))
}

// ---------------------------------------------------------------------------
// Training: deadlines and cancellation end runs at epoch boundaries.
// ---------------------------------------------------------------------------

#[test]
fn expired_deadline_interrupts_sequential_training_with_last_good_model() {
    let table = data(120);
    let task = LogisticRegressionTask::new(1, 2, 4);
    let err = Trainer::new(&task, config(50).with_guard(expired_guard()))
        .try_train(&table)
        .unwrap_err();
    let TrainError::Interrupted { epoch, last_good } = err else {
        panic!("expected Interrupted, got {err:?}");
    };
    assert_eq!(epoch, 0, "pre-expired deadline must stop before epoch 1");
    assert!(last_good.model.iter().all(|v| v.is_finite()));
}

#[test]
fn deadline_mid_run_interrupts_every_parallel_discipline() {
    let table = data(300);
    for strategy in [
        ParallelStrategy::PureUda { segments: 4 },
        ParallelStrategy::SharedMemory {
            workers: 4,
            discipline: UpdateDiscipline::Lock,
        },
        ParallelStrategy::SharedMemory {
            workers: 4,
            discipline: UpdateDiscipline::Aig,
        },
        ParallelStrategy::SharedMemory {
            workers: 4,
            discipline: UpdateDiscipline::NoLock,
        },
    ] {
        let task = LogisticRegressionTask::new(1, 2, 4);
        // Short real deadline with an epoch budget far beyond it: the run
        // must end early, at an epoch boundary, with a usable model.
        let guard = QueryGuard::new(QueryLimits::none().with_timeout(Duration::from_millis(30)));
        let started = Instant::now();
        let err = ParallelTrainer::new(&task, config(1_000_000).with_guard(guard), strategy)
            .try_train(&table)
            .unwrap_err();
        let elapsed = started.elapsed();
        let TrainError::Interrupted { epoch, last_good } = err else {
            panic!("[{}] expected Interrupted, got {err:?}", strategy.label());
        };
        assert!(
            epoch < 1_000_000,
            "[{}] run was not cut short",
            strategy.label()
        );
        assert!(
            last_good.model.iter().all(|v| v.is_finite()),
            "[{}] last-good model must be finite",
            strategy.label()
        );
        // Generous bound: "near the deadline" means seconds, not the full
        // million-epoch run (which would take minutes).
        assert!(
            elapsed < Duration::from_secs(30),
            "[{}] took {elapsed:?}, guard did not fire",
            strategy.label()
        );
    }
}

#[test]
fn cancelling_a_guard_clone_stops_training() {
    let table = data(200);
    let task = LogisticRegressionTask::new(1, 2, 4);
    let guard = QueryGuard::unlimited();
    let remote = guard.clone();
    remote.cancel(); // any clone reaches the shared flag
    let err = Trainer::new(&task, config(50).with_guard(guard))
        .try_train(&table)
        .unwrap_err();
    assert!(matches!(err, TrainError::Interrupted { .. }), "got {err:?}");
}

// ---------------------------------------------------------------------------
// SQL: typed governance errors, sessions stay usable.
// ---------------------------------------------------------------------------

#[test]
fn fifty_ms_deadline_times_out_a_training_statement_near_the_deadline() {
    let mut session = SqlSession::with_seed(5);
    session.register_table(data(500)).unwrap();

    let guard = QueryGuard::new(QueryLimits::none().with_timeout(Duration::from_millis(50)));
    let started = Instant::now();
    // An epoch budget this large would run for minutes unguarded.
    let err = session
        .execute_with(
            "SELECT SVMTrain('m', 'gov', 'vec', 'label', 0.1, 1000000)",
            &guard,
        )
        .unwrap_err();
    let elapsed = started.elapsed();
    assert_eq!(err, SqlError::Timeout, "got {err:?}");
    assert!(
        elapsed < Duration::from_secs(30),
        "statement ran {elapsed:?} past a 50ms deadline"
    );
    // The failed run persisted nothing and the session still works.
    assert!(!session.database().contains("m"));
    session
        .execute("SELECT SVMTrain('m', 'gov', 'vec', 'label', 0.1, 2)")
        .expect("unguarded statement after a timeout");
    assert!(session.database().contains("m"));
}

#[test]
fn expired_deadline_times_out_scans_and_cancel_surfaces_cancelled() {
    let mut session = SqlSession::with_seed(6);
    session.register_table(data(100)).unwrap();

    let err = session
        .execute_with("SELECT COUNT(*) FROM gov", &expired_guard())
        .unwrap_err();
    assert_eq!(err, SqlError::Timeout);

    let cancelled = QueryGuard::unlimited();
    cancelled.cancel();
    let err = session
        .execute_with("SELECT COUNT(*) FROM gov", &cancelled)
        .unwrap_err();
    assert_eq!(err, SqlError::Cancelled);

    // Cancellation wins over an expired deadline (matches the governor's
    // check order), and the session is unaffected either way.
    let both = expired_guard();
    both.cancel();
    let err = session
        .execute_with("SELECT COUNT(*) FROM gov", &both)
        .unwrap_err();
    assert_eq!(err, SqlError::Cancelled);
    let n = session.execute("SELECT COUNT(*) FROM gov").unwrap();
    assert_eq!(n.single_value(), Some(&Value::Int(100)));
}

#[test]
fn memory_budget_rejects_oversized_ctas_without_poisoning_the_session() {
    let mut session = SqlSession::with_seed(7);
    session.register_table(data(500)).unwrap();

    // 500 rows of 4-dim dense vectors is far beyond 1 KiB.
    let tight = QueryGuard::new(QueryLimits::none().with_memory_limit(1024));
    let err = session
        .execute_with("CREATE TABLE gov_copy AS SELECT * FROM gov", &tight)
        .unwrap_err();
    let SqlError::MemoryBudget(exceeded) = err else {
        panic!("expected MemoryBudget, got {err:?}");
    };
    assert_eq!(exceeded.limit, 1024);
    assert!(!session.database().contains("gov_copy"), "no partial CTAS");
    // The failed statement returned its reservation to the budget...
    assert_eq!(tight.budget().reserved(), 0);
    // ...so a statement that fits still runs under the same guard,
    let small = session
        .execute_with("SELECT COUNT(*) FROM gov WHERE id < 3", &tight)
        .unwrap();
    assert_eq!(small.single_value(), Some(&Value::Int(3)));
    // and an unguarded CTAS of the same shape succeeds.
    session
        .execute("CREATE TABLE gov_copy AS SELECT * FROM gov")
        .unwrap();
    let n = session.execute("SELECT COUNT(*) FROM gov_copy").unwrap();
    assert_eq!(n.single_value(), Some(&Value::Int(500)));
}

#[test]
fn cancelled_multi_batch_insert_leaves_a_recoverable_durable_catalog() {
    let dir = temp_dir("cancel-insert");
    {
        let mut session = SqlSession::open(&dir).unwrap();
        session
            .execute_script(
                "CREATE TABLE t (id INT);
                 INSERT INTO t VALUES (1), (2), (3);",
            )
            .unwrap();

        // A cancelled guard stops the next INSERT before any row reaches
        // the WAL: the statement's materialization phase checks the guard
        // ahead of the storage write, so the batch is all-or-nothing.
        let cancelled = QueryGuard::unlimited();
        cancelled.cancel();
        let err = session
            .execute_with("INSERT INTO t VALUES (4), (5), (6), (7)", &cancelled)
            .unwrap_err();
        assert_eq!(err, SqlError::Cancelled);

        // The session keeps working after the cancellation.
        session.execute("INSERT INTO t VALUES (8)").unwrap();
    }

    // Reopen: recovery must see exactly the acknowledged rows — the
    // cancelled batch contributes nothing, the later insert survives.
    let mut session = SqlSession::open(&dir).unwrap();
    let report = session.recovery_report().unwrap().clone();
    assert_eq!(report.bytes_truncated, 0, "no torn tail: {report}");
    let ids: Vec<i64> = session
        .execute("SELECT id FROM t ORDER BY id")
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .collect();
    assert_eq!(ids, vec![1, 2, 3, 8]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn copy_racing_a_cancel_is_atomic_in_the_durable_catalog() {
    let dir = temp_dir("cancel-copy");
    let csv_path = dir.with_extension("csv");
    {
        let mut session = SqlSession::open(&dir).unwrap();
        session.execute("CREATE TABLE t (id INT)").unwrap();
        let mut csv = String::new();
        for i in 0..5_000 {
            csv.push_str(&format!("{i}\n"));
        }
        std::fs::write(&csv_path, csv).unwrap();

        // Cancel from another thread while COPY runs: whichever side wins,
        // the catalog must hold all 5000 rows or none of them.
        let guard = QueryGuard::unlimited();
        let remote = guard.clone();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            remote.cancel();
        });
        let result = session.execute_with(
            &format!("COPY t FROM '{}'", csv_path.to_str().unwrap()),
            &guard,
        );
        canceller.join().unwrap();
        match result {
            Ok(_) => {}
            Err(SqlError::Cancelled) => {}
            Err(other) => panic!("expected success or Cancelled, got {other:?}"),
        }
    }

    let mut session = SqlSession::open(&dir).unwrap();
    let n = session
        .execute("SELECT COUNT(*) FROM t")
        .unwrap()
        .single_value()
        .unwrap()
        .as_int()
        .unwrap();
    assert!(
        n == 0 || n == 5_000,
        "COPY must be all-or-nothing under cancellation, found {n} rows"
    );
    std::fs::remove_file(&csv_path).ok();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Admission control and shutdown.
// ---------------------------------------------------------------------------

#[test]
fn admission_sheds_excess_statements_and_frees_slots_on_drop() {
    let governor = Governor::new(2);
    let g1 = governor.admit(QueryLimits::none()).unwrap();
    let _g2 = governor.admit(QueryLimits::none()).unwrap();
    let err = governor.admit(QueryLimits::none()).unwrap_err();
    let AdmissionError::Shed {
        active,
        max_concurrent,
    } = err
    else {
        panic!("expected Shed, got {err:?}");
    };
    assert_eq!((active, max_concurrent), (2, 2));
    // The typed error maps into the SQL error space for callers that
    // surface admission failures through statement results.
    assert!(matches!(SqlError::from(err), SqlError::Admission(_)));

    // A clone keeps the slot; dropping the last clone frees it.
    let keep = g1.clone();
    drop(g1);
    assert_eq!(governor.active(), 2);
    drop(keep);
    assert_eq!(governor.active(), 1);
    governor.admit(QueryLimits::none()).unwrap();
}

#[test]
fn shutdown_persists_serving_models_compacts_and_recovers_identically() {
    let dir = temp_dir("shutdown");
    let expected_weights = vec![0.25, -1.5, 3.0];
    let prediction_sql = "SELECT PREDICT('m', 1.0, 2.0, -1.0)";
    let before;
    {
        let mut session = SqlSession::open(&dir).unwrap();
        session.register_table(data(200)).unwrap();
        session
            .execute("SELECT SVMTrain('m', 'gov', 'vec', 'label', 0.1, 3)")
            .unwrap();
        before = session
            .execute(prediction_sql)
            .unwrap()
            .single_value()
            .unwrap()
            .as_double()
            .unwrap();

        // A live serving handle with a published model: shutdown must
        // persist its latest snapshot under the registered name.
        let handle = ModelHandle::new(ServingTask::Logistic, 3);
        handle.publish(&expected_weights).unwrap();
        session.register_model_handle("live", handle);
        // An unpublished handle has no model to persist and is skipped.
        session.register_model_handle("empty", ModelHandle::new(ServingTask::Svm, 2));

        let governor = Governor::new(4);
        let in_flight = governor.admit(QueryLimits::none()).unwrap();
        drop(in_flight); // finished statement frees its slot
        let report = session
            .shutdown(&governor, Instant::now() + Duration::from_secs(5))
            .unwrap();
        assert!(report.drained, "nothing in flight: {report:?}");
        assert!(governor.is_shutting_down());
        assert!(matches!(
            governor.admit(QueryLimits::none()),
            Err(AdmissionError::ShuttingDown)
        ));
    }

    let mut session = SqlSession::open(&dir).unwrap();
    let report = session.recovery_report().unwrap().clone();
    // Clean recovery from the compacted snapshot: no WAL replay, no torn
    // bytes.
    assert_eq!(report.records_replayed, 0, "{report}");
    assert_eq!(report.bytes_truncated, 0, "{report}");

    // Identical predictions from the persisted trained model...
    let after = session
        .execute(prediction_sql)
        .unwrap()
        .single_value()
        .unwrap()
        .as_double()
        .unwrap();
    assert_eq!(before, after);

    // ...and the serving handle's last-published weights are in the catalog.
    let weights: Vec<f64> = session
        .execute("SELECT weight FROM live ORDER BY idx")
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_double().unwrap())
        .collect();
    assert_eq!(weights, expected_weights);
    assert!(!session.database().contains("empty"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_cancels_outstanding_guards_and_reports_undrained_work() {
    let governor = Governor::new(4);
    let stuck = governor.admit(QueryLimits::none()).unwrap();
    // A statement that never finishes: its guard stays alive across the
    // shutdown deadline.
    let report = governor.shutdown(Instant::now() + Duration::from_millis(20));
    assert!(!report.drained);
    assert_eq!(report.in_flight, 1);
    assert!(
        stuck.is_cancelled(),
        "shutdown must cancel outstanding guards so their loops exit"
    );
    // The cancelled statement observes the cancellation as a typed error at
    // its next check point.
    assert_eq!(
        SqlError::from(stuck.check().unwrap_err()),
        SqlError::Cancelled
    );
}

// ---------------------------------------------------------------------------
// Shutdown under the byte-granular crash matrix (`--features
// fault-injection`): a crash at any fault point inside
// `SqlSession::shutdown`'s persist + compact sequence must leave a catalog
// that recovers to a consistent state — either the pre-shutdown catalog or
// one that additionally contains the persisted serving model.
// ---------------------------------------------------------------------------

#[cfg(feature = "fault-injection")]
mod shutdown_crash_matrix {
    use super::*;
    use bismarck_storage::durable::fault::{self, Mode};
    use bismarck_storage::Database;

    fn fingerprint(db: &Database) -> Vec<(String, Vec<Vec<Value>>)> {
        let mut names = db.table_names();
        names.sort();
        names
            .into_iter()
            .map(|name| {
                let rows = db
                    .table(&name)
                    .unwrap()
                    .scan()
                    .map(|tuple| tuple.values().to_vec())
                    .collect();
                (name, rows)
            })
            .collect()
    }

    /// Build a durable session with a trained model and a published serving
    /// handle, ready for shutdown. Returns the session and its governor.
    fn build(dir: &std::path::Path) -> (SqlSession, Governor) {
        let mut session = SqlSession::open(dir).unwrap();
        session.register_table(data(60)).unwrap();
        session
            .execute("SELECT SVMTrain('m', 'gov', 'vec', 'label', 0.1, 2)")
            .unwrap();
        let handle = ModelHandle::new(ServingTask::Logistic, 2);
        handle.publish(&[1.0, -2.0]).unwrap();
        session.register_model_handle("live", handle);
        (session, Governor::new(2))
    }

    #[test]
    fn every_crash_point_during_shutdown_recovers_consistently() {
        // The injector is process-global; this is the only test in this
        // binary that arms it, and test binaries run in separate processes.

        // Counting run: how many fault points does shutdown consume?
        let count_dir = temp_dir("shutdown-matrix-count");
        let (mut session, governor) = build(&count_dir);
        let pre_state = fingerprint(session.database());
        fault::arm(Mode::Crash, u64::MAX);
        session
            .shutdown(&governor, Instant::now() + Duration::from_secs(5))
            .unwrap();
        let total = fault::disarm();
        assert!(!fault::fired());
        assert!(total > 0, "shutdown on a durable session must do I/O");
        drop(session);
        // The fault-free shutdown persisted the serving model.
        let (db, _) = Database::open(&count_dir).unwrap();
        let post_state = fingerprint(&db);
        assert_ne!(post_state, pre_state, "'live' was persisted");
        drop(db);
        std::fs::remove_dir_all(&count_dir).ok();

        for point in 0..total {
            let dir = temp_dir(&format!("shutdown-matrix-k{point}"));
            let (mut session, governor) = build(&dir);
            fault::arm(Mode::Crash, point);
            // Failures are expected: the crash mode stops the world.
            let _ = session.shutdown(&governor, Instant::now() + Duration::from_secs(5));
            let fired = fault::fired();
            fault::disarm();
            assert!(fired, "crash point {point} of {total} never fired");
            drop(session);

            let (recovered, _report) = Database::open(&dir)
                .unwrap_or_else(|e| panic!("crash point {point} of {total}: recovery failed: {e}"));
            let state = fingerprint(&recovered);
            assert!(
                state == pre_state || state == post_state,
                "crash point {point} of {total} recovered a torn state: {state:?}"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
