//! Integration tests for the SQL front-end working against generated
//! workloads: the paper's Section 2.1 user experience (train via
//! `SELECT SVMTrain(...)`, model persisted as a table, predict via
//! `SVMPredict(...)`) exercised across the datagen, storage, core and sql
//! crates together.

use bismarck_core::metrics::classification_accuracy;
use bismarck_core::{StepSizeSchedule, TrainerConfig};
use bismarck_datagen::{
    dense_classification, labeled_sequences, ratings_table, sparse_classification,
    DenseClassificationConfig, RatingsConfig, SequenceConfig, SparseClassificationConfig,
};
use bismarck_sql::{SqlError, SqlSession};
use bismarck_storage::Value;
use bismarck_uda::ConvergenceTest;

fn fast_config() -> TrainerConfig {
    TrainerConfig::default()
        .with_step_size(StepSizeSchedule::Constant(0.2))
        .with_convergence(ConvergenceTest::FixedEpochs(8))
}

#[test]
fn svm_on_generated_dense_data_reaches_high_accuracy_via_sql() {
    let mut session = SqlSession::with_seed(1).with_trainer_config(fast_config());
    session
        .register_table(dense_classification(
            "forest",
            DenseClassificationConfig {
                examples: 2_000,
                dimension: 20,
                ..Default::default()
            },
        ))
        .unwrap();

    let summary = session
        .execute("SELECT SVMTrain('svm_model', 'forest', 'vec', 'label')")
        .expect("training");
    assert_eq!(summary.len(), 1);
    let converged_idx = summary.column_index("converged").unwrap();
    assert!(matches!(
        summary.rows[0][converged_idx],
        Value::Int(0) | Value::Int(1)
    ));

    // The persisted model is queryable and has one row per dimension.
    let n = session.execute("SELECT COUNT(*) FROM svm_model").unwrap();
    assert_eq!(n.single_value(), Some(&Value::Int(20)));

    // Predictions line up with labels on the training data.
    let predictions = session
        .execute("SELECT SVMPredict('svm_model', 'forest', 'vec')")
        .expect("prediction");
    let predicted: Vec<f64> = predictions
        .column_values("prediction")
        .unwrap()
        .iter()
        .map(|v| v.as_double().unwrap())
        .collect();
    let labels: Vec<f64> = session
        .database()
        .table("forest")
        .unwrap()
        .scan()
        .map(|t| t.get_double(2).unwrap())
        .collect();
    assert!(classification_accuracy(&predicted, &labels) > 0.9);
}

#[test]
fn logistic_regression_on_sparse_data_via_sql() {
    let mut session = SqlSession::with_seed(2).with_trainer_config(fast_config());
    session
        .register_table(sparse_classification(
            "dblife",
            SparseClassificationConfig {
                examples: 800,
                vocabulary: 2_000,
                ..Default::default()
            },
        ))
        .unwrap();
    let summary = session
        .execute("SELECT LogisticRegressionTrain('lr_model', 'dblife', 'vec', 'label', 0.2, 10)")
        .expect("training");
    let loss_idx = summary.column_index("final_loss").unwrap();
    let final_loss = summary.rows[0][loss_idx].as_double().unwrap();
    assert!(final_loss.is_finite() && final_loss >= 0.0);

    let probabilities = session
        .execute("SELECT LRPredict('lr_model', 'dblife', 'vec')")
        .expect("prediction");
    assert_eq!(probabilities.len(), 800);
    assert!(probabilities
        .column_values("probability")
        .unwrap()
        .iter()
        .all(|v| (0.0..=1.0).contains(&v.as_double().unwrap())));
}

#[test]
fn lmf_training_via_sql_persists_stacked_factors() {
    let mut session = SqlSession::with_seed(3)
        .with_trainer_config(fast_config().with_step_size(StepSizeSchedule::Constant(0.05)));
    let config = RatingsConfig {
        rows: 30,
        cols: 20,
        ratings: 600,
        true_rank: 3,
        ..Default::default()
    };
    session
        .register_table(ratings_table("movielens", config))
        .unwrap();

    let summary = session
        .execute("SELECT LMFTrain('factors', 'movielens', 'row', 'col', 'rating', 30, 20, 4)")
        .expect("training");
    let dim_idx = summary.column_index("dimension").unwrap();
    assert_eq!(summary.rows[0][dim_idx], Value::Int((30 + 20) * 4));
    let rows = session.execute("SELECT COUNT(*) FROM factors").unwrap();
    assert_eq!(rows.single_value(), Some(&Value::Int((30 + 20) * 4)));
}

#[test]
fn crf_training_and_viterbi_prediction_via_sql() {
    let mut session = SqlSession::with_seed(4)
        .with_trainer_config(fast_config().with_step_size(StepSizeSchedule::Constant(0.3)));
    session
        .register_table(labeled_sequences(
            "conll",
            SequenceConfig {
                sentences: 60,
                ..Default::default()
            },
        ))
        .unwrap();
    let summary = session
        .execute("SELECT CRFTrain('crf_model', 'conll', 'sentence')")
        .expect("training");
    assert_eq!(summary.len(), 1);

    let labelings = session
        .execute("SELECT CRFPredict('crf_model', 'conll', 'sentence')")
        .expect("prediction");
    assert_eq!(labelings.len(), 60);
    // Every labeling is a space-separated list of label ids.
    assert!(labelings.column_values("labels").unwrap().iter().all(|v| {
        v.as_text()
            .map(|s| s.split_whitespace().all(|tok| tok.parse::<usize>().is_ok()))
            .unwrap_or(false)
    }));
}

#[test]
fn relational_queries_over_generated_tables() {
    let mut session = SqlSession::with_seed(5);
    session
        .register_table(dense_classification(
            "forest",
            DenseClassificationConfig {
                examples: 500,
                dimension: 10,
                ..Default::default()
            },
        ))
        .unwrap();

    // Class balance through GROUP BY.
    let by_label = session
        .execute("SELECT label, COUNT(*) AS n FROM forest GROUP BY label ORDER BY label")
        .unwrap();
    assert_eq!(by_label.len(), 2);
    let total: i64 = by_label
        .column_values("n")
        .unwrap()
        .iter()
        .map(|v| v.as_int().unwrap())
        .sum();
    assert_eq!(total, 500);

    // ORDER BY RANDOM() LIMIT produces a sample of the requested size with
    // valid ids.
    let sample = session
        .execute("SELECT id FROM forest ORDER BY RANDOM() LIMIT 25")
        .unwrap();
    assert_eq!(sample.len(), 25);
    assert!(sample
        .column_values("id")
        .unwrap()
        .iter()
        .all(|v| (0..500).contains(&v.as_int().unwrap())));

    // The vector helper functions work on stored feature vectors.
    let dims = session
        .execute("SELECT MIN(DIM(vec)) AS lo, MAX(DIM(vec)) AS hi FROM forest")
        .unwrap();
    assert_eq!(dims.rows[0][0], Value::Int(10));
    assert_eq!(dims.rows[0][1], Value::Int(10));
}

#[test]
fn errors_from_each_layer_are_distinguishable() {
    let mut session = SqlSession::new();
    assert!(matches!(
        session.execute("SELEC 1").unwrap_err(),
        SqlError::Parse { .. }
    ));
    assert!(matches!(
        session.execute("SELECT 'oops").unwrap_err(),
        SqlError::Lex { .. }
    ));
    assert!(matches!(
        session.execute("SELECT * FROM nowhere").unwrap_err(),
        SqlError::Storage(_)
    ));
    assert!(matches!(
        session
            .execute("SELECT SVMTrain('m', 'nowhere', 'vec', 'label')")
            .unwrap_err(),
        SqlError::Analytics(_)
    ));
    assert!(matches!(
        session.execute("SELECT 1/0").unwrap_err(),
        SqlError::Evaluation(_)
    ));
}
