//! Fault-tolerance integration tests (require `--features fault-injection`).
//!
//! These prove the three recovery paths of the fault-tolerant runtime
//! end-to-end: a panicking gradient worker is isolated into a typed error
//! that carries the last healthy model, an injected NaN gradient is healed
//! by divergence backoff, and a checkpointed run killed mid-way resumes
//! bit-compatibly with an uninterrupted one.

#![cfg(feature = "fault-injection")]

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bismarck_core::fault::{Fault, FaultyTask};
use bismarck_core::tasks::LogisticRegressionTask;
use bismarck_core::{
    ParallelStrategy, ParallelTrainer, StepSizeSchedule, TrainError, Trainer, TrainerConfig,
    UpdateDiscipline,
};
use bismarck_datagen::{dense_classification, DenseClassificationConfig};
use bismarck_storage::{ScanOrder, Table};
use bismarck_uda::ConvergenceTest;

fn table(n: usize) -> Table {
    dense_classification(
        "faults",
        DenseClassificationConfig {
            examples: n,
            dimension: 4,
            clustered_by_label: false,
            ..Default::default()
        },
    )
}

fn config(epochs: usize) -> TrainerConfig {
    TrainerConfig::default()
        .with_step_size(StepSizeSchedule::Constant(0.1))
        .with_convergence(ConvergenceTest::FixedEpochs(epochs))
        .with_scan_order(ScanOrder::Clustered)
}

/// A unique on-disk checkpoint path per test, cleaned up by the caller.
fn ckpt_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bismarck_ft_{}_{name}.ckpt", std::process::id()))
}

/// Suppress the default panic hook's stderr spew for intentionally injected
/// panics; restores the hook when dropped.
struct QuietPanics;

impl QuietPanics {
    fn new() -> Self {
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        let _ = std::panic::take_hook();
    }
}

#[test]
fn sequential_worker_panic_yields_last_good_model() {
    let _quiet = QuietPanics::new();
    let data = table(120);
    // Panic during epoch 2 (steps 0..120 are epoch 0, etc.).
    let task = FaultyTask::new(
        LogisticRegressionTask::new(1, 2, 4),
        Fault::PanicAtStep(2 * 120 + 17),
    );
    let err = Trainer::new(&task, config(6)).try_train(&data).unwrap_err();
    let TrainError::WorkerPanic {
        epoch,
        failed_workers,
        message,
        last_good,
    } = err
    else {
        panic!("expected WorkerPanic, got {err:?}");
    };
    assert_eq!(epoch, 2);
    assert_eq!(failed_workers, 1);
    assert!(message.contains("injected fault"), "message: {message}");
    // The carried model is the last healthy epoch's: two epochs completed,
    // all components finite.
    assert_eq!(last_good.epochs(), 2);
    assert!(last_good.model.iter().all(|v| v.is_finite()));
    assert!(last_good.final_loss().unwrap().is_finite());
}

#[test]
fn parallel_worker_panic_is_isolated_under_every_strategy() {
    let _quiet = QuietPanics::new();
    let data = table(200);
    for strategy in [
        ParallelStrategy::PureUda { segments: 4 },
        ParallelStrategy::SharedMemory {
            workers: 4,
            discipline: UpdateDiscipline::Lock,
        },
        ParallelStrategy::SharedMemory {
            workers: 4,
            discipline: UpdateDiscipline::Aig,
        },
        ParallelStrategy::SharedMemory {
            workers: 4,
            discipline: UpdateDiscipline::NoLock,
        },
    ] {
        // Fresh wrapper per strategy: the step counter is global.
        let task = FaultyTask::new(
            LogisticRegressionTask::new(1, 2, 4),
            Fault::PanicAtStep(200 + 50),
        );
        let err = ParallelTrainer::new(&task, config(4), strategy)
            .try_train(&data)
            .unwrap_err();
        let TrainError::WorkerPanic {
            epoch,
            failed_workers,
            last_good,
            ..
        } = err
        else {
            panic!("[{}] expected WorkerPanic, got {err:?}", strategy.label());
        };
        assert_eq!(epoch, 1, "[{}]", strategy.label());
        assert!(failed_workers >= 1, "[{}]", strategy.label());
        assert_eq!(last_good.epochs(), 1, "[{}]", strategy.label());
        assert!(
            last_good.model.iter().all(|v| v.is_finite()),
            "[{}] last-good model must be finite",
            strategy.label()
        );
    }
}

#[test]
fn nan_gradient_recovers_through_backoff_and_converges() {
    let data = table(150);
    let task = FaultyTask::new(
        LogisticRegressionTask::new(1, 2, 4),
        Fault::NanGradientAtStep(40),
    );
    let trained = Trainer::new(&task, config(8).with_backoff(2))
        .try_train(&data)
        .expect("backoff should absorb a single NaN epoch");
    // The poisoned epoch was retried once (with a halved step size) and the
    // recovery is visible in the history.
    assert_eq!(trained.history.total_retries(), 1);
    assert_eq!(trained.history.records()[0].retries, 1);
    assert_eq!(trained.epochs(), 8);
    assert!(trained.final_loss().unwrap().is_finite());
    assert!(trained.model.iter().all(|v| v.is_finite()));
    // Every recorded loss is finite: the diverged attempt was discarded,
    // not recorded.
    assert!(trained.history.losses().iter().all(|l| l.is_finite()));
}

#[test]
fn nan_gradient_without_backoff_stops_unconverged() {
    let data = table(150);
    let task = FaultyTask::new(
        LogisticRegressionTask::new(1, 2, 4),
        Fault::NanGradientAtStep(40),
    );
    // Default config has no backoff budget: the non-finite epoch is recorded
    // and the convergence test reads it as a stop signal.
    let trained = Trainer::new(
        &task,
        config(8).with_convergence(ConvergenceTest::RelativeLossDecrease {
            tolerance: 1e-12,
            max_epochs: 8,
        }),
    )
    .try_train(&data)
    .expect("without a backoff budget divergence is recorded, not an error");
    assert!(!trained.history.converged());
    assert!(trained.final_loss().unwrap().is_nan());
}

#[test]
fn exhausted_backoff_budget_reports_diverged_with_last_good() {
    let data = table(100);
    // Inject a NaN in every epoch's first step by wrapping twice — simpler:
    // a NaN at step 0 with a zero retry budget via with_backoff(0) would be
    // recorded, so instead use backoff(1) and poison both attempts: steps 0
    // and 100 both fall in attempt 0 and the retry of epoch 0.
    let task = FaultyTask::new(
        LogisticRegressionTask::new(1, 2, 4),
        Fault::NanGradientAtStep(0),
    );
    let inner = FaultyTask::new(task, Fault::NanGradientAtStep(100));
    let err = Trainer::new(&inner, config(4).with_backoff(1))
        .try_train(&data)
        .unwrap_err();
    let TrainError::Diverged {
        epoch,
        retries,
        last_good,
    } = err
    else {
        panic!("expected Diverged, got {err:?}");
    };
    assert_eq!(epoch, 0);
    assert_eq!(retries, 1);
    // No epoch completed: last-good is the initial model with empty history.
    assert_eq!(last_good.epochs(), 0);
    assert!(last_good.model.iter().all(|v| v.is_finite()));
}

#[test]
fn interrupted_run_resumes_bit_compatibly_with_an_uninterrupted_one() {
    let data = table(130);
    let path = ckpt_path("resume");
    let task = LogisticRegressionTask::new(1, 2, 4);
    // Shuffle-always plus a diminishing step size: resume must reconstruct
    // both the per-epoch permutation and the epoch-indexed alpha.
    let full_config = TrainerConfig::default()
        .with_step_size(StepSizeSchedule::Diminishing { initial: 0.2 })
        .with_scan_order(ScanOrder::ShuffleAlways { seed: 42 })
        .with_convergence(ConvergenceTest::FixedEpochs(9));
    let full = Trainer::new(&task, full_config.clone()).train(&data);

    // "Kill" a checkpointed run after 4 epochs by running a truncated
    // convergence cap with the same everything-else.
    let partial = Trainer::new(
        &task,
        full_config
            .clone()
            .with_convergence(ConvergenceTest::FixedEpochs(4))
            .with_checkpoints(&path, 2),
    )
    .train(&data);
    assert_eq!(partial.epochs(), 4);

    let resumed = Trainer::new(&task, full_config)
        .resume_from(&data, &path)
        .expect("resume from a healthy checkpoint");
    assert_eq!(resumed.epochs(), 9);
    assert_eq!(
        resumed.model, full.model,
        "resumed run must be bitwise identical to the uninterrupted one"
    );
    assert_eq!(resumed.history.losses(), full.history.losses());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn stop_flag_interrupts_at_an_epoch_boundary_and_checkpoint_resumes() {
    let data = table(110);
    let path = ckpt_path("stopflag");
    let task = LogisticRegressionTask::new(1, 2, 4);
    let flag = Arc::new(AtomicBool::new(true)); // pre-set: stop immediately
    let err = Trainer::new(
        &task,
        config(6)
            .with_checkpoints(&path, 3)
            .with_stop_flag(flag.clone()),
    )
    .try_train(&data)
    .unwrap_err();
    let TrainError::Interrupted { epoch, last_good } = err else {
        panic!("expected Interrupted, got {err:?}");
    };
    assert_eq!(epoch, 0);
    assert_eq!(last_good.epochs(), 0);

    // The interrupt checkpoint lets a fresh trainer pick the run back up;
    // with the flag cleared it completes all 6 epochs, matching a run that
    // was never interrupted.
    flag.store(false, Ordering::SeqCst);
    let resumed = Trainer::new(&task, config(6))
        .resume_from(&data, &path)
        .expect("resume from interrupt checkpoint");
    let uninterrupted = Trainer::new(&task, config(6)).train(&data);
    assert_eq!(resumed.epochs(), 6);
    assert_eq!(resumed.model, uninterrupted.model);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn poisoned_checkpoint_is_rejected_with_a_checksum_error() {
    let data = table(90);
    let path = ckpt_path("poisoned");
    let task = LogisticRegressionTask::new(1, 2, 4);
    Trainer::new(&task, config(4).with_checkpoints(&path, 2)).train(&data);

    // Flip one byte in the middle of the file.
    let mut bytes = std::fs::read(&path).expect("checkpoint was written");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let err = Trainer::new(&task, config(4))
        .resume_from(&data, &path)
        .unwrap_err();
    assert!(
        matches!(
            err,
            TrainError::Checkpoint(bismarck_storage::CheckpointError::ChecksumMismatch)
        ),
        "got {err:?}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn parallel_lock_single_worker_resumes_bit_compatibly() {
    let data = table(140);
    let path = ckpt_path("parallel_resume");
    let task = LogisticRegressionTask::new(1, 2, 4);
    let strategy = ParallelStrategy::SharedMemory {
        workers: 1,
        discipline: UpdateDiscipline::Lock,
    };
    let (full, _) = ParallelTrainer::new(&task, config(8), strategy).train(&data);
    let (partial, _) =
        ParallelTrainer::new(&task, config(4).with_checkpoints(&path, 4), strategy).train(&data);
    assert_eq!(partial.epochs(), 4);
    let (resumed, stats) = ParallelTrainer::new(&task, config(8), strategy)
        .resume_from(&data, &path)
        .expect("resume parallel run");
    assert_eq!(resumed.epochs(), 8);
    assert_eq!(stats.len(), 4, "stats cover only the resumed epochs");
    assert_eq!(resumed.model, full.model);
    let _ = std::fs::remove_file(&path);
}
