//! Integration tests for the performance-critical behaviours the paper
//! studies: data ordering (Section 3.2), parallel execution (Section 3.3) and
//! multiplexed reservoir sampling (Section 3.4), exercised across crates on
//! generated workloads.

use bismarck_core::mrs::subsampling_train;
use bismarck_core::tasks::{LogisticRegressionTask, SvmTask};
use bismarck_core::{
    IgdTask, MrsConfig, MrsTrainer, ParallelStrategy, ParallelTrainer, StepSizeSchedule, Trainer,
    TrainerConfig, UpdateDiscipline,
};
use bismarck_datagen::{sparse_classification, SparseClassificationConfig};
use bismarck_storage::{ScanOrder, Table};
use bismarck_uda::ConvergenceTest;

fn clustered_sparse(n: usize) -> Table {
    sparse_classification(
        "dblife",
        SparseClassificationConfig {
            examples: n,
            vocabulary: 3_000,
            clustered_by_label: true,
            ..Default::default()
        },
    )
}

fn config(epochs: usize, order: ScanOrder) -> TrainerConfig {
    TrainerConfig::default()
        .with_scan_order(order)
        .with_step_size(StepSizeSchedule::Constant(0.2))
        .with_convergence(ConvergenceTest::FixedEpochs(epochs))
}

#[test]
fn shuffle_once_matches_shuffle_always_quality_at_equal_epochs() {
    let table = clustered_sparse(1_500);
    let dim = bismarck_core::frontend::infer_dimension(&table, 1);
    let task = LogisticRegressionTask::new(1, 2, dim);
    let epochs = 8;
    let always =
        Trainer::new(&task, config(epochs, ScanOrder::ShuffleAlways { seed: 1 })).train(&table);
    let once =
        Trainer::new(&task, config(epochs, ScanOrder::ShuffleOnce { seed: 1 })).train(&table);
    let clustered = Trainer::new(&task, config(epochs, ScanOrder::Clustered)).train(&table);

    let (a, o, c) = (
        always.final_loss().unwrap(),
        once.final_loss().unwrap(),
        clustered.final_loss().unwrap(),
    );
    // ShuffleOnce is within 10% of ShuffleAlways and both beat (or match)
    // the clustered order.
    assert!(o <= a * 1.10, "once {o} vs always {a}");
    assert!(a <= c * 1.05, "always {a} vs clustered {c}");
    assert!(o <= c * 1.05, "once {o} vs clustered {c}");
    // Clustered never pays a shuffle; ShuffleAlways pays one per epoch.
    assert_eq!(clustered.history.total_shuffle_duration().as_nanos(), 0);
    assert!(always.history.total_shuffle_duration() >= once.history.total_shuffle_duration());
}

#[test]
fn all_parallel_schemes_agree_with_sequential_on_final_quality() {
    let table = clustered_sparse(1_000);
    let dim = bismarck_core::frontend::infer_dimension(&table, 1);
    let task = SvmTask::new(1, 2, dim);
    let epochs = 6;
    let cfg = config(epochs, ScanOrder::ShuffleOnce { seed: 4 });
    let trainer = Trainer::new(&task, cfg.clone());
    let initial = trainer.objective(&task.initial_model(), &table);
    let sequential = trainer.train(&table).final_loss().unwrap();

    for strategy in [
        ParallelStrategy::PureUda { segments: 4 },
        ParallelStrategy::SharedMemory {
            workers: 4,
            discipline: UpdateDiscipline::Lock,
        },
        ParallelStrategy::SharedMemory {
            workers: 4,
            discipline: UpdateDiscipline::Aig,
        },
        ParallelStrategy::SharedMemory {
            workers: 4,
            discipline: UpdateDiscipline::NoLock,
        },
    ] {
        let (trained, stats) = ParallelTrainer::new(&task, cfg.clone(), strategy).train(&table);
        let loss = trained.final_loss().unwrap();
        // Every scheme must make substantial progress from the zero model
        // (model averaging is allowed to lag, exactly as in Figure 9(A)).
        assert!(
            loss <= initial * 0.05,
            "{} finished at {loss}, initial {initial}, sequential {sequential}",
            strategy.label()
        );
        assert_eq!(stats.len(), epochs);
        // The shared-memory disciplines should track sequential quality closely.
        if matches!(strategy, ParallelStrategy::SharedMemory { .. }) {
            assert!(
                loss <= sequential.max(initial * 0.005) * 1.5 + 1e-6,
                "{} at {loss} vs sequential {sequential}",
                strategy.label()
            );
        }
    }
}

#[test]
fn mrs_beats_plain_subsampling_on_clustered_data() {
    let table = clustered_sparse(2_000);
    let dim = bismarck_core::frontend::infer_dimension(&table, 1);
    let task = LogisticRegressionTask::new(1, 2, dim);
    let buffer = table.len() / 10;
    let epochs = 6;

    let (mrs, stats) = MrsTrainer::new(
        &task,
        MrsConfig {
            buffer_size: buffer,
            step_size: StepSizeSchedule::Constant(0.2),
            convergence: ConvergenceTest::FixedEpochs(epochs),
            seed: 9,
            memory_worker: true,
            ..MrsConfig::default()
        },
    )
    .train(&table);
    let sub = subsampling_train(
        &task,
        &table,
        buffer,
        StepSizeSchedule::Constant(0.2),
        ConvergenceTest::FixedEpochs(epochs),
        9,
    );

    assert!(stats.io_steps > 0 && stats.memory_steps > 0);
    // The full objective over all data: MRS sees every tuple, subsampling
    // only the buffer, so MRS should be at least as good (Figure 10(A)).
    assert!(
        mrs.final_loss().unwrap() <= sub.final_loss().unwrap() * 1.05,
        "mrs {} vs subsampling {}",
        mrs.final_loss().unwrap(),
        sub.final_loss().unwrap()
    );
}

#[test]
fn pure_uda_convergence_is_no_better_than_nolock_shared_memory() {
    // Figure 9(A): model averaging converges more slowly than shared-memory
    // updates at the same epoch budget.
    let table = clustered_sparse(1_200);
    let dim = bismarck_core::frontend::infer_dimension(&table, 1);
    let task = LogisticRegressionTask::new(1, 2, dim);
    let cfg = config(4, ScanOrder::ShuffleOnce { seed: 2 });
    let (pure, _) = ParallelTrainer::new(
        &task,
        cfg.clone(),
        ParallelStrategy::PureUda { segments: 8 },
    )
    .train(&table);
    let (nolock, _) = ParallelTrainer::new(
        &task,
        cfg,
        ParallelStrategy::SharedMemory {
            workers: 8,
            discipline: UpdateDiscipline::NoLock,
        },
    )
    .train(&table);
    assert!(
        nolock.final_loss().unwrap() <= pure.final_loss().unwrap() * 1.05,
        "NoLock {} vs PureUDA {}",
        nolock.final_loss().unwrap(),
        pure.final_loss().unwrap()
    );
}
