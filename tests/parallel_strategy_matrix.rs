//! Every parallelization scheme from Section 3.3, exercised end-to-end on
//! one tiny logistic-regression problem: the pure-UDA (shared-nothing,
//! model-averaging) scheme at several segment counts, and all three
//! shared-memory update disciplines (Lock, AIG, NoLock/Hogwild!).
//!
//! The assertion is the paper's core promise for each scheme: training
//! makes progress — the loss after the final epoch is well below the loss
//! of the initial model, and the trajectory trends downward (exactly
//! ratcheting for the deterministic schemes, within a generous band for
//! concurrent NoLock/AIG runs whose interleavings are nondeterministic).

use bismarck_core::tasks::LogisticRegressionTask;
use bismarck_core::{
    IgdTask, ParallelStrategy, ParallelTrainer, StepSizeSchedule, TrainerConfig, UpdateDiscipline,
};
use bismarck_datagen::{
    dense_classification, DenseClassificationConfig, CLASSIFICATION_FEATURES_COL,
    CLASSIFICATION_LABEL_COL,
};
use bismarck_storage::Table;
use bismarck_uda::ConvergenceTest;

const DIM: usize = 4;
const EPOCHS: usize = 8;

/// A tiny separable logistic-regression dataset from the shared generator,
/// interleaved in storage order so every segment sees both classes.
fn tiny_lr_table(examples: usize) -> Table {
    dense_classification(
        "tiny_lr",
        DenseClassificationConfig {
            examples,
            dimension: DIM,
            separation: 3.0,
            clustered_by_label: false,
            seed: 42,
            ..Default::default()
        },
    )
}

fn every_strategy() -> Vec<ParallelStrategy> {
    let mut strategies = vec![
        ParallelStrategy::PureUda { segments: 1 },
        ParallelStrategy::PureUda { segments: 2 },
        ParallelStrategy::PureUda { segments: 4 },
    ];
    for discipline in [
        UpdateDiscipline::Lock,
        UpdateDiscipline::Aig,
        UpdateDiscipline::NoLock,
    ] {
        for workers in [1usize, 4] {
            strategies.push(ParallelStrategy::SharedMemory {
                workers,
                discipline,
            });
        }
    }
    strategies
}

#[test]
fn every_parallel_strategy_reduces_logistic_loss_across_epochs() {
    let table = tiny_lr_table(240);
    let task =
        LogisticRegressionTask::new(CLASSIFICATION_FEATURES_COL, CLASSIFICATION_LABEL_COL, DIM);
    let config = TrainerConfig::default()
        .with_step_size(StepSizeSchedule::Constant(0.2))
        .with_convergence(ConvergenceTest::FixedEpochs(EPOCHS));

    // Loss of the all-zeros initial model, the common starting point.
    let initial_loss: f64 = {
        let zero = task.initial_model();
        table
            .scan()
            .map(|tuple| task.example_loss(&zero, tuple))
            .sum()
    };

    for strategy in every_strategy() {
        let trainer = ParallelTrainer::new(&task, config.clone(), strategy);
        let (trained, stats) = trainer.train(&table);
        let label = format!("{} ({} workers)", strategy.label(), strategy.workers());

        assert_eq!(trained.epochs(), EPOCHS, "{label}: wrong epoch count");
        assert_eq!(stats.len(), EPOCHS, "{label}: missing per-epoch stats");

        let losses = trained.history.losses();
        assert!(
            losses.iter().all(|l| l.is_finite()),
            "{label}: non-finite loss in {losses:?}"
        );

        // Substantial overall progress from the zero model...
        let final_loss = trained.final_loss().expect("at least one epoch");
        assert!(
            final_loss < initial_loss * 0.5,
            "{label}: final loss {final_loss} vs initial {initial_loss}"
        );
        // ...and the first epoch already improves on the starting loss.
        assert!(
            losses[0] < initial_loss,
            "{label}: first epoch did not descend ({} vs {initial_loss})",
            losses[0]
        );
        // The trajectory decreases across epochs. Deterministic runs
        // (PureUDA, whose merge happens in fixed segment order, and any
        // single-worker run) must ratchet down within a whisker; shared
        // memory with real concurrency gets a generous band, since even
        // Lock's step *order* is scheduler-dependent and Hogwild! promises
        // convergence, not per-epoch monotonicity.
        let deterministic =
            matches!(strategy, ParallelStrategy::PureUda { .. }) || strategy.workers() == 1;
        let slack = if deterministic { 1.05 } else { 1.5 };
        let mut best = f64::INFINITY;
        for (epoch, &loss) in losses.iter().enumerate() {
            assert!(
                loss <= best * slack + 1e-9,
                "{label}: loss climbed at epoch {epoch}: {loss} after best {best} ({losses:?})"
            );
            best = best.min(loss);
        }
        // Net decrease from the first to the last epoch.
        assert!(
            losses[EPOCHS - 1] < losses[0],
            "{label}: no net decrease across epochs ({losses:?})"
        );
    }
}

#[test]
fn strategy_matrix_covers_every_variant_and_discipline() {
    let strategies = every_strategy();
    assert!(strategies
        .iter()
        .any(|s| matches!(s, ParallelStrategy::PureUda { .. })));
    for discipline in [
        UpdateDiscipline::Lock,
        UpdateDiscipline::Aig,
        UpdateDiscipline::NoLock,
    ] {
        assert!(
            strategies.iter().any(|s| matches!(
                s,
                ParallelStrategy::SharedMemory { discipline: d, .. } if *d == discipline
            )),
            "matrix is missing shared-memory discipline {}",
            discipline.label()
        );
    }
}
