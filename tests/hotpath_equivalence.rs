//! Equivalence proptests for the zero-copy, kernel-based gradient hot path.
//!
//! The transition path was rebuilt around borrowed feature views
//! (`Tuple::feature_view`) and bulk `ModelStore` kernels
//! (`dot_view`/`axpy_view`/`snapshot_into`). These tests pin the refactor to
//! the old semantics three ways, for every task in the zoo, across dense,
//! sparse and ragged-dimension inputs:
//!
//! * the **bulk-kernel** path (`DenseModelStore`, slice fast paths) must
//!   match a **per-coordinate fallback** store that only implements the
//!   required trait methods — i.e. the virtual-call-per-component path the
//!   shared NoLock/AIG stores still use;
//! * both must match a **reference reimplementation** of the pre-refactor
//!   cloning transition (owned `FeatureVector` clone + indexed scalar
//!   loops) to within 1e-12;
//! * margins and example losses computed through the view must match the
//!   same quantities computed from an owned clone of the feature vector.

use bismarck_core::model::{DenseModelStore, ModelStore};
use bismarck_core::task::IgdTask;
use bismarck_core::tasks::{
    CrfTask, KalmanTask, LeastSquaresTask, LmfTask, LogisticRegressionTask, PortfolioTask, SvmTask,
};
use bismarck_linalg::ops::sigmoid;
use bismarck_linalg::SparseVector;
use bismarck_storage::{Tuple, Value};
use proptest::prelude::*;

const TOL: f64 = 1e-12;

/// A model store that only implements the required trait methods, so every
/// bulk kernel exercises the default per-coordinate implementation.
struct FallbackStore(Vec<f64>);

impl ModelStore for FallbackStore {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn read(&self, i: usize) -> f64 {
        self.0[i]
    }
    fn update(&mut self, i: usize, delta: f64) {
        self.0[i] += delta;
    }
    fn write(&mut self, i: usize, value: f64) {
        self.0[i] = value;
    }
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Run one gradient step through both store implementations and assert they
/// agree within `TOL`; returns the bulk-kernel result.
fn step_both_stores<T: IgdTask>(
    task: &T,
    model: &[f64],
    tuple: &Tuple,
    alpha: f64,
) -> Result<Vec<f64>, String> {
    let mut bulk = DenseModelStore::new(model.to_vec());
    task.gradient_step(&mut bulk, tuple, alpha);
    let bulk = bulk.into_vec();
    let mut fallback = FallbackStore(model.to_vec());
    task.gradient_step(&mut fallback, tuple, alpha);
    prop_assert!(
        max_abs_diff(&bulk, &fallback.0) <= TOL,
        "bulk-kernel vs per-coordinate stores diverged: {bulk:?} vs {:?}",
        fallback.0
    );
    Ok(bulk)
}

/// The pre-refactor cloning margin: owned feature vector, indexed loop.
fn cloned_margin(model: &[f64], x: &Value) -> f64 {
    let owned = x.feature_view().expect("feature column").to_owned();
    let mut wx = 0.0;
    for (i, v) in owned.iter_entries() {
        if i < model.len() {
            wx += model[i] * v;
        }
    }
    wx
}

/// The pre-refactor cloning scale-and-add: owned vector, indexed loop.
fn cloned_axpy(model: &mut [f64], x: &Value, c: f64) {
    let owned = x.feature_view().expect("feature column").to_owned();
    for (i, v) in owned.iter_entries() {
        if i < model.len() {
            model[i] += c * v;
        }
    }
}

/// A feature value that is dense, sparse, or sparse with indices past the
/// model dimension (ragged).
fn feature_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        prop::collection::vec(-3.0f64..3.0, 1..9).prop_map(Value::from),
        prop::collection::vec(((0usize..12), -3.0f64..3.0), 1..7)
            .prop_map(|pairs| Value::from(SparseVector::from_pairs(pairs))),
    ]
}

fn model_strategy(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-2.0f64..2.0, dim..=dim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// LR: margin, gradient step and example loss agree between the kernel
    /// path, the per-coordinate fallback and the cloning reference.
    #[test]
    fn logistic_matches_cloned_path(
        x in feature_strategy(),
        y in prop::sample::select(vec![-1.0f64, 1.0]),
        model in model_strategy(5),
        alpha in 0.01f64..1.0,
    ) {
        let task = LogisticRegressionTask::new(0, 1, 5);
        let tuple = Tuple::new(vec![x.clone(), Value::Double(y)]);

        // Margin through the store kernels vs the cloned loop.
        let store = DenseModelStore::new(model.clone());
        let view = tuple.feature_view(0).unwrap();
        let wx_view = store.dot_view(view);
        let wx_cloned = cloned_margin(&model, &x);
        prop_assert!((wx_view - wx_cloned).abs() <= TOL, "margin {wx_view} vs {wx_cloned}");

        // Gradient step: both stores vs the pre-refactor reference.
        let stepped = step_both_stores(&task, &model, &tuple, alpha)?;
        let mut reference = model.clone();
        let c = alpha * y * sigmoid(-wx_cloned * y);
        cloned_axpy(&mut reference, &x, c);
        prop_assert!(
            max_abs_diff(&stepped, &reference) <= TOL,
            "gradient step diverged: {stepped:?} vs {reference:?}"
        );

        // Example loss from the view path vs the owned clone.
        let loss = task.example_loss(&model, &tuple);
        let owned = x.feature_view().unwrap().to_owned();
        let reference_loss = bismarck_linalg::log1p_exp(-y * owned.dot(&model));
        prop_assert!((loss - reference_loss).abs() <= TOL);
    }

    /// SVM: same three-way agreement as LR, including the margin test branch.
    #[test]
    fn svm_matches_cloned_path(
        x in feature_strategy(),
        y in prop::sample::select(vec![-1.0f64, 1.0]),
        model in model_strategy(5),
        alpha in 0.01f64..1.0,
    ) {
        let task = SvmTask::new(0, 1, 5);
        let tuple = Tuple::new(vec![x.clone(), Value::Double(y)]);
        let stepped = step_both_stores(&task, &model, &tuple, alpha)?;

        let wx = cloned_margin(&model, &x);
        let mut reference = model.clone();
        if 1.0 - wx * y > 0.0 {
            cloned_axpy(&mut reference, &x, alpha * y);
        }
        prop_assert!(max_abs_diff(&stepped, &reference) <= TOL);

        let owned = x.feature_view().unwrap().to_owned();
        let reference_loss = (1.0 - y * owned.dot(&model)).max(0.0);
        prop_assert!((task.example_loss(&model, &tuple) - reference_loss).abs() <= TOL);
    }

    /// Least squares: three-way agreement on step and loss.
    #[test]
    fn least_squares_matches_cloned_path(
        x in feature_strategy(),
        y in -3.0f64..3.0,
        model in model_strategy(4),
        alpha in 0.01f64..0.5,
    ) {
        let task = LeastSquaresTask::new(0, 1, 4);
        let tuple = Tuple::new(vec![x.clone(), Value::Double(y)]);
        let stepped = step_both_stores(&task, &model, &tuple, alpha)?;

        let wx = cloned_margin(&model, &x);
        let mut reference = model.clone();
        cloned_axpy(&mut reference, &x, -alpha * (wx - y));
        prop_assert!(max_abs_diff(&stepped, &reference) <= TOL);

        let owned = x.feature_view().unwrap().to_owned();
        let reference_loss = 0.5 * (owned.dot(&model) - y).powi(2);
        prop_assert!((task.example_loss(&model, &tuple) - reference_loss).abs() <= TOL);
    }

    /// Portfolio: the centred-exposure transition agrees across stores and
    /// against a cloning reference.
    #[test]
    fn portfolio_matches_cloned_path(
        x in feature_strategy(),
        model in model_strategy(4),
        alpha in 0.01f64..0.5,
    ) {
        let expected = vec![0.05, 0.01, 0.03, 0.02];
        let task = PortfolioTask::new(0, expected.clone(), expected.clone(), 1.5, 10);
        let tuple = Tuple::new(vec![x.clone()]);
        let stepped = step_both_stores(&task, &model, &tuple, alpha)?;

        // Reference: pre-refactor loops over an owned clone.
        let owned = x.feature_view().unwrap().to_owned();
        let mut reference = model.clone();
        let mut exposure = 0.0;
        for (i, r) in owned.iter_entries() {
            if i < 4 {
                exposure += reference[i] * (r - expected[i]);
            }
        }
        let risk_coeff = 2.0 * 1.5 * exposure;
        for (i, r) in owned.iter_entries() {
            if i < 4 {
                reference[i] -= alpha * risk_coeff * (r - expected[i]);
            }
        }
        for (i, &p) in expected.iter().enumerate() {
            reference[i] += alpha / 10.0 * p;
        }
        prop_assert!(max_abs_diff(&stepped, &reference) <= TOL);

        // Loss via the view equals the loss from the owned clone.
        let mut exp2 = 0.0;
        for (i, r) in owned.iter_entries() {
            if i < 4 {
                exp2 += model[i] * (r - expected[i]);
            }
        }
        let ret: f64 = expected.iter().zip(&model).map(|(p, w)| p * w).sum();
        let reference_loss = 1.5 * exp2 * exp2 - ret / 10.0;
        prop_assert!((task.example_loss(&model, &tuple) - reference_loss).abs() <= TOL);
    }

    /// Kalman: observation components are now read through the view (no
    /// per-tuple densification); the step must match the old densified path.
    #[test]
    fn kalman_matches_cloned_path(
        x in feature_strategy(),
        t_step in 0usize..3,
        model in model_strategy(9),
        alpha in 0.01f64..0.5,
    ) {
        let task = KalmanTask::new(0, 1, 3, 3, 0.7);
        let tuple = Tuple::new(vec![Value::Int(t_step as i64), x.clone()]);
        let stepped = step_both_stores(&task, &model, &tuple, alpha)?;

        // Reference: densify the observation like the old code did.
        let obs = x.feature_view().unwrap().to_owned().to_dense(3);
        let mut reference = model.clone();
        for k in 0..3 {
            let idx = t_step * 3 + k;
            let wt = reference[idx];
            let mut grad_t = 2.0 * (wt - obs.get(k));
            if t_step > 0 {
                let prev = (t_step - 1) * 3 + k;
                let diff = wt - reference[prev];
                grad_t += 2.0 * 0.7 * diff;
                reference[prev] += alpha * 2.0 * 0.7 * diff;
            }
            reference[idx] -= alpha * grad_t;
        }
        prop_assert!(max_abs_diff(&stepped, &reference) <= TOL);
    }

    /// LMF reads/updates individual coordinates: the bulk-kernel store and
    /// the fallback store must stay bit-identical.
    #[test]
    fn lmf_is_identical_across_stores(
        i in 0i64..3,
        j in 0i64..3,
        rating in -2.0f64..2.0,
        alpha in 0.01f64..0.5,
    ) {
        let task = LmfTask::new(0, 1, 2, 3, 3, 2);
        let tuple = Tuple::new(vec![Value::Int(i), Value::Int(j), Value::Double(rating)]);
        let model = task.initial_model();
        step_both_stores(&task, &model, &tuple, alpha)?;
    }

    /// CRF snapshots the model once per sentence; the `snapshot_into`-backed
    /// default and the dense override must produce identical steps.
    #[test]
    fn crf_is_identical_across_stores(
        labels in prop::collection::vec(0u32..2, 1..5),
        alpha in 0.01f64..0.5,
    ) {
        let task = CrfTask::new(0, 2, 2);
        let seq: Vec<(SparseVector, u32)> = labels
            .iter()
            .map(|&y| (SparseVector::from_pairs(vec![(y as usize, 1.0)]), y))
            .collect();
        let tuple = Tuple::new(vec![Value::Sequence(seq)]);
        let model = vec![0.1; task.dimension()];
        step_both_stores(&task, &model, &tuple, alpha)?;
    }
}
