//! Integration test: every task of Figure 1(B) trains end-to-end through the
//! same architecture — generated data goes into a storage table, the trainer
//! runs IGD as a UDA over it, and the objective drops.

use bismarck_core::task::IgdTask;
use bismarck_core::tasks::{
    CrfTask, KalmanTask, LeastSquaresTask, LmfTask, LogisticRegressionTask, PortfolioTask, SvmTask,
};
use bismarck_core::{StepSizeSchedule, Trainer, TrainerConfig};
use bismarck_datagen::{
    dense_classification, labeled_sequences, ratings_table, returns_table, sparse_classification,
    timeseries_table, DenseClassificationConfig, RatingsConfig, ReturnsConfig, SequenceConfig,
    SparseClassificationConfig, TimeSeriesConfig,
};
use bismarck_storage::{ScanOrder, Table};
use bismarck_uda::ConvergenceTest;

fn config(epochs: usize, step: StepSizeSchedule) -> TrainerConfig {
    TrainerConfig::default()
        .with_scan_order(ScanOrder::ShuffleOnce { seed: 11 })
        .with_step_size(step)
        .with_convergence(ConvergenceTest::FixedEpochs(epochs))
}

/// Train a task and assert the objective improved by at least `factor`.
fn assert_improves<T: IgdTask>(task: &T, table: &Table, cfg: TrainerConfig, factor: f64) {
    let trainer = Trainer::new(task, cfg);
    let initial = trainer.objective(&task.initial_model(), table);
    let trained = trainer.train(table);
    let final_loss = trained.final_loss().expect("at least one epoch ran");
    assert!(
        final_loss < initial * factor,
        "{}: final {final_loss} vs initial {initial} (factor {factor})",
        task.name()
    );
}

#[test]
fn logistic_regression_on_dense_data() {
    let table = dense_classification(
        "forest",
        DenseClassificationConfig {
            examples: 1_000,
            dimension: 20,
            ..Default::default()
        },
    );
    let task = LogisticRegressionTask::new(1, 2, 20);
    assert_improves(
        &task,
        &table,
        config(10, StepSizeSchedule::Constant(0.3)),
        0.6,
    );
}

#[test]
fn svm_on_sparse_data() {
    let table = sparse_classification(
        "dblife",
        SparseClassificationConfig {
            examples: 800,
            vocabulary: 3_000,
            ..Default::default()
        },
    );
    let dim = bismarck_core::frontend::infer_dimension(&table, 1);
    let task = SvmTask::new(1, 2, dim);
    assert_improves(
        &task,
        &table,
        config(10, StepSizeSchedule::Constant(0.2)),
        0.6,
    );
}

#[test]
fn least_squares_regression() {
    let table = dense_classification(
        "reg",
        DenseClassificationConfig {
            examples: 500,
            dimension: 10,
            separation: 2.0,
            ..Default::default()
        },
    );
    // Treat the ±1 label as a regression target.
    let task = LeastSquaresTask::new(1, 2, 10);
    assert_improves(
        &task,
        &table,
        config(15, StepSizeSchedule::Constant(0.05)),
        0.7,
    );
}

#[test]
fn low_rank_matrix_factorization() {
    let table = ratings_table(
        "ml",
        RatingsConfig {
            rows: 80,
            cols: 60,
            ratings: 4_000,
            true_rank: 4,
            noise: 0.05,
            seed: 2,
        },
    );
    let task = LmfTask::new(0, 1, 2, 80, 60, 6).with_regularization(0.001);
    assert_improves(
        &task,
        &table,
        config(25, StepSizeSchedule::Constant(0.03)),
        0.3,
    );
}

#[test]
fn conditional_random_field_labeling() {
    let table = labeled_sequences(
        "conll",
        SequenceConfig {
            sentences: 120,
            num_features: 400,
            num_labels: 4,
            seed: 5,
            ..Default::default()
        },
    );
    let task = CrfTask::new(0, 400, 4);
    assert_improves(
        &task,
        &table,
        config(8, StepSizeSchedule::Constant(0.15)),
        0.7,
    );
}

#[test]
fn kalman_smoothing_of_time_series() {
    let table = timeseries_table(
        "ts",
        TimeSeriesConfig {
            horizon: 100,
            state_dim: 2,
            amplitude: 1.5,
            noise: 0.2,
            seed: 6,
        },
    );
    let task = KalmanTask::new(0, 1, 100, 2, 1.0);
    assert_improves(
        &task,
        &table,
        config(40, StepSizeSchedule::Constant(0.05)),
        0.3,
    );
}

#[test]
fn portfolio_optimization_respects_simplex() {
    let rc = ReturnsConfig::default();
    let table = returns_table("returns", &rc);
    let task = PortfolioTask::new(
        0,
        rc.mean_returns.clone(),
        rc.mean_returns.clone(),
        5.0,
        table.len(),
    );
    let trainer = Trainer::new(
        &task,
        config(20, StepSizeSchedule::Diminishing { initial: 0.5 }),
    );
    let trained = trainer.train(&table);
    let sum: f64 = trained.model.iter().sum();
    assert!(
        (sum - 1.0).abs() < 1e-6,
        "allocation must stay on the simplex, sum {sum}"
    );
    assert!(trained.model.iter().all(|&w| w >= -1e-9));
    // The optimizer should also have improved on the uniform allocation.
    let uniform_obj = trainer.objective(&task.initial_model(), &table);
    assert!(trained.final_loss().unwrap() <= uniform_obj + 1e-9);
}

#[test]
fn developer_effort_is_small_across_tasks() {
    // A smoke test of the paper's "few lines per task" claim in API terms:
    // every task is driven through the identical Trainer interface with no
    // task-specific code beyond construction.
    let table = dense_classification(
        "forest",
        DenseClassificationConfig {
            examples: 300,
            dimension: 8,
            ..Default::default()
        },
    );
    let lr = LogisticRegressionTask::new(1, 2, 8);
    let svm = SvmTask::new(1, 2, 8);
    let ls = LeastSquaresTask::new(1, 2, 8);
    let cfg = config(3, StepSizeSchedule::Constant(0.1));
    for trained in [
        Trainer::new(&lr, cfg.clone()).train(&table),
        Trainer::new(&svm, cfg.clone()).train(&table),
        Trainer::new(&ls, cfg).train(&table),
    ] {
        assert_eq!(trained.epochs(), 3);
        assert!(trained.final_loss().unwrap().is_finite());
        assert_eq!(trained.model.len(), 8);
    }
}
