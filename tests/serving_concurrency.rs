//! Train-and-serve under fire: reader threads hammer a [`ModelHandle`]'s
//! batched predict path while a [`ParallelTrainer`] epoch loop publishes
//! snapshots into the same handle, for every parallelization scheme from
//! Section 3.3 (pure-UDA and all three shared-memory disciplines).
//!
//! The invariant under test is the snapshot publication protocol: readers
//! only ever observe fully-published models. Concretely, from each reader's
//! point of view the snapshot version is monotonically non-decreasing, every
//! served weight vector is entirely finite, and logistic predictions are
//! valid probabilities — no torn, partial, or diverged model is ever visible,
//! no matter how the trainer's workers interleave.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use bismarck_core::serving::{ModelHandle, ServingTask};
use bismarck_core::tasks::LogisticRegressionTask;
use bismarck_core::{
    IgdTask, ParallelStrategy, ParallelTrainer, StepSizeSchedule, TrainerConfig, UpdateDiscipline,
};
use bismarck_datagen::{
    dense_classification, DenseClassificationConfig, CLASSIFICATION_FEATURES_COL,
    CLASSIFICATION_LABEL_COL,
};
use bismarck_linalg::FeatureVectorRef;
use bismarck_uda::ConvergenceTest;

const DIM: usize = 3;
const EPOCHS: usize = 30;
const READERS: usize = 4;

fn every_strategy() -> Vec<ParallelStrategy> {
    let mut strategies = vec![ParallelStrategy::PureUda { segments: 4 }];
    for discipline in [
        UpdateDiscipline::Lock,
        UpdateDiscipline::Aig,
        UpdateDiscipline::NoLock,
    ] {
        strategies.push(ParallelStrategy::SharedMemory {
            workers: 4,
            discipline,
        });
    }
    strategies
}

#[test]
fn readers_only_observe_fully_published_snapshots_under_every_strategy() {
    let table = dense_classification(
        "serve_lr",
        DenseClassificationConfig {
            examples: 400,
            dimension: DIM,
            separation: 3.0,
            clustered_by_label: false,
            seed: 7,
            ..Default::default()
        },
    );
    let task =
        LogisticRegressionTask::new(CLASSIFICATION_FEATURES_COL, CLASSIFICATION_LABEL_COL, DIM);

    for strategy in every_strategy() {
        let label = format!("{} ({} workers)", strategy.label(), strategy.workers());
        let handle = ModelHandle::with_initial(ServingTask::Logistic, task.initial_model())
            .expect("zero model is finite");
        let config = TrainerConfig::default()
            .with_step_size(StepSizeSchedule::Constant(0.2))
            .with_convergence(ConvergenceTest::FixedEpochs(EPOCHS))
            .with_serving(handle.clone());

        let done = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..READERS)
            .map(|reader| {
                let handle = handle.clone();
                let done = Arc::clone(&done);
                let label = label.clone();
                thread::spawn(move || {
                    // A fixed probe batch, scored over and over while the
                    // trainer races to publish fresher models underneath.
                    let dense = [1.0, -0.5, 0.25];
                    let indices = [0u32, 2];
                    let values = [2.0, -1.0];
                    let batch = [
                        FeatureVectorRef::Dense(&dense),
                        FeatureVectorRef::Sparse {
                            indices: &indices,
                            values: &values,
                        },
                    ];
                    let mut out = Vec::new();
                    let mut last_version = 0u64;
                    let mut observed = 0usize;
                    while !done.load(Ordering::Acquire) {
                        let snapshot = handle.predict_batch(&batch, &mut out);
                        assert!(
                            snapshot.version() >= last_version,
                            "{label} reader {reader}: version went backwards \
                             ({} after {last_version})",
                            snapshot.version()
                        );
                        last_version = snapshot.version();
                        assert!(
                            snapshot.weights().iter().all(|w| w.is_finite()),
                            "{label} reader {reader}: served non-finite weights \
                             at version {last_version}"
                        );
                        assert!(
                            out.len() == batch.len() && out.iter().all(|p| (0.0..=1.0).contains(p)),
                            "{label} reader {reader}: invalid probabilities {out:?} \
                             at version {last_version}"
                        );
                        observed += 1;
                    }
                    (last_version, observed)
                })
            })
            .collect();

        let trainer = ParallelTrainer::new(&task, config, strategy);
        let (trained, _) = trainer.train(&table);
        done.store(true, Ordering::Release);

        for reader in readers {
            let (last_version, observed) = reader.join().expect("reader panicked");
            assert!(observed > 0, "{label}: reader made no observations");
            assert!(
                last_version <= EPOCHS as u64,
                "{label}: reader saw version {last_version} past epoch count"
            );
        }

        // Every healthy epoch published exactly one snapshot, and the final
        // published model is the trained model.
        assert_eq!(trained.epochs(), EPOCHS, "{label}: wrong epoch count");
        let served = handle.snapshot();
        assert_eq!(
            served.version(),
            EPOCHS as u64,
            "{label}: wrong final version"
        );
        assert_eq!(
            served.weights(),
            trained.model.as_slice(),
            "{label}: served model differs from trained model"
        );
    }
}

#[test]
fn sequential_trainer_publishes_through_the_same_handle() {
    let table = dense_classification(
        "serve_seq",
        DenseClassificationConfig {
            examples: 200,
            dimension: DIM,
            separation: 3.0,
            clustered_by_label: false,
            seed: 11,
            ..Default::default()
        },
    );
    let task =
        LogisticRegressionTask::new(CLASSIFICATION_FEATURES_COL, CLASSIFICATION_LABEL_COL, DIM);
    let handle = ModelHandle::new(ServingTask::Logistic, DIM);
    let config = TrainerConfig::default()
        .with_step_size(StepSizeSchedule::Constant(0.2))
        .with_convergence(ConvergenceTest::FixedEpochs(10))
        .with_serving(handle.clone());

    let trained = bismarck_core::Trainer::new(&task, config).train(&table);
    let served = handle.snapshot();
    assert_eq!(served.version(), 10);
    assert_eq!(served.weights(), trained.model.as_slice());
}

#[test]
fn dimension_mismatch_is_rejected_before_any_epoch_runs() {
    let table = dense_classification(
        "serve_dim",
        DenseClassificationConfig {
            examples: 50,
            dimension: DIM,
            separation: 3.0,
            clustered_by_label: false,
            seed: 13,
            ..Default::default()
        },
    );
    let task =
        LogisticRegressionTask::new(CLASSIFICATION_FEATURES_COL, CLASSIFICATION_LABEL_COL, DIM);
    let wrong = ModelHandle::new(ServingTask::Logistic, DIM + 2);
    let config = TrainerConfig::default()
        .with_convergence(ConvergenceTest::FixedEpochs(5))
        .with_serving(wrong.clone());

    let err = ParallelTrainer::new(&task, config, ParallelStrategy::PureUda { segments: 2 })
        .try_train(&table)
        .expect_err("mismatched handle must be rejected");
    assert!(err.to_string().contains("serving handle"), "{err}");
    assert!(err.last_good().is_none(), "no training work should be lost");
    // The handle never saw a publish: still the zero model at version 0.
    assert_eq!(wrong.snapshot().version(), 0);
}
