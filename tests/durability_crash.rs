//! Durability and crash-recovery tests for the storage WAL + snapshot
//! subsystem and its wiring up through the SQL session.
//!
//! Three layers of coverage:
//!
//! * WAL replay edge cases (torn tails, duplicate create/drop sequences,
//!   missing logs, checksum-corrupt middle records) driven by corrupting
//!   real on-disk files — these run in every test pass;
//! * the paper's user experience surviving a restart: train via
//!   `SELECT SVMTrain(...)`, drop the session, reopen the directory, and
//!   `SVMPredict(...)` must return identical predictions;
//! * a byte-granular crash-point matrix (`--features fault-injection`):
//!   every byte written and every metadata syscall is a crash point, and
//!   recovery after a crash at *any* of them must restore a state some
//!   prefix of the acknowledged operations explains — never anything torn.

use std::path::PathBuf;

use bismarck_storage::{
    Column, DataType, Database, Schema, StorageError, Value, SNAPSHOT_FILE, WAL_FILE,
};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bismarck-durability-crash-{}-{name}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn schema() -> Schema {
    Schema::new(vec![Column::new("id", DataType::Int)]).unwrap()
}

fn row(i: i64) -> Vec<Value> {
    vec![Value::Int(i)]
}

/// A comparable description of the full catalog contents: sorted table
/// names, each with every row in scan order. (Only the fault-injection
/// crash matrix compares whole states; hence the cfg_attr.)
#[cfg_attr(not(feature = "fault-injection"), allow(dead_code))]
fn fingerprint(db: &Database) -> Vec<(String, Vec<Vec<Value>>)> {
    db.table_names()
        .into_iter()
        .map(|name| {
            let rows = db
                .table(&name)
                .unwrap()
                .scan()
                .map(|tuple| tuple.values().to_vec())
                .collect();
            (name, rows)
        })
        .collect()
}

#[test]
fn fresh_directory_recovers_empty() {
    let dir = temp_dir("fresh");
    {
        let (db, report) = Database::open(&dir).unwrap();
        assert!(db.is_empty());
        assert_eq!(report.tables_restored, 0);
        assert_eq!(report.records_replayed, 0);
        assert_eq!(report.bytes_truncated, 0);
        assert!(!report.snapshot_loaded);
    }
    // Reopening an empty-but-initialised directory is also clean.
    let (db, report) = Database::open(&dir).unwrap();
    assert!(db.is_empty());
    assert_eq!(report.records_replayed, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zero_byte_wal_file_recovers_empty() {
    let dir = temp_dir("zero-byte");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(WAL_FILE), b"").unwrap();
    let (mut db, report) = Database::open(&dir).unwrap();
    assert!(db.is_empty());
    assert_eq!(report.bytes_truncated, 0);
    // The recreated log is writable.
    db.create_table("t", schema()).unwrap();
    drop(db);
    let (db, _) = Database::open(&dir).unwrap();
    assert!(db.contains("t"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_record_at_end_is_truncated_and_reported() {
    let dir = temp_dir("torn-tail");
    {
        let (mut db, _) = Database::open(&dir).unwrap();
        db.create_table("t", schema()).unwrap();
        db.insert_rows("t", vec![row(1), row(2)]).unwrap();
    }
    // Cut into the last record, as a crash mid-append would.
    let wal_path = dir.join(WAL_FILE);
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();

    let (db, report) = Database::open(&dir).unwrap();
    assert!(report.bytes_truncated > 0);
    assert_eq!(report.records_replayed, 1);
    // The torn insert is gone; the create survived.
    assert!(db.contains("t"));
    assert!(db.table("t").unwrap().is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trailing_garbage_is_truncated_and_earlier_records_survive() {
    let dir = temp_dir("garbage-tail");
    {
        let (mut db, _) = Database::open(&dir).unwrap();
        db.create_table("t", schema()).unwrap();
        db.insert_rows("t", vec![row(7)]).unwrap();
    }
    let wal_path = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes.extend_from_slice(&[0xAB; 5]);
    std::fs::write(&wal_path, &bytes).unwrap();

    let (db, report) = Database::open(&dir).unwrap();
    assert_eq!(report.bytes_truncated, 5);
    assert_eq!(db.table("t").unwrap().len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicate_create_drop_sequences_replay_cleanly() {
    let dir = temp_dir("create-drop");
    {
        let (mut db, _) = Database::open(&dir).unwrap();
        db.create_table("t", schema()).unwrap();
        db.drop_table("t").unwrap();
        db.create_table("t", schema()).unwrap();
        db.drop_table("t").unwrap();
        db.create_table("t", schema()).unwrap();
        db.insert_rows("t", vec![row(5)]).unwrap();
    }
    let (db, report) = Database::open(&dir).unwrap();
    assert_eq!(report.records_replayed, 6);
    assert_eq!(report.tables_restored, 1);
    assert_eq!(db.table("t").unwrap().get(0).unwrap().get_int(0), Some(5));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_present_but_log_missing_restores_from_snapshot() {
    let dir = temp_dir("snap-no-log");
    {
        let (mut db, _) = Database::open(&dir).unwrap();
        db.set_compact_threshold(1); // snapshot after every operation
        db.create_table("t", schema()).unwrap();
        db.insert_rows("t", vec![row(1), row(2), row(3)]).unwrap();
    }
    std::fs::remove_file(dir.join(WAL_FILE)).unwrap();

    let (mut db, report) = Database::open(&dir).unwrap();
    assert!(report.snapshot_loaded);
    assert_eq!(report.records_replayed, 0);
    assert_eq!(db.table("t").unwrap().len(), 3);
    // The recreated log continues from the snapshot's LSN: new operations
    // must survive another reopen rather than being skipped as stale.
    db.insert_rows("t", vec![row(4)]).unwrap();
    drop(db);
    let (db, _) = Database::open(&dir).unwrap();
    assert_eq!(db.table("t").unwrap().len(), 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checksum_corrupt_middle_record_is_a_hard_error() {
    let dir = temp_dir("corrupt-middle");
    {
        let (mut db, _) = Database::open(&dir).unwrap();
        db.create_table("t", schema()).unwrap();
        db.insert_rows("t", vec![row(1)]).unwrap();
    }
    let wal_path = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    // Header is 8 bytes; the first record is [u32 len][payload][u64 fnv].
    // Flip a payload byte of record one — record two still follows, so this
    // is damage no crash can explain and must NOT be silently truncated.
    let flip_at = 8 + 4 + 9;
    assert!(flip_at < bytes.len());
    bytes[flip_at] ^= 0xFF;
    std::fs::write(&wal_path, &bytes).unwrap();

    match Database::open(&dir) {
        Err(StorageError::Corrupt(_)) => {}
        other => panic!("expected hard corruption error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_snapshot_is_a_hard_error() {
    let dir = temp_dir("corrupt-snap");
    {
        let (mut db, _) = Database::open(&dir).unwrap();
        db.create_table("t", schema()).unwrap();
        db.insert_rows("t", vec![row(1)]).unwrap();
        db.compact().unwrap();
    }
    let snap_path = dir.join(SNAPSHOT_FILE);
    let mut bytes = std::fs::read(&snap_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&snap_path, &bytes).unwrap();

    match Database::open(&dir) {
        Err(StorageError::Corrupt(_)) => {}
        other => panic!("expected hard corruption error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The paper's Section 2.1 experience across a process restart: train and
/// persist a model, "exit" (drop the session), reopen the same directory,
/// and predict — the model and training table both come back from disk.
#[test]
fn train_restart_predict_roundtrip() {
    use bismarck_core::{StepSizeSchedule, TrainerConfig};
    use bismarck_datagen::{dense_classification, DenseClassificationConfig};
    use bismarck_sql::SqlSession;
    use bismarck_uda::ConvergenceTest;

    let fast = TrainerConfig::default()
        .with_step_size(StepSizeSchedule::Constant(0.2))
        .with_convergence(ConvergenceTest::FixedEpochs(8));

    let dir = temp_dir("roundtrip");
    let before = {
        let mut session = SqlSession::open(&dir).unwrap().with_trainer_config(fast);
        session
            .register_table(dense_classification(
                "forest",
                DenseClassificationConfig {
                    examples: 400,
                    dimension: 8,
                    ..Default::default()
                },
            ))
            .unwrap();
        session
            .execute("SELECT SVMTrain('svm_model', 'forest', 'vec', 'label')")
            .expect("training");
        session
            .execute("SELECT SVMPredict('svm_model', 'forest', 'vec')")
            .expect("prediction before restart")
    };

    // A new session over the same directory recovers the catalog from disk.
    let mut session = SqlSession::open(&dir).unwrap();
    let report = session.recovery_report().expect("opened durably").clone();
    assert_eq!(report.tables_restored, 2, "training table + model table");

    let after = session
        .execute("SELECT SVMPredict('svm_model', 'forest', 'vec')")
        .expect("prediction after restart");
    assert_eq!(before.columns, after.columns);
    assert_eq!(
        before.rows, after.rows,
        "recovered model must predict identically"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Byte-granular crash injection: only compiled with `--features
/// fault-injection` (forwarded to `bismarck-storage`).
#[cfg(feature = "fault-injection")]
mod crash_matrix {
    use super::*;
    use bismarck_storage::durable::fault::{self, Mode};
    use bismarck_storage::Table;
    use std::sync::{Mutex, OnceLock};

    /// The injector is process-global; every test that arms it holds this.
    fn injector_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        match LOCK.get_or_init(|| Mutex::new(())).lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    type Op = fn(&mut Database) -> Result<(), StorageError>;

    /// A scenario mixing every logged operation kind. Each step tolerates
    /// earlier steps having failed (crash mode stops the world mid-run).
    fn ops() -> Vec<Op> {
        vec![
            |db| db.create_table("t", schema()).map(|_| ()),
            |db| db.insert_rows("t", vec![row(1), row(2)]).map(|_| ()),
            |db| {
                let mut model = Table::new("model", schema());
                model.insert(row(10)).unwrap();
                db.register_table(model)
            },
            |db| db.insert_rows("t", vec![row(3)]).map(|_| ()),
            |db| db.drop_table("model").map(|_| ()),
            |db| db.create_table("u", schema()).map(|_| ()),
        ]
    }

    /// Every catalog state some prefix of the scenario's operations
    /// explains, computed against a plain in-memory database.
    fn prefix_states() -> Vec<Vec<(String, Vec<Vec<Value>>)>> {
        let mut db = Database::new();
        let mut states = vec![fingerprint(&db)];
        for op in ops() {
            op(&mut db).unwrap();
            states.push(fingerprint(&db));
        }
        states
    }

    /// Run the scenario with a crash injected at every fault point in turn.
    /// After each crash, reopening the directory must recover one of the
    /// valid prefix states — the operation in flight either happened
    /// entirely or not at all, and nothing earlier is ever lost.
    fn run_matrix(name: &str, compact_threshold: Option<u64>) {
        let _guard = injector_lock();
        let states = prefix_states();

        // Counting run: how many fault points does the scenario consume?
        let count_dir = temp_dir(&format!("{name}-count"));
        let (mut db, _) = Database::open(&count_dir).unwrap();
        if let Some(threshold) = compact_threshold {
            db.set_compact_threshold(threshold);
        }
        fault::arm(Mode::Crash, u64::MAX);
        for op in ops() {
            op(&mut db).expect("counting run must not fail");
        }
        let total = fault::disarm();
        assert!(!fault::fired());
        assert!(total > 0);
        drop(db);
        assert_eq!(
            fingerprint(&Database::open(&count_dir).unwrap().0),
            *states.last().unwrap(),
            "fault-free run must recover the final state"
        );
        std::fs::remove_dir_all(&count_dir).ok();

        for point in 0..total {
            let dir = temp_dir(&format!("{name}-k{point}"));
            let (mut db, _) = Database::open(&dir).unwrap();
            if let Some(threshold) = compact_threshold {
                db.set_compact_threshold(threshold);
            }
            fault::arm(Mode::Crash, point);
            for op in ops() {
                let _ = op(&mut db); // failures expected at and after the crash
            }
            let fired = fault::fired();
            fault::disarm();
            assert!(fired, "crash point {point} of {total} never fired");
            drop(db);

            let (recovered, _report) = Database::open(&dir)
                .unwrap_or_else(|e| panic!("crash point {point} of {total}: recovery failed: {e}"));
            let state = fingerprint(&recovered);
            assert!(
                states.contains(&state),
                "crash point {point} of {total} recovered a non-prefix state: {state:?}"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn every_crash_point_recovers_a_prefix_state() {
        run_matrix("matrix", None);
    }

    #[test]
    fn every_crash_point_recovers_a_prefix_state_under_constant_compaction() {
        // Threshold 1 makes every operation trigger a compaction, so the
        // matrix also crashes inside snapshot writes and WAL truncation.
        run_matrix("matrix-compact", Some(1));
    }

    #[test]
    fn transient_fault_surfaces_error_and_catalog_stays_consistent() {
        let _guard = injector_lock();
        let dir = temp_dir("fail-once");
        let (mut db, _) = Database::open(&dir).unwrap();
        db.create_table("t", schema()).unwrap();
        db.insert_rows("t", vec![row(1)]).unwrap();

        fault::arm(Mode::FailOnce, 3);
        let err = db.insert_rows("t", vec![row(2)]);
        assert!(err.is_err(), "injected fault must surface as an error");
        assert!(fault::fired());
        // Still armed, but FailOnce heals after firing: the same session
        // keeps working and the failed batch left nothing behind.
        db.insert_rows("t", vec![row(3)]).unwrap();
        fault::disarm();
        assert_eq!(db.table("t").unwrap().len(), 2);
        drop(db);

        let (db, report) = Database::open(&dir).unwrap();
        assert_eq!(report.bytes_truncated, 0, "failed append was rolled back");
        let rows: Vec<_> = db
            .table("t")
            .unwrap()
            .scan()
            .map(|tuple| tuple.get_int(0).unwrap())
            .collect();
        assert_eq!(rows, vec![1, 3]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
