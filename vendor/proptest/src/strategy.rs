//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Mirrors `proptest::strategy::Strategy` minus shrinking: `generate`
/// plays the role of `new_tree(..).current()`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `recurse` receives a strategy for
    /// the inner (smaller) value and returns the composite case.
    /// `depth` bounds the nesting; `_desired_size` and
    /// `_expected_branch_size` are accepted for signature parity with
    /// upstream and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            // At every level the generator may bottom out at a leaf, so
            // generated values have depth uniform in 0..=depth.
            let level = Union::new(vec![base.clone(), recurse(strat).boxed()]);
            strat = level.boxed();
        }
        strat
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cheaply clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among strategies of a common value type; the output
/// of the `prop_oneof!` macro.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.int_in(self.start as i128, self.end as i128 - 1) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.int_in(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let unit = rng.unit_f64() as $t;
                let value = self.start + (self.end - self.start) * unit;
                // Narrowing to f32 (or extreme f64 spans) can round the
                // product up onto the excluded upper bound; step one ulp
                // back to honour the half-open contract.
                if value < self.end {
                    value
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let unit = rng.unit_f64() as $t;
                self.start() + (self.end() - self.start()) * unit
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let i = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
            let u = (3usize..=3).generate(&mut rng);
            assert_eq!(u, 3);
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::deterministic("compose");
        let s = crate::prop_oneof![
            (0i32..10).prop_map(|v| v * 2),
            (100i32..110).prop_map(|v| v + 1),
        ];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((v % 2 == 0 && v < 20) || (101..111).contains(&v));
        }
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        fn leaves_in_range(t: &Tree) -> bool {
            match t {
                Tree::Leaf(v) => (0..10).contains(v),
                Tree::Node(a, b) => leaves_in_range(a) && leaves_in_range(b),
            }
        }
        let leaf = (0i32..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::deterministic("recursive");
        for _ in 0..100 {
            let tree = strat.generate(&mut rng);
            assert!(depth(&tree) <= 4);
            assert!(leaves_in_range(&tree));
        }
    }
}
