//! Test-run configuration and the deterministic RNG behind strategies.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-`proptest!` configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast in CI while
        // still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// RNG handed to [`crate::Strategy::generate`]. Seeded from the test
/// name so every run of a given test replays the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Seed deterministically from an arbitrary label (the test name).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label gives a stable, well-mixed 64-bit seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(hash),
        }
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        self.rng.gen_range(0..bound)
    }

    /// Uniform integer in `[lo, hi]` over the widest integer type.
    pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo <= hi, "cannot sample empty integer range");
        let span = (hi - lo) as u128 + 1;
        let word = u128::from(self.rng.next_u64());
        lo + ((word.wrapping_mul(span)) >> 64) as i128
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.rng.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_label() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let sa: Vec<usize> = (0..10).map(|_| a.below(1000)).collect();
        let sb: Vec<usize> = (0..10).map(|_| b.below(1000)).collect();
        let sc: Vec<usize> = (0..10).map(|_| c.below(1000)).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn int_in_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = rng.int_in(-7, 7);
            assert!((-7..=7).contains(&v));
        }
        assert_eq!(rng.int_in(5, 5), 5);
    }
}
