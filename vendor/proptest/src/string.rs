//! String strategies from a small regex subset.
//!
//! Upstream proptest interprets a `&str` strategy as a full regex. The
//! workspace's tests only use patterns of the shape `X{lo,hi}` where
//! `X` is `.` or a character class `[...]`, so that is what this
//! parser supports; anything else panics with a clear message rather
//! than silently generating the wrong language.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_pattern(self);
        let len = rng.int_in(lo as i128, hi as i128) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len())])
            .collect()
    }
}

/// Decompose `X{lo,hi}` into (alphabet, lo, hi).
fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let (element, counts) = match pattern.rfind('{') {
        Some(open) if pattern.ends_with('}') => {
            (&pattern[..open], &pattern[open + 1..pattern.len() - 1])
        }
        _ => unsupported(pattern),
    };
    let (lo, hi) = match counts.split_once(',') {
        Some((lo, hi)) => match (lo.trim().parse(), hi.trim().parse()) {
            (Ok(lo), Ok(hi)) => (lo, hi),
            _ => unsupported(pattern),
        },
        None => match counts.trim().parse() {
            Ok(n) => (n, n),
            Err(_) => unsupported(pattern),
        },
    };
    let alphabet = if element == "." {
        // Printable ASCII plus a couple of control characters, to poke
        // at lexer edge cases the way `.` in a real regex would.
        let mut chars: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
        chars.push('\n');
        chars.push('\t');
        chars
    } else if element.starts_with('[') && element.ends_with(']') {
        parse_class(&element[1..element.len() - 1], pattern)
    } else {
        unsupported(pattern)
    };
    assert!(
        !alphabet.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    (alphabet, lo, hi)
}

/// Expand the body of a `[...]` class: literals and `a-z` ranges, with
/// a trailing `-` treated as a literal (standard regex behaviour).
fn parse_class(body: &str, pattern: &str) -> Vec<char> {
    if body.starts_with('^') {
        unsupported(pattern);
    }
    let chars: Vec<char> = body.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            assert!(lo <= hi, "inverted range {lo}-{hi} in pattern {pattern:?}");
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    alphabet
}

fn unsupported(pattern: &str) -> ! {
    panic!(
        "string pattern {pattern:?} is outside the regex subset supported by the \
         vendored proptest stand-in (expected `.{{lo,hi}}` or `[class]{{lo,hi}}`)"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_pattern_generates_in_length_bounds() {
        let mut rng = TestRng::deterministic("dot");
        for _ in 0..100 {
            let s = ".{0,12}".generate(&mut rng);
            assert!(s.chars().count() <= 12);
        }
    }

    #[test]
    fn class_pattern_uses_only_listed_chars() {
        let mut rng = TestRng::deterministic("class");
        for _ in 0..100 {
            let s = "[ a-zA-Z0-9_'(),*;=<>.+-]{0,20}".generate(&mut rng);
            assert!(s
                .chars()
                .all(|c| c == ' ' || c.is_ascii_alphanumeric() || "_'(),*;=<>.+-".contains(c)));
        }
    }

    #[test]
    fn exact_count_pattern() {
        let mut rng = TestRng::deterministic("exact");
        assert_eq!("[ab]{5}".generate(&mut rng).len(), 5);
    }
}
