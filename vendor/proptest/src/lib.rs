//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_recursive`
//! / `boxed`, range and tuple strategies, `prop::collection::vec`,
//! `prop::sample::select`, a small regex-subset string strategy, the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!`
//! macros and `ProptestConfig::with_cases`.
//!
//! Differences from upstream, by design: cases are generated from a
//! deterministic per-test seed (derived from the test name) so CI runs
//! are reproducible, and there is **no shrinking** — a failing case
//! reports its inputs verbatim. That trades minimal counterexamples for
//! zero dependencies, which is the right trade in this offline build
//! environment.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// Namespace mirroring `proptest::prop` as used via the prelude
/// (`prop::collection::vec`, `prop::sample::select`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The glob-import surface test files rely on.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body; failure aborts the
/// current case with a message instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::core::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                left,
                right
            ));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests. Accepts the upstream surface used here: an
/// optional leading `#![proptest_config(..)]`, then `#[test]` functions
/// whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng =
                $crate::TestRng::deterministic(::core::stringify!($name));
            for case in 0..config.cases {
                let mut __parts: ::std::vec::Vec<::std::string::String> =
                    ::std::vec::Vec::new();
                $(
                    let __generated = $crate::Strategy::generate(&($strategy), &mut rng);
                    __parts.push(::std::format!(
                        "{} = {:?}",
                        ::core::stringify!($arg),
                        &__generated
                    ));
                    let $arg = __generated;
                )+
                let case_desc = __parts.join(", ");
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::core::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(message) = outcome {
                    ::core::panic!(
                        "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                        ::core::stringify!($name),
                        case + 1,
                        config.cases,
                        message,
                        case_desc
                    );
                }
            }
        }
    )*};
}
