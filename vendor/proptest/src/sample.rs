//! Sampling from explicit value lists (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding a uniformly chosen clone of one of `options`.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

/// Output of [`select`].
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_draws_only_listed_values() {
        let mut rng = TestRng::deterministic("select");
        let s = select(vec!["a", "b", "c"]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert!(seen.iter().all(|v| ["a", "b", "c"].contains(v)));
        assert!(seen.len() > 1, "should mix between options");
    }
}
