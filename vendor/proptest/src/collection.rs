//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length bound, converted from the size expressions
/// `proptest::collection::vec` accepts.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.int_in(self.size.lo as i128, self.size.hi as i128) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_size_range() {
        let mut rng = TestRng::deterministic("vec");
        let s = vec(0i32..5, 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|e| (0..5).contains(e)));
        }
        let exact = vec(0i32..5, 3usize..=3);
        assert_eq!(exact.generate(&mut rng).len(), 3);
    }
}
