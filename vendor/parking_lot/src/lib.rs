//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning
//! interface (`lock()` / `read()` / `write()` return guards directly,
//! no `Result`). Poisoned std locks are recovered transparently: a
//! panicked writer leaves the protected model in whatever state it
//! reached, which matches `parking_lot` semantics.

use std::sync;

/// Mutual exclusion primitive mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = Arc::new(RwLock::new(vec![0u64; 4]));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    l.write()[i] = i as u64 + 1;
                    l.read().iter().sum::<u64>()
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(l.read().iter().sum::<u64>(), 1 + 2 + 3 + 4);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
