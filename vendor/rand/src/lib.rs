//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand` 0.8 API that the Bismarck
//! reproduction actually uses: `StdRng` (seedable from a `u64`), the
//! `Rng` methods `gen`, `gen_range` and `gen_bool`, and `SliceRandom::
//! shuffle`. The generator is xoshiro256** seeded via SplitMix64 — not
//! bit-compatible with upstream `StdRng` (ChaCha12), but deterministic
//! for a given seed, which is all the callers rely on. Swapping this
//! crate for the real `rand` is a one-line change in the workspace
//! manifest once a registry is available.

pub mod rngs;
pub mod seq;

mod uniform;

pub use uniform::SampleRange;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Return a uniform `f64` in `[0, 1)` built from the high 53 bits.
    fn next_f64(&mut self) -> f64 {
        // 2^-53, the spacing of doubles in [0.5, 1).
        const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
        (self.next_u64() >> 11) as f64 * SCALE
    }
}

/// Seedable generators; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
