//! Named generators; only [`StdRng`] is provided.

use crate::{RngCore, SeedableRng};

/// Deterministic generator used everywhere a `rand::rngs::StdRng` is
/// expected: xoshiro256** with SplitMix64 seed expansion. Statistically
/// strong for simulation workloads and fully reproducible per seed; not
/// cryptographically secure (neither caller needs that).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            assert!(v < 10);
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
