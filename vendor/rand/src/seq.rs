//! Sequence helpers; only `SliceRandom::shuffle` (and `choose`, which
//! falls out of the same machinery) are provided.

use crate::{Rng, RngCore};

/// Slice extension trait mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type of the sequence.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly pick a reference to one element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_deterministic_per_seed() {
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v: Vec<u32> = (0..20).collect();
            v.shuffle(&mut rng);
            v
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn choose_from_slice() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = [10, 20, 30];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
