//! Uniform sampling from range expressions, mirroring `rand`'s
//! `SampleRange`. Integer sampling uses multiply-then-shift range
//! reduction; the modulo bias of the naive approach is avoided by
//! widening to 128 bits (Lemire's method without the rejection step —
//! bias is at most 2^-64, far below anything the callers can observe).

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Range expressions [`crate::Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = sample_u64_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (((rng.next_u64() as u128).wrapping_mul(span)) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = rng.next_f64() as $t;
                let value = self.start + (self.end - self.start) * unit;
                // Narrowing to f32 (or extreme f64 spans) can round the
                // product up onto the excluded upper bound; step one ulp
                // back to honour the half-open contract.
                if value < self.end {
                    value
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let unit = rng.next_f64() as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);
