//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the subset of the criterion 0.5 API the `bismarck-bench`
//! benches use — `Criterion`, `BenchmarkGroup` (with `sample_size`,
//! `measurement_time`, `warm_up_time`, `bench_function`,
//! `bench_with_input`, `finish`), `BenchmarkId`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock measurement loop instead of criterion's statistical
//! machinery. Reported numbers are mean wall time per iteration; good
//! enough to spot order-of-magnitude regressions, and the bench code
//! itself stays source-compatible with the real crate.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Accepted for parity with the real crate; CLI args are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            _criterion: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(
            &id.to_string(),
            self.default_sample_size,
            self.default_measurement_time,
            f,
        );
        self
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Bound the total time spent measuring one benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Accepted for parity; the warm-up pass here is a fixed single
    /// untimed iteration, so the requested duration is ignored.
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Set per-benchmark throughput info; accepted and ignored.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// Identify by function name and parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: parameter.to_string(),
        }
    }

    /// Identify by parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(function) => write!(f, "{}/{}", function, self.parameter),
            None => write!(f, "{}", self.parameter),
        }
    }
}

/// Throughput annotation; accepted for API parity, not reported.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Measure `f`, recording `sample_size` samples or stopping early
    /// once the measurement-time budget is spent.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f()); // warm-up, untimed
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        measurement_time,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        eprintln!("  {label}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("nonempty");
    let max = bencher.samples.iter().max().expect("nonempty");
    eprintln!(
        "  {label}: mean {mean:?} (min {min:?}, max {max:?}, {} samples)",
        bencher.samples.len()
    );
}

/// Collect benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for a bench target, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs >= 2, "warm-up plus at least one timed sample");
    }

    #[test]
    fn benchmark_id_display() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
