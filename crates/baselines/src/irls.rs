//! Iteratively re-weighted least squares (Newton's method) for logistic
//! regression — the algorithm behind MADlib-style native LR.
//!
//! Each iteration builds the `d × d` weighted Gram matrix `Xᵀ W X` and solves
//! a linear system: `O(N·d²)` to accumulate plus `O(d³)` to solve, i.e.
//! super-linear in the model dimension — the complexity the paper contrasts
//! with IGD's `O(N·d)` per epoch (Section 4.2).

use bismarck_linalg::ops::sigmoid;
use bismarck_storage::Table;

use crate::solve::solve_dense;

/// Configuration of the IRLS trainer.
#[derive(Debug, Clone, Copy)]
pub struct IrlsConfig {
    /// Feature-vector column position.
    pub features_col: usize,
    /// ±1 label column position.
    pub label_col: usize,
    /// Model dimension.
    pub dimension: usize,
    /// Maximum Newton iterations.
    pub max_iterations: usize,
    /// Stop when the relative change in loss drops below this tolerance.
    pub tolerance: f64,
    /// Ridge term added to the Hessian diagonal for numerical stability.
    pub ridge: f64,
}

impl IrlsConfig {
    /// A reasonable default configuration for a given column layout.
    pub fn new(features_col: usize, label_col: usize, dimension: usize) -> Self {
        IrlsConfig {
            features_col,
            label_col,
            dimension,
            max_iterations: 25,
            tolerance: 1e-6,
            ridge: 1e-6,
        }
    }
}

/// Result of an IRLS run.
#[derive(Debug, Clone)]
pub struct IrlsResult {
    /// Learned coefficients.
    pub model: Vec<f64>,
    /// Negative log-likelihood after each iteration.
    pub losses: Vec<f64>,
    /// Number of Newton iterations performed.
    pub iterations: usize,
}

fn logistic_loss(table: &Table, config: &IrlsConfig, w: &[f64]) -> f64 {
    let mut loss = 0.0;
    for tuple in table.scan() {
        let (Some(x), Some(y)) = (
            tuple.feature_view(config.features_col),
            tuple.get_double(config.label_col),
        ) else {
            continue;
        };
        loss += bismarck_linalg::ops::log1p_exp(-y * x.dot(w));
    }
    loss
}

/// Train logistic regression with IRLS / Newton's method.
pub fn irls_train(table: &Table, config: IrlsConfig) -> IrlsResult {
    let d = config.dimension;
    let mut w = vec![0.0; d];
    let mut losses = Vec::new();
    let mut iterations = 0;

    for _ in 0..config.max_iterations {
        iterations += 1;
        // Accumulate Hessian H = X^T S X + ridge·I and gradient g = X^T r.
        let mut hessian = vec![0.0; d * d];
        let mut gradient = vec![0.0; d];
        for tuple in table.scan() {
            let (Some(x), Some(y)) = (
                tuple.feature_view(config.features_col),
                tuple.get_double(config.label_col),
            ) else {
                continue;
            };
            let margin = x.dot(&w);
            // Probability of the positive class and the 0/1 target.
            let p = sigmoid(margin);
            let target = if y > 0.0 { 1.0 } else { 0.0 };
            let s = (p * (1.0 - p)).max(1e-9);
            let residual = target - p;
            // Accumulate over stored entries only: the outer product of a
            // sparse row touches nnz² Hessian cells, not d², and no dense
            // copy of the row is materialized.
            for (i, xi) in x.iter_entries() {
                if i >= d || xi == 0.0 {
                    continue;
                }
                gradient[i] += residual * xi;
                let row = i * d;
                for (j, xj) in x.iter_entries() {
                    if j < d && xj != 0.0 {
                        hessian[row + j] += s * xi * xj;
                    }
                }
            }
        }
        for i in 0..d {
            hessian[i * d + i] += config.ridge;
        }

        // Newton step: w += H^{-1} g.
        let Some(step) = solve_dense(&hessian, &gradient, d) else {
            break;
        };
        for (wi, si) in w.iter_mut().zip(step.iter()) {
            *wi += si;
        }

        let loss = logistic_loss(table, &config, &w);
        let stop = losses
            .last()
            .map(|&prev: &f64| (prev - loss).abs() <= config.tolerance * prev.abs().max(1.0))
            .unwrap_or(false);
        losses.push(loss);
        if stop {
            break;
        }
    }

    IrlsResult {
        model: w,
        losses,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bismarck_storage::{Column, DataType, Schema, Value};
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn table(n: usize, seed: u64) -> Table {
        let schema = Schema::new(vec![
            Column::new("vec", DataType::DenseVec),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("lr", schema);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            let x = vec![
                y * 1.0 + rng.gen_range(-0.8..0.8),
                -y * 0.5 + rng.gen_range(-0.8..0.8),
                1.0, // bias feature
            ];
            t.insert(vec![Value::from(x), Value::Double(y)]).unwrap();
        }
        t
    }

    #[test]
    fn irls_converges_quickly() {
        let t = table(400, 5);
        let result = irls_train(&t, IrlsConfig::new(0, 1, 3));
        assert!(result.iterations <= 25);
        assert!(result.losses.len() >= 2);
        // Newton's method should make the loss monotonically decrease here.
        for w in result.losses.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "losses {:?}", result.losses);
        }
        // Final loss should be well below the chance loss N·log(2).
        let chance = 400.0 * std::f64::consts::LN_2;
        assert!(*result.losses.last().unwrap() < chance * 0.7);
    }

    #[test]
    fn irls_separates_the_classes() {
        let t = table(300, 9);
        let result = irls_train(&t, IrlsConfig::new(0, 1, 3));
        let mut correct = 0;
        for tuple in t.scan() {
            let x = tuple.feature_view(0).unwrap();
            let y = tuple.get_double(1).unwrap();
            if x.dot(&result.model) * y > 0.0 {
                correct += 1;
            }
        }
        assert!(correct as f64 / t.len() as f64 > 0.85);
    }

    #[test]
    fn irls_handles_empty_table() {
        let schema = Schema::new(vec![
            Column::new("vec", DataType::DenseVec),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        let t = Table::new("empty", schema);
        let result = irls_train(&t, IrlsConfig::new(0, 1, 2));
        // With no data the Hessian is just the ridge, the gradient is zero,
        // so the model stays at zero.
        assert!(result.model.iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn tolerance_stops_early() {
        let t = table(200, 3);
        let tight = irls_train(
            &t,
            IrlsConfig {
                max_iterations: 50,
                ..IrlsConfig::new(0, 1, 3)
            },
        );
        assert!(tight.iterations < 50, "should stop before the cap");
    }
}
