//! Alternating least squares (ALS) for low-rank matrix factorization — the
//! classic batch algorithm behind native recommendation tools.
//!
//! Each sweep fixes one factor and re-solves a regularized `rank × rank`
//! least-squares problem for every row (then every column). A sweep touches
//! every rating once per side and performs a dense solve per entity, so the
//! per-sweep cost is `O(nnz·rank² + (rows + cols)·rank³)` — much heavier than
//! an IGD epoch's `O(nnz·rank)`, which is why Figure 7(A) shows the native
//! LMF tools orders of magnitude slower.

use bismarck_storage::Table;

use crate::solve::solve_dense;

/// Configuration of the ALS trainer.
#[derive(Debug, Clone, Copy)]
pub struct AlsConfig {
    /// Row-index column position.
    pub row_col: usize,
    /// Column-index column position.
    pub col_col: usize,
    /// Rating column position.
    pub rating_col: usize,
    /// Number of rows (users).
    pub rows: usize,
    /// Number of columns (items).
    pub cols: usize,
    /// Latent rank.
    pub rank: usize,
    /// Number of alternating sweeps.
    pub sweeps: usize,
    /// Ridge regularization added to each local solve.
    pub lambda: f64,
}

impl AlsConfig {
    /// A reasonable default configuration for the standard `(row, col,
    /// rating)` layout.
    pub fn new(rows: usize, cols: usize, rank: usize) -> Self {
        AlsConfig {
            row_col: 0,
            col_col: 1,
            rating_col: 2,
            rows,
            cols,
            rank,
            sweeps: 10,
            lambda: 0.05,
        }
    }
}

/// Learned factors plus the per-sweep training error.
#[derive(Debug, Clone)]
pub struct AlsModel {
    /// Row factors, row-major `rows × rank`.
    pub row_factors: Vec<f64>,
    /// Column factors, row-major `cols × rank`.
    pub col_factors: Vec<f64>,
    /// Sum of squared errors over the observed ratings after each sweep.
    pub losses: Vec<f64>,
    /// Latent rank.
    pub rank: usize,
}

impl AlsModel {
    /// Predicted value for cell `(i, j)`.
    pub fn predict(&self, i: usize, j: usize) -> f64 {
        let r = self.rank;
        (0..r)
            .map(|k| self.row_factors[i * r + k] * self.col_factors[j * r + k])
            .sum()
    }
}

/// Collect the observed ratings as `(row, col, value)` triples.
fn observations(table: &Table, config: &AlsConfig) -> Vec<(usize, usize, f64)> {
    table
        .scan()
        .filter_map(|t| {
            let i = t.get_int(config.row_col)?;
            let j = t.get_int(config.col_col)?;
            let v = t.get_double(config.rating_col)?;
            if i < 0 || j < 0 || i as usize >= config.rows || j as usize >= config.cols {
                None
            } else {
                Some((i as usize, j as usize, v))
            }
        })
        .collect()
}

/// Re-solve the factors on one side given the other side fixed.
fn solve_side(
    num_entities: usize,
    rank: usize,
    lambda: f64,
    // (entity index on this side, entity index on the other side, rating)
    ratings: &[(usize, usize, f64)],
    other: &[f64],
    target: &mut [f64],
) {
    // Group observations by entity.
    let mut grouped: Vec<Vec<(usize, f64)>> = vec![Vec::new(); num_entities];
    for &(e, o, v) in ratings {
        grouped[e].push((o, v));
    }
    for (e, obs) in grouped.iter().enumerate() {
        if obs.is_empty() {
            continue;
        }
        // Normal equations: (Σ o oᵀ + λI) x = Σ v·o
        let mut gram = vec![0.0; rank * rank];
        let mut rhs = vec![0.0; rank];
        for &(o, v) in obs {
            let ov = &other[o * rank..(o + 1) * rank];
            for a in 0..rank {
                rhs[a] += v * ov[a];
                for b in 0..rank {
                    gram[a * rank + b] += ov[a] * ov[b];
                }
            }
        }
        for a in 0..rank {
            gram[a * rank + a] += lambda;
        }
        if let Some(x) = solve_dense(&gram, &rhs, rank) {
            target[e * rank..(e + 1) * rank].copy_from_slice(&x);
        }
    }
}

/// Train a low-rank factorization with alternating least squares.
pub fn als_train(table: &Table, config: AlsConfig) -> AlsModel {
    let rank = config.rank;
    let obs = observations(table, &config);
    // Deterministic, slightly varied initialization (same spirit as the IGD
    // task's initializer).
    let init = |len: usize| -> Vec<f64> {
        (0..len)
            .map(|idx| {
                let h = (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                0.2 * ((h >> 11) as f64 / (1u64 << 53) as f64 - 0.5)
            })
            .collect()
    };
    let mut row_factors = init(config.rows * rank);
    let mut col_factors = init(config.cols * rank);

    let by_row: Vec<(usize, usize, f64)> = obs.clone();
    let by_col: Vec<(usize, usize, f64)> = obs.iter().map(|&(i, j, v)| (j, i, v)).collect();

    let mut losses = Vec::with_capacity(config.sweeps);
    for _ in 0..config.sweeps {
        solve_side(
            config.rows,
            rank,
            config.lambda,
            &by_row,
            &col_factors,
            &mut row_factors,
        );
        solve_side(
            config.cols,
            rank,
            config.lambda,
            &by_col,
            &row_factors,
            &mut col_factors,
        );
        let loss: f64 = obs
            .iter()
            .map(|&(i, j, v)| {
                let pred: f64 = (0..rank)
                    .map(|k| row_factors[i * rank + k] * col_factors[j * rank + k])
                    .sum();
                (pred - v) * (pred - v)
            })
            .sum();
        losses.push(loss);
    }

    AlsModel {
        row_factors,
        col_factors,
        losses,
        rank,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bismarck_storage::{Column, DataType, Schema, Value};

    fn rating_table(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Table {
        let schema = Schema::new(vec![
            Column::new("row", DataType::Int),
            Column::new("col", DataType::Int),
            Column::new("rating", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("ratings", schema);
        for i in 0..rows {
            for j in 0..cols {
                t.insert(vec![
                    Value::Int(i as i64),
                    Value::Int(j as i64),
                    Value::Double(f(i, j)),
                ])
                .unwrap();
            }
        }
        t
    }

    #[test]
    fn als_fits_a_rank_one_matrix() {
        let a = [1.0, 2.0, 0.5, 1.5, 3.0];
        let b = [1.0, -1.0, 2.0, 0.5];
        let t = rating_table(5, 4, |i, j| a[i] * b[j]);
        let model = als_train(
            &t,
            AlsConfig {
                sweeps: 15,
                ..AlsConfig::new(5, 4, 2)
            },
        );
        let final_loss = *model.losses.last().unwrap();
        assert!(final_loss < 1e-3, "loss {final_loss}");
        assert!((model.predict(2, 2) - 1.0).abs() < 0.05);
    }

    #[test]
    fn losses_generally_decrease() {
        // The target matrix is not exactly rank 3, so the (regularized) SSE
        // plateaus at a non-zero value; check that the sweeps make clear
        // progress from the first measurement and then stay near the best.
        let t = rating_table(6, 6, |i, j| (i as f64 * 0.3 - j as f64 * 0.2).sin());
        let model = als_train(
            &t,
            AlsConfig {
                sweeps: 8,
                ..AlsConfig::new(6, 6, 3)
            },
        );
        assert_eq!(model.losses.len(), 8);
        let best = model.losses.iter().cloned().fold(f64::INFINITY, f64::min);
        let last = *model.losses.last().unwrap();
        assert!(best <= model.losses[0] + 1e-9);
        assert!(last <= best * 1.5 + 1e-9, "last {last} vs best {best}");
    }

    #[test]
    fn unobserved_entities_keep_initial_factors() {
        // Only row 0 / col 0 observed; other entities never solved.
        let schema = Schema::new(vec![
            Column::new("row", DataType::Int),
            Column::new("col", DataType::Int),
            Column::new("rating", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("one", schema);
        t.insert(vec![Value::Int(0), Value::Int(0), Value::Double(2.0)])
            .unwrap();
        let model = als_train(
            &t,
            AlsConfig {
                sweeps: 3,
                ..AlsConfig::new(3, 3, 2)
            },
        );
        // Prediction for the observed cell is close to the rating.
        assert!((model.predict(0, 0) - 2.0).abs() < 0.2);
        // Factors of an unobserved row remain at their small initial values.
        assert!(model.row_factors[2 * 2..].iter().all(|v| v.abs() <= 0.1));
    }

    #[test]
    fn out_of_range_ratings_are_ignored() {
        let schema = Schema::new(vec![
            Column::new("row", DataType::Int),
            Column::new("col", DataType::Int),
            Column::new("rating", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("bad", schema);
        t.insert(vec![Value::Int(99), Value::Int(0), Value::Double(2.0)])
            .unwrap();
        let model = als_train(&t, AlsConfig::new(2, 2, 2));
        assert_eq!(model.losses.last().copied().unwrap_or(0.0), 0.0);
    }
}
