//! "Native tool" baselines.
//!
//! Figure 7(A) compares Bismarck against MADlib and the commercial engines'
//! built-in analytics. Those tools use classic per-task batch algorithms
//! whose complexity is super-linear in the model dimension (IRLS / Newton
//! for logistic regression) or in the number of examples (ALS-style
//! re-solves for matrix factorization) — which is exactly why the paper finds
//! IGD competitive or faster. We implement those algorithms from scratch so
//! the benchmark harness can reproduce the comparison without shipping any
//! third-party analytics code:
//!
//! * [`irls`] — iteratively re-weighted least squares (Newton's method) for
//!   logistic regression, `O(N·d² + d³)` per iteration;
//! * [`batch_gradient`] — full-batch (sub)gradient descent for LR and SVM,
//!   the "traditional gradient method" that must touch every tuple to take a
//!   single step;
//! * [`als`] — alternating least squares for low-rank matrix factorization,
//!   re-solving a rank×rank system per row/column per sweep;
//! * [`crf_batch`] — full-batch CRF training (the CRF++ / Mallet stand-in of
//!   Figure 7(B));
//! * [`solve`] — the small dense linear-algebra kernel (Gaussian elimination
//!   with partial pivoting) the above need.

pub mod als;
pub mod batch_gradient;
pub mod crf_batch;
pub mod irls;
pub mod solve;

pub use crate::als::{AlsConfig, AlsModel};
pub use crate::batch_gradient::{batch_lr_train, batch_svm_train, BatchGradientConfig};
pub use crate::crf_batch::{crf_batch_train, CrfBatchConfig};
pub use crate::irls::{irls_train, IrlsConfig};
pub use crate::solve::solve_dense;
