//! Full-batch (sub)gradient descent for LR and SVM.
//!
//! This is the "traditional gradient method" the paper contrasts with IGD in
//! Section 2.2: it must touch **every** tuple to take a single step, so its
//! time-to-accuracy is typically far worse than IGD's even though each step
//! is a true descent direction. It doubles as a simple stand-in for native
//! tools that use batch solvers.

use bismarck_linalg::ops::sigmoid;
use bismarck_storage::Table;

/// Configuration shared by the batch LR and SVM trainers.
#[derive(Debug, Clone, Copy)]
pub struct BatchGradientConfig {
    /// Feature-vector column position.
    pub features_col: usize,
    /// ±1 label column position.
    pub label_col: usize,
    /// Model dimension.
    pub dimension: usize,
    /// Number of full-gradient steps.
    pub iterations: usize,
    /// Step size per iteration.
    pub step_size: f64,
    /// L2 regularization strength.
    pub l2: f64,
}

impl BatchGradientConfig {
    /// A reasonable default configuration for a given column layout.
    pub fn new(features_col: usize, label_col: usize, dimension: usize) -> Self {
        BatchGradientConfig {
            features_col,
            label_col,
            dimension,
            iterations: 100,
            step_size: 0.1,
            l2: 0.0,
        }
    }
}

/// Result of a batch-gradient run.
#[derive(Debug, Clone)]
pub struct BatchGradientResult {
    /// Learned coefficients.
    pub model: Vec<f64>,
    /// Objective after each iteration.
    pub losses: Vec<f64>,
}

fn objective<F>(table: &Table, config: &BatchGradientConfig, w: &[f64], per_example: F) -> f64
where
    F: Fn(f64, f64) -> f64,
{
    let mut loss = 0.5 * config.l2 * w.iter().map(|v| v * v).sum::<f64>();
    for tuple in table.scan() {
        let (Some(x), Some(y)) = (
            tuple.feature_view(config.features_col),
            tuple.get_double(config.label_col),
        ) else {
            continue;
        };
        loss += per_example(x.dot(w), y);
    }
    loss
}

fn run<G, L>(
    table: &Table,
    config: BatchGradientConfig,
    grad_coeff: G,
    loss_fn: L,
) -> BatchGradientResult
where
    G: Fn(f64, f64) -> f64,
    L: Fn(f64, f64) -> f64,
{
    let d = config.dimension;
    let n = table.len().max(1) as f64;
    let mut w = vec![0.0; d];
    let mut losses = Vec::with_capacity(config.iterations);
    for _ in 0..config.iterations {
        // Full gradient: one pass over all tuples.
        let mut grad = vec![0.0; d];
        for tuple in table.scan() {
            let (Some(x), Some(y)) = (
                tuple.feature_view(config.features_col),
                tuple.get_double(config.label_col),
            ) else {
                continue;
            };
            let margin = x.dot(&w);
            let c = grad_coeff(margin, y);
            if c != 0.0 {
                for (i, v) in x.iter_entries() {
                    if i < d {
                        grad[i] += c * v;
                    }
                }
            }
        }
        for i in 0..d {
            grad[i] = grad[i] / n + config.l2 * w[i];
            w[i] -= config.step_size * grad[i];
        }
        losses.push(objective(table, &config, &w, &loss_fn));
    }
    BatchGradientResult { model: w, losses }
}

/// Full-batch gradient descent on the logistic loss.
pub fn batch_lr_train(table: &Table, config: BatchGradientConfig) -> BatchGradientResult {
    run(
        table,
        config,
        |margin, y| -y * sigmoid(-y * margin),
        |margin, y| bismarck_linalg::ops::log1p_exp(-y * margin),
    )
}

/// Full-batch subgradient descent on the hinge loss.
pub fn batch_svm_train(table: &Table, config: BatchGradientConfig) -> BatchGradientResult {
    run(
        table,
        config,
        |margin, y| if 1.0 - y * margin > 0.0 { -y } else { 0.0 },
        |margin, y| (1.0 - y * margin).max(0.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bismarck_storage::{Column, DataType, Schema, Value};
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn table(n: usize, seed: u64) -> Table {
        let schema = Schema::new(vec![
            Column::new("vec", DataType::DenseVec),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("cls", schema);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            let x = vec![y + rng.gen_range(-0.5..0.5), -y + rng.gen_range(-0.5..0.5)];
            t.insert(vec![Value::from(x), Value::Double(y)]).unwrap();
        }
        t
    }

    #[test]
    fn batch_lr_reduces_loss_monotonically_with_small_steps() {
        let t = table(200, 1);
        let config = BatchGradientConfig {
            iterations: 50,
            step_size: 0.5,
            ..BatchGradientConfig::new(0, 1, 2)
        };
        let result = batch_lr_train(&t, config);
        assert_eq!(result.losses.len(), 50);
        for w in result.losses.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
    }

    #[test]
    fn batch_svm_learns_a_separator() {
        let t = table(200, 2);
        let config = BatchGradientConfig {
            iterations: 200,
            step_size: 0.5,
            ..BatchGradientConfig::new(0, 1, 2)
        };
        let result = batch_svm_train(&t, config);
        let mut correct = 0;
        for tuple in t.scan() {
            let x = tuple.feature_view(0).unwrap();
            let y = tuple.get_double(1).unwrap();
            if x.dot(&result.model) * y > 0.0 {
                correct += 1;
            }
        }
        assert!(correct as f64 / t.len() as f64 > 0.9);
    }

    #[test]
    fn l2_keeps_model_smaller() {
        let t = table(200, 3);
        let base = BatchGradientConfig {
            iterations: 100,
            step_size: 0.5,
            ..BatchGradientConfig::new(0, 1, 2)
        };
        let plain = batch_lr_train(&t, base);
        let reg = batch_lr_train(&t, BatchGradientConfig { l2: 1.0, ..base });
        let norm = |w: &[f64]| w.iter().map(|v| v * v).sum::<f64>();
        assert!(norm(&reg.model) < norm(&plain.model));
    }

    #[test]
    fn empty_table_yields_zero_model() {
        let schema = Schema::new(vec![
            Column::new("vec", DataType::DenseVec),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        let t = Table::new("empty", schema);
        let result = batch_svm_train(&t, BatchGradientConfig::new(0, 1, 2));
        assert!(result.model.iter().all(|&v| v == 0.0));
    }
}
