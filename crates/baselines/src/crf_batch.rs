//! Full-batch CRF training — the stand-in for the hand-tuned external tools
//! (CRF++ / Mallet) of Figure 7(B).
//!
//! Each iteration computes the exact gradient of the conditional
//! log-likelihood over **all** sentences (one forward–backward per sentence)
//! and then takes a single gradient step. Per-iteration cost therefore equals
//! a whole IGD epoch, but the model only moves once per pass — the classic
//! batch-versus-incremental trade-off the figure visualizes.

use bismarck_core::model::DenseModelStore;
use bismarck_core::task::IgdTask;
use bismarck_core::tasks::CrfTask;
use bismarck_storage::Table;

/// Configuration of the batch CRF trainer.
#[derive(Debug, Clone, Copy)]
pub struct CrfBatchConfig {
    /// Sequence column position.
    pub sequence_col: usize,
    /// Number of observation features.
    pub num_features: usize,
    /// Number of labels.
    pub num_labels: usize,
    /// Number of full-gradient iterations.
    pub iterations: usize,
    /// Step size per iteration.
    pub step_size: f64,
    /// Gaussian prior strength.
    pub l2: f64,
}

impl CrfBatchConfig {
    /// A reasonable default configuration.
    pub fn new(sequence_col: usize, num_features: usize, num_labels: usize) -> Self {
        CrfBatchConfig {
            sequence_col,
            num_features,
            num_labels,
            iterations: 50,
            step_size: 0.5,
            l2: 0.0,
        }
    }
}

/// Result of a batch CRF run.
#[derive(Debug, Clone)]
pub struct CrfBatchResult {
    /// Learned weights (state block followed by transition block, matching
    /// [`CrfTask`]'s layout).
    pub model: Vec<f64>,
    /// Negative log-likelihood after each iteration.
    pub losses: Vec<f64>,
}

/// Train a linear-chain CRF with full-batch gradient ascent on the
/// log-likelihood.
///
/// Implementation note: the exact batch gradient is the sum of the
/// per-sentence gradients, which is what [`CrfTask::gradient_step`] computes
/// (scaled by the step size). We therefore accumulate each sentence's update
/// into a scratch copy of the model and apply the summed update only once per
/// iteration — giving genuinely batch semantics while reusing the audited
/// forward–backward code.
pub fn crf_batch_train(table: &Table, config: CrfBatchConfig) -> CrfBatchResult {
    let task = CrfTask::new(config.sequence_col, config.num_features, config.num_labels)
        .with_l2(config.l2);
    let dim = task.dimension();
    let mut model = vec![0.0; dim];
    let mut losses = Vec::with_capacity(config.iterations);

    let n = table.len().max(1) as f64;
    for _ in 0..config.iterations {
        // Accumulate the summed update at the CURRENT model: every sentence's
        // gradient is evaluated against `model`, not against the partially
        // updated scratch (batch, not incremental, semantics). The summed
        // update is averaged over the sentences so the step size has the
        // same meaning regardless of corpus size (standard batch practice).
        let mut total_update = vec![0.0; dim];
        for tuple in table.scan() {
            let mut scratch = DenseModelStore::new(model.clone());
            task.gradient_step(&mut scratch, tuple, config.step_size);
            let stepped = scratch.into_vec();
            for (acc, (after, before)) in total_update
                .iter_mut()
                .zip(stepped.iter().zip(model.iter()))
            {
                *acc += after - before;
            }
        }
        for (w, delta) in model.iter_mut().zip(total_update.iter()) {
            *w += delta / n;
        }
        if config.l2 > 0.0 {
            task.proximal_step(&mut model, config.step_size);
        }

        let loss: f64 = table
            .scan()
            .map(|t| task.example_loss(&model, t))
            .sum::<f64>()
            + task.regularizer(&model);
        losses.push(loss);
    }

    CrfBatchResult { model, losses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bismarck_linalg::SparseVector;
    use bismarck_storage::{Column, DataType, Schema, Value};

    fn sentence(labels: &[u32]) -> Vec<(SparseVector, u32)> {
        labels
            .iter()
            .map(|&y| (SparseVector::from_pairs(vec![(y as usize, 1.0)]), y))
            .collect()
    }

    fn crf_table(sentences: &[Vec<(SparseVector, u32)>]) -> Table {
        let schema = Schema::new(vec![Column::new("sentence", DataType::Sequence)]).unwrap();
        let mut t = Table::new("crf", schema);
        for s in sentences {
            t.insert(vec![Value::Sequence(s.clone())]).unwrap();
        }
        t
    }

    #[test]
    fn batch_crf_reduces_negative_log_likelihood() {
        let data = crf_table(&[
            sentence(&[0, 1, 0, 1]),
            sentence(&[1, 0, 1, 0]),
            sentence(&[0, 0, 1, 1]),
        ]);
        let config = CrfBatchConfig {
            iterations: 30,
            step_size: 0.3,
            ..CrfBatchConfig::new(0, 2, 2)
        };
        let result = crf_batch_train(&data, config);
        assert_eq!(result.losses.len(), 30);
        assert!(result.losses.last().unwrap() < &(result.losses[0] * 0.6));
    }

    #[test]
    fn igd_reaches_comparable_loss_to_batch_after_equal_passes() {
        // Figure 7(B)'s qualitative claim is that the in-RDBMS IGD CRF
        // converges comparably to hand-coded batch trainers. After the same
        // number of passes over the data, the IGD loss should be within a
        // modest factor of the batch trainer's loss (on this tiny dataset
        // either may be slightly ahead).
        let data = crf_table(&[
            sentence(&[0, 1, 0, 1, 1]),
            sentence(&[1, 0, 1, 0, 0]),
            sentence(&[0, 0, 1, 1, 0]),
            sentence(&[1, 1, 0, 0, 1]),
        ]);
        let passes = 10;
        let batch = crf_batch_train(
            &data,
            CrfBatchConfig {
                iterations: passes,
                step_size: 0.3,
                ..CrfBatchConfig::new(0, 2, 2)
            },
        );

        let task = CrfTask::new(0, 2, 2);
        let mut store = DenseModelStore::zeros(task.dimension());
        for _ in 0..passes {
            for tuple in data.scan() {
                task.gradient_step(&mut store, tuple, 0.3);
            }
        }
        let igd_model = store.into_vec();
        let igd_loss: f64 = data.scan().map(|t| task.example_loss(&igd_model, t)).sum();
        let batch_loss = *batch.losses.last().unwrap();
        let initial_loss: f64 = data
            .scan()
            .map(|t| task.example_loss(&vec![0.0; task.dimension()], t))
            .sum();
        assert!(igd_loss < initial_loss * 0.6, "IGD made real progress");
        assert!(batch_loss < initial_loss * 0.6, "batch made real progress");
        assert!(
            igd_loss <= batch_loss * 1.5 + 1e-6,
            "igd {igd_loss} vs batch {batch_loss}"
        );
    }

    #[test]
    fn l2_prior_keeps_weights_bounded() {
        let data = crf_table(&vec![sentence(&[0, 1]); 4]);
        let plain = crf_batch_train(
            &data,
            CrfBatchConfig {
                iterations: 40,
                ..CrfBatchConfig::new(0, 2, 2)
            },
        );
        let reg = crf_batch_train(
            &data,
            CrfBatchConfig {
                iterations: 40,
                l2: 1.0,
                ..CrfBatchConfig::new(0, 2, 2)
            },
        );
        let norm = |w: &[f64]| w.iter().map(|v| v * v).sum::<f64>();
        assert!(norm(&reg.model) < norm(&plain.model));
    }

    #[test]
    fn empty_table_keeps_zero_model() {
        let schema = Schema::new(vec![Column::new("sentence", DataType::Sequence)]).unwrap();
        let t = Table::new("empty", schema);
        let result = crf_batch_train(&t, CrfBatchConfig::new(0, 2, 2));
        assert!(result.model.iter().all(|&v| v == 0.0));
    }
}
