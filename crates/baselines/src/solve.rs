//! Dense linear-system solving used by the IRLS and ALS baselines.

/// Solve `A x = b` for a dense row-major `n × n` matrix using Gaussian
/// elimination with partial pivoting. Returns `None` if the matrix is
/// (numerically) singular.
pub fn solve_dense(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "matrix must be n*n");
    assert_eq!(b.len(), n, "rhs must have length n");
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Partial pivot: find the largest magnitude entry in this column.
        let mut pivot_row = col;
        let mut pivot_val = m[col * n + col].abs();
        for row in (col + 1)..n {
            let v = m[row * n + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = row;
            }
        }
        if pivot_val < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for k in 0..n {
                m.swap(col * n + k, pivot_row * n + k);
            }
            rhs.swap(col, pivot_row);
        }
        // Eliminate below.
        let pivot = m[col * n + col];
        for row in (col + 1)..n {
            let factor = m[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= factor * m[col * n + k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for k in (row + 1)..n {
            acc -= m[row * n + k] * x[k];
        }
        x[row] = acc / m[row * n + row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![3.0, -2.0];
        assert_eq!(solve_dense(&a, &b, 2).unwrap(), vec![3.0, -2.0]);
    }

    #[test]
    fn solves_general_system() {
        // [2 1; 1 3] x = [5; 10] -> x = [1, 3]
        let a = vec![2.0, 1.0, 1.0, 3.0];
        let b = vec![5.0, 10.0];
        let x = solve_dense(&a, &b, 2).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn needs_pivoting() {
        // Leading zero forces a row swap.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let b = vec![2.0, 3.0];
        let x = solve_dense(&a, &b, 2).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-9);
        assert!((x[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        let b = vec![1.0, 2.0];
        assert!(solve_dense(&a, &b, 2).is_none());
    }

    #[test]
    fn solves_larger_random_like_system() {
        let n = 6;
        // Diagonally dominant matrix guarantees solvability.
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = if i == j {
                    10.0
                } else {
                    ((i * 7 + j * 3) % 5) as f64 * 0.3
                };
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 2.5).collect();
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a[i * n + j] * x_true[j];
            }
        }
        let x = solve_dense(&a, &b, n).unwrap();
        for (xs, xt) in x.iter().zip(x_true.iter()) {
            assert!((xs - xt).abs() < 1e-9);
        }
    }
}
