//! Loss evaluation as an aggregate.
//!
//! "A second difference is that we may need to compute the actual value of
//! the objective function (also known as the loss) using the model after
//! each epoch" (Section 3.1). The loss is itself a sum over tuples, so it is
//! naturally another UDA; we expose it as a helper that folds a per-tuple
//! function over a table.

use bismarck_storage::Table;
use bismarck_storage::Tuple;

/// Sum `f(tuple)` over the whole table (storage order). The per-tuple
/// function typically closes over the current model.
pub fn sum_over_table<F>(table: &Table, mut f: F) -> f64
where
    F: FnMut(&Tuple) -> f64,
{
    let mut total = 0.0;
    for tuple in table.scan() {
        total += f(tuple);
    }
    total
}

/// Sum `f(tuple)` over a contiguous range of rows; used by segment-parallel
/// loss evaluation.
pub fn sum_over_range<F>(table: &Table, start: usize, end: usize, mut f: F) -> f64
where
    F: FnMut(&Tuple) -> f64,
{
    let mut total = 0.0;
    for tuple in table.scan_range(start, end) {
        total += f(tuple);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use bismarck_storage::{Column, DataType, Schema, Table, Value};

    fn table(n: usize) -> Table {
        let schema = Schema::new(vec![Column::new("x", DataType::Double)]).unwrap();
        let mut t = Table::new("t", schema);
        for i in 0..n {
            t.insert(vec![Value::Double(i as f64)]).unwrap();
        }
        t
    }

    #[test]
    fn sums_over_all_tuples() {
        let t = table(10);
        let total = sum_over_table(&t, |tup| tup.get_double(0).unwrap());
        assert!((total - 45.0).abs() < 1e-12);
    }

    #[test]
    fn range_sums_partition_the_total() {
        let t = table(10);
        let full = sum_over_table(&t, |tup| tup.get_double(0).unwrap());
        let a = sum_over_range(&t, 0, 4, |tup| tup.get_double(0).unwrap());
        let b = sum_over_range(&t, 4, 10, |tup| tup.get_double(0).unwrap());
        assert!((full - (a + b)).abs() < 1e-12);
    }

    #[test]
    fn empty_table_sums_to_zero() {
        let t = table(0);
        assert_eq!(sum_over_table(&t, |_| 1.0), 0.0);
    }
}
