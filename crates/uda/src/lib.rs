//! The user-defined aggregate (UDA) abstraction and epoch machinery.
//!
//! Figure 3 of the paper describes the standard three phases of a UDA —
//! `initialize(state)`, `transition(state, data)`, `terminate(state)` — plus
//! the optional `merge(state, state)` required for shared-nothing parallel
//! aggregation. Bismarck's key observation is that incremental gradient
//! descent has exactly this shape: the *state* is the model, the *transition*
//! is one gradient step on one tuple.
//!
//! This crate provides:
//!
//! * the [`Aggregate`] trait (the developer-facing 3+1 function abstraction);
//! * execution strategies over a stored table: a sequential scan in a chosen
//!   [`bismarck_storage::ScanOrder`] and a segmented, shared-nothing run that
//!   aggregates each segment independently and merges the partial states;
//! * the epoch loop of Figure 2 — run the aggregate, evaluate the loss,
//!   consult a [`ConvergenceTest`], repeat — together with per-epoch
//!   bookkeeping used by the experiments.

#![warn(missing_docs)]

pub mod aggregate;
pub mod convergence;
pub mod epoch;
pub mod executor;
pub mod loss;

pub use crate::aggregate::{Aggregate, CountAggregate};
pub use crate::convergence::ConvergenceTest;
pub use crate::epoch::{EpochOutcome, EpochRecord, EpochRunner, TrainingHistory};
pub use crate::executor::{
    panic_message, run_segmented, run_segmented_parallel, run_sequential,
    try_run_segmented_parallel, SegmentPanic,
};
pub use crate::loss::sum_over_table;
