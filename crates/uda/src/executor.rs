//! Execution strategies for aggregates over stored tables.
//!
//! * [`run_sequential`] — the ordinary single-threaded aggregation path every
//!   RDBMS provides, optionally following an explicit row permutation (the
//!   substrate's `ORDER BY RANDOM()`).
//! * [`run_segmented`] — shared-nothing execution: the table is split into
//!   contiguous segments, each segment is aggregated independently starting
//!   from its own `initialize()`, and the partial states are combined with
//!   `merge`. This is how the paper's "pure UDA" parallelism works on the
//!   parallel DBMS B (8 segments).
//! * [`run_segmented_parallel`] — the same plan executed on worker threads.

use bismarck_storage::{segment_ranges, TupleScan};

use crate::aggregate::Aggregate;

/// Run an aggregate over the whole table in one pass.
///
/// If `order` is `Some`, tuples are visited following that row permutation;
/// otherwise they are visited in storage (clustered) order.
pub fn run_sequential<A: Aggregate, S: TupleScan + ?Sized>(
    agg: &A,
    data: &S,
    order: Option<&[usize]>,
) -> A::Output {
    let mut state = agg.initialize();
    match order {
        Some(order) => {
            data.scan_tuples_permuted(order, &mut |tuple| agg.transition(&mut state, tuple));
        }
        None => {
            data.scan_tuples(&mut |tuple| agg.transition(&mut state, tuple));
        }
    }
    agg.terminate(state)
}

/// Shared-nothing execution plan: aggregate each of `segments` contiguous
/// ranges independently and merge the partial states left to right.
///
/// Deterministic and single-threaded — useful for testing merge correctness
/// in isolation from scheduling effects.
pub fn run_segmented<A: Aggregate, S: TupleScan + ?Sized>(
    agg: &A,
    data: &S,
    segments: usize,
) -> A::Output {
    let ranges = segment_ranges(data.tuple_count(), segments.max(1));
    let mut partials = ranges.into_iter().map(|(start, end)| {
        let mut state = agg.initialize();
        data.scan_tuples_range(start, end, &mut |tuple| agg.transition(&mut state, tuple));
        state
    });
    let mut merged = partials.next().unwrap_or_else(|| agg.initialize());
    for partial in partials {
        agg.merge(&mut merged, partial);
    }
    agg.terminate(merged)
}

/// The same shared-nothing plan as [`run_segmented`], but executed on worker
/// threads. Partial states are merged in segment order so the result is
/// identical to the sequential segmented plan whenever `merge` is
/// deterministic.
///
/// Panics if any worker panics; use [`try_run_segmented_parallel`] to turn a
/// worker panic into an error instead.
///
/// The number of OS threads is capped at
/// [`std::thread::available_parallelism`]: asking for 100 segments on an
/// 8-core box runs 100 logical segments on at most 8 workers (each worker
/// takes a contiguous block of segments and aggregates them independently),
/// instead of paying 100 thread spawns for no extra parallelism.
pub fn run_segmented_parallel<A, S>(agg: &A, data: &S, segments: usize) -> A::Output
where
    A: Aggregate + Sync,
    A::State: Send,
    S: TupleScan + ?Sized,
{
    try_run_segmented_parallel(agg, data, segments)
        .unwrap_or_else(|p| panic!("segment worker panicked: {}", p.message))
}

/// One or more worker threads of a parallel segmented run panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentPanic {
    /// Number of workers that panicked.
    pub failed_workers: usize,
    /// Panic payload of the first failed worker, if it carried a string.
    pub message: String,
}

impl std::fmt::Display for SegmentPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} segment worker(s) panicked: {}",
            self.failed_workers, self.message
        )
    }
}

impl std::error::Error for SegmentPanic {}

/// Render a panic payload (from `catch_unwind` or `JoinHandle::join`) as a
/// human-readable message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fallible variant of [`run_segmented_parallel`]: a panicking worker is
/// isolated instead of aborting the process. Each worker's panic is caught by
/// joining its handle and inspecting the `Err` payload (joining a handle
/// consumes the panic, so `std::thread::scope` does not re-raise it); the
/// partial states of panicked workers are discarded and the run reports
/// [`SegmentPanic`] rather than a (meaningless) merged output.
pub fn try_run_segmented_parallel<A, S>(
    agg: &A,
    data: &S,
    segments: usize,
) -> Result<A::Output, SegmentPanic>
where
    A: Aggregate + Sync,
    A::State: Send,
    S: TupleScan + ?Sized,
{
    let ranges = segment_ranges(data.tuple_count(), segments.max(1));
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = hardware.min(ranges.len()).max(1);
    // Contiguous blocks of segments per worker: concatenating the per-worker
    // results in worker order reproduces the global segment order, which the
    // merge below depends on.
    let per_worker = ranges.len().div_ceil(workers);

    let mut partials: Vec<A::State> = Vec::with_capacity(ranges.len());
    let mut failed_workers = 0usize;
    let mut message = String::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for block in ranges.chunks(per_worker) {
            handles.push(scope.spawn(move || {
                block
                    .iter()
                    .map(|&(start, end)| {
                        let mut state = agg.initialize();
                        data.scan_tuples_range(start, end, &mut |tuple| {
                            agg.transition(&mut state, tuple);
                        });
                        state
                    })
                    .collect::<Vec<A::State>>()
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(states) => partials.extend(states),
                Err(payload) => {
                    failed_workers += 1;
                    if message.is_empty() {
                        message = panic_message(payload.as_ref());
                    }
                }
            }
        }
    });
    if failed_workers > 0 {
        return Err(SegmentPanic {
            failed_workers,
            message,
        });
    }

    let mut iter = partials.into_iter();
    let mut merged = iter.next().unwrap_or_else(|| agg.initialize());
    for partial in iter {
        agg.merge(&mut merged, partial);
    }
    Ok(agg.terminate(merged))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AvgAggregate, CountAggregate};
    use bismarck_storage::{Column, DataType, ScanOrder, Schema, Table, Value};

    fn table(n: usize) -> Table {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("x", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        for i in 0..n {
            t.insert(vec![Value::Int(i as i64), Value::Double(i as f64)])
                .unwrap();
        }
        t
    }

    #[test]
    fn sequential_clustered_and_permuted_agree_for_commutative_aggs() {
        let t = table(100);
        let agg = AvgAggregate { column: 1 };
        let clustered = run_sequential(&agg, &t, None).unwrap();
        let order = ScanOrder::ShuffleOnce { seed: 1 }
            .permutation(t.len(), 0)
            .unwrap();
        let shuffled = run_sequential(&agg, &t, Some(&order)).unwrap();
        assert!((clustered - shuffled).abs() < 1e-9);
        assert!((clustered - 49.5).abs() < 1e-9);
    }

    #[test]
    fn segmented_matches_sequential_for_algebraic_aggs() {
        let t = table(57);
        let agg = AvgAggregate { column: 1 };
        let seq = run_sequential(&agg, &t, None).unwrap();
        for segments in [1, 2, 3, 8, 100] {
            let seg = run_segmented(&agg, &t, segments).unwrap();
            assert!((seq - seg).abs() < 1e-9, "segments={segments}");
        }
    }

    #[test]
    fn segmented_parallel_matches_sequential() {
        let t = table(203);
        let count = run_segmented_parallel(&CountAggregate, &t, 4);
        assert_eq!(count, 203);
        let avg = run_segmented_parallel(&AvgAggregate { column: 1 }, &t, 4).unwrap();
        assert!((avg - 101.0).abs() < 1e-9);
    }

    #[test]
    fn segment_counts_far_beyond_core_count_still_merge_in_order() {
        // More segments than any machine has cores: the executor must chunk
        // them across capped workers and still match the deterministic
        // single-threaded segmented plan segment for segment.
        let t = table(517);
        for segments in [100, 256] {
            let seq = run_segmented(&AvgAggregate { column: 1 }, &t, segments).unwrap();
            let par = run_segmented_parallel(&AvgAggregate { column: 1 }, &t, segments).unwrap();
            assert!((seq - par).abs() < 1e-9, "segments={segments}");
            assert_eq!(
                run_segmented_parallel(&CountAggregate, &t, segments),
                517,
                "segments={segments}"
            );
        }
    }

    /// Counts tuples but panics when it sees a configured `id` value.
    struct PanicOnId(i64);

    impl Aggregate for PanicOnId {
        type State = u64;
        type Output = u64;

        fn initialize(&self) -> u64 {
            0
        }

        fn transition(&self, state: &mut u64, tuple: &bismarck_storage::Tuple) {
            if tuple.get_int(0) == Some(self.0) {
                panic!("injected fault at id {}", self.0);
            }
            *state += 1;
        }

        fn merge(&self, left: &mut u64, right: u64) {
            *left += right;
        }

        fn terminate(&self, state: u64) -> u64 {
            state
        }
    }

    #[test]
    fn worker_panic_is_isolated_into_an_error() {
        let t = table(100);
        let err = try_run_segmented_parallel(&PanicOnId(17), &t, 4)
            .expect_err("a worker must have panicked");
        assert!(err.failed_workers >= 1);
        assert!(err.message.contains("injected fault at id 17"), "{err}");
        // The same plan without the poisoned tuple still succeeds.
        assert_eq!(try_run_segmented_parallel(&PanicOnId(-1), &t, 4), Ok(100));
    }

    #[test]
    fn zero_segments_treated_as_one() {
        let t = table(10);
        assert_eq!(run_segmented(&CountAggregate, &t, 0), 10);
    }

    #[test]
    fn empty_table_produces_initialized_state() {
        let t = table(0);
        assert_eq!(run_sequential(&CountAggregate, &t, None), 0);
        assert_eq!(run_segmented(&CountAggregate, &t, 4), 0);
        assert_eq!(run_segmented_parallel(&CountAggregate, &t, 4), 0);
    }
}
