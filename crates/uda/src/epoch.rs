//! The epoch loop of Figure 2.
//!
//! IGD differs from `SUM`/`AVG`/`MAX` in that the aggregate "may need to be
//! executed more than once, with the output model of one run being input to
//! the next". [`EpochRunner`] drives that loop: it repeatedly invokes a
//! caller-supplied closure that performs one full pass (one aggregate
//! execution) and reports the loss, then consults a [`ConvergenceTest`] to
//! decide whether to run another epoch. Per-epoch wall-clock time and
//! shuffle time are recorded so the experiments can separate gradient cost
//! from reordering cost (Figure 8(B)).

use std::time::{Duration, Instant};

use crate::convergence::ConvergenceTest;

/// What one epoch reports back to the runner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochOutcome {
    /// Objective value measured after this epoch.
    pub loss: f64,
    /// Gradient norm, if the task tracks one.
    pub gradient_norm: Option<f64>,
    /// Time spent reordering (shuffling) the data before this epoch.
    pub shuffle_duration: Duration,
    /// Divergence recoveries (restore + step-size backoff) consumed while
    /// producing this epoch. Zero on the fault-free path.
    pub retries: u32,
}

impl EpochOutcome {
    /// An outcome with only a loss value.
    pub fn with_loss(loss: f64) -> Self {
        EpochOutcome {
            loss,
            gradient_norm: None,
            shuffle_duration: Duration::ZERO,
            retries: 0,
        }
    }
}

/// Bookkeeping for one completed epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Zero-based epoch number.
    pub epoch: usize,
    /// Objective value after the epoch.
    pub loss: f64,
    /// Gradient norm after the epoch, if tracked.
    pub gradient_norm: Option<f64>,
    /// Wall-clock time of the whole epoch (shuffle + gradient pass + loss).
    pub duration: Duration,
    /// Portion of `duration` spent shuffling.
    pub shuffle_duration: Duration,
    /// Cumulative wall-clock time since training started.
    pub cumulative: Duration,
    /// Divergence recoveries (restore + step-size backoff) consumed while
    /// producing this epoch. Zero on the fault-free path.
    pub retries: u32,
}

/// Loss/timing history of a full training run.
#[derive(Debug, Clone, Default)]
pub struct TrainingHistory {
    records: Vec<EpochRecord>,
    converged: bool,
}

impl TrainingHistory {
    /// All per-epoch records in order.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Number of epochs run.
    pub fn epochs(&self) -> usize {
        self.records.len()
    }

    /// Loss values in epoch order.
    pub fn losses(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.loss).collect()
    }

    /// The final loss, if any epoch ran.
    pub fn final_loss(&self) -> Option<f64> {
        self.records.last().map(|r| r.loss)
    }

    /// Total wall-clock time across all epochs.
    pub fn total_duration(&self) -> Duration {
        self.records
            .last()
            .map(|r| r.cumulative)
            .unwrap_or(Duration::ZERO)
    }

    /// Total time spent shuffling across all epochs.
    pub fn total_shuffle_duration(&self) -> Duration {
        self.records.iter().map(|r| r.shuffle_duration).sum()
    }

    /// Whether the convergence test fired before the epoch cap.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Number of epochs needed to first reach a loss at or below `target`,
    /// if it was ever reached. Non-finite losses (`NaN`/`±inf` from a
    /// diverged epoch) are skipped: they can never match a finite target and
    /// must not be counted as progress.
    pub fn epochs_to_reach(&self, target: f64) -> Option<usize> {
        self.records
            .iter()
            .find(|r| r.loss.is_finite() && r.loss <= target)
            .map(|r| r.epoch + 1)
    }

    /// Cumulative time needed to first reach a loss at or below `target`.
    /// Non-finite losses are skipped, as in [`Self::epochs_to_reach`].
    pub fn time_to_reach(&self, target: f64) -> Option<Duration> {
        self.records
            .iter()
            .find(|r| r.loss.is_finite() && r.loss <= target)
            .map(|r| r.cumulative)
    }

    /// Total divergence recoveries (step-size backoffs) across the run.
    pub fn total_retries(&self) -> u32 {
        self.records.iter().map(|r| r.retries).sum()
    }

    /// Record one epoch (exposed for trainers that manage their own loop).
    pub fn push(&mut self, record: EpochRecord) {
        self.records.push(record);
    }

    /// Mark the run as converged (vs. stopped at the epoch cap).
    pub fn set_converged(&mut self, converged: bool) {
        self.converged = converged;
    }
}

/// Drives the run-aggregate / check-convergence loop.
#[derive(Debug, Clone, Copy)]
pub struct EpochRunner {
    /// The stopping condition consulted after every epoch.
    pub convergence: ConvergenceTest,
}

impl EpochRunner {
    /// Create a runner with the given stopping condition.
    pub fn new(convergence: ConvergenceTest) -> Self {
        EpochRunner { convergence }
    }

    /// Run epochs until the convergence test fires or its epoch cap is hit.
    ///
    /// `run_epoch(epoch)` must perform one full pass (including any shuffle)
    /// and return the measured [`EpochOutcome`].
    pub fn run<F>(&self, mut run_epoch: F) -> TrainingHistory
    where
        F: FnMut(usize) -> EpochOutcome,
    {
        let (history, err) = self.try_run_from(0, Vec::new(), |epoch| {
            Ok::<EpochOutcome, std::convert::Infallible>(run_epoch(epoch))
        });
        match err {
            None => history,
            Some((_, infallible)) => match infallible {},
        }
    }

    /// Fallible variant of [`Self::run`]: the epoch closure may abort the
    /// loop by returning `Err`. Returns the history of the epochs that
    /// completed, together with the epoch number and error that stopped the
    /// run (or `None` if it ran to convergence or the cap).
    pub fn try_run<F, E>(&self, run_epoch: F) -> (TrainingHistory, Option<(usize, E)>)
    where
        F: FnMut(usize) -> Result<EpochOutcome, E>,
    {
        self.try_run_from(0, Vec::new(), run_epoch)
    }

    /// Resume-aware fallible epoch loop. `prior` holds records for epochs
    /// `0..start_epoch` that already ran (e.g. restored from a checkpoint);
    /// the loop continues at `start_epoch` and the convergence test sees the
    /// combined loss history, so stopping decisions match an uninterrupted
    /// run. Durations of new epochs are measured from this call — prior
    /// records keep whatever timings they carry.
    pub fn try_run_from<F, E>(
        &self,
        start_epoch: usize,
        prior: Vec<EpochRecord>,
        mut run_epoch: F,
    ) -> (TrainingHistory, Option<(usize, E)>)
    where
        F: FnMut(usize) -> Result<EpochOutcome, E>,
    {
        let mut history = TrainingHistory::default();
        let mut losses: Vec<f64> = prior.iter().map(|r| r.loss).collect();
        for record in prior {
            history.push(record);
        }
        let started = Instant::now();
        let cap = self.convergence.epoch_cap();
        for epoch in start_epoch..cap {
            let epoch_start = Instant::now();
            let outcome = match run_epoch(epoch) {
                Ok(outcome) => outcome,
                Err(err) => return (history, Some((epoch, err))),
            };
            let duration = epoch_start.elapsed();
            losses.push(outcome.loss);
            history.push(EpochRecord {
                epoch,
                loss: outcome.loss,
                gradient_norm: outcome.gradient_norm,
                duration,
                shuffle_duration: outcome.shuffle_duration,
                cumulative: started.elapsed(),
                retries: outcome.retries,
            });
            if self
                .convergence
                .should_stop(epoch, &losses, outcome.gradient_norm)
            {
                // A run whose final loss is non-finite stopped because it
                // diverged; never report that as convergence.
                let satisfied = epoch + 1 < cap || self.is_satisfied(epoch, &losses);
                history.set_converged(satisfied && outcome.loss.is_finite());
                break;
            }
        }
        (history, None)
    }

    fn is_satisfied(&self, epoch: usize, losses: &[f64]) -> bool {
        // At the cap the test always says "stop"; report convergence only if
        // the underlying criterion (not the cap) is also satisfied.
        match self.convergence {
            ConvergenceTest::FixedEpochs(_) => true,
            _ => {
                // Re-evaluate with a cap one larger so the cap clause cannot fire.
                let relaxed = match self.convergence {
                    ConvergenceTest::RelativeLossDecrease { tolerance, .. } => {
                        ConvergenceTest::RelativeLossDecrease {
                            tolerance,
                            max_epochs: epoch + 2,
                        }
                    }
                    ConvergenceTest::LossBelow { target, .. } => ConvergenceTest::LossBelow {
                        target,
                        max_epochs: epoch + 2,
                    },
                    ConvergenceTest::GradientNormBelow { tolerance, .. } => {
                        ConvergenceTest::GradientNormBelow {
                            tolerance,
                            max_epochs: epoch + 2,
                        }
                    }
                    ConvergenceTest::FixedEpochs(n) => ConvergenceTest::FixedEpochs(n),
                };
                relaxed.should_stop(epoch, losses, None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_fixed_number_of_epochs() {
        let runner = EpochRunner::new(ConvergenceTest::FixedEpochs(5));
        let history = runner.run(|epoch| EpochOutcome::with_loss(10.0 - epoch as f64));
        assert_eq!(history.epochs(), 5);
        assert_eq!(history.final_loss(), Some(6.0));
        assert!(history.converged());
    }

    #[test]
    fn stops_early_on_relative_tolerance() {
        let runner = EpochRunner::new(ConvergenceTest::RelativeLossDecrease {
            tolerance: 1e-3,
            max_epochs: 100,
        });
        // Loss halves until epoch 3, then freezes.
        let history = runner.run(|epoch| {
            let loss = if epoch < 3 {
                100.0 / (1 << epoch) as f64
            } else {
                12.5
            };
            EpochOutcome::with_loss(loss)
        });
        assert!(history.epochs() < 100);
        assert!(history.converged());
        assert_eq!(history.final_loss(), Some(12.5));
    }

    #[test]
    fn reports_not_converged_when_cap_hit_without_progress_criterion() {
        let runner = EpochRunner::new(ConvergenceTest::RelativeLossDecrease {
            tolerance: 1e-6,
            max_epochs: 4,
        });
        // Loss keeps improving by a lot, so the criterion itself never fires.
        let history = runner.run(|epoch| EpochOutcome::with_loss(100.0 / (epoch + 1) as f64));
        assert_eq!(history.epochs(), 4);
        assert!(!history.converged());
    }

    #[test]
    fn epochs_and_time_to_reach() {
        let runner = EpochRunner::new(ConvergenceTest::FixedEpochs(10));
        let history = runner.run(|epoch| EpochOutcome::with_loss(10.0 - epoch as f64));
        assert_eq!(history.epochs_to_reach(7.0), Some(4));
        assert!(history.time_to_reach(7.0).is_some());
        assert_eq!(history.epochs_to_reach(-100.0), None);
        assert!(history.time_to_reach(-100.0).is_none());
    }

    #[test]
    fn history_accumulates_durations() {
        let runner = EpochRunner::new(ConvergenceTest::FixedEpochs(3));
        let history = runner.run(|_| EpochOutcome {
            loss: 1.0,
            gradient_norm: Some(0.1),
            shuffle_duration: Duration::from_micros(5),
            retries: 0,
        });
        assert_eq!(history.records().len(), 3);
        assert!(history.total_shuffle_duration() >= Duration::from_micros(15));
        assert!(history.total_duration() >= history.records()[0].duration);
        let cumulative: Vec<_> = history.records().iter().map(|r| r.cumulative).collect();
        assert!(cumulative.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn epochs_to_reach_skips_non_finite_losses() {
        // A NaN epoch can't match a finite target and must not be counted as
        // progress; the first FINITE loss at or below target wins.
        let runner = EpochRunner::new(ConvergenceTest::FixedEpochs(5));
        let losses = [10.0, f64::NAN, f64::INFINITY, 4.0, 3.0];
        let history = runner.run(|epoch| EpochOutcome::with_loss(losses[epoch]));
        assert_eq!(history.epochs_to_reach(5.0), Some(4));
        assert_eq!(history.epochs_to_reach(3.5), Some(5));
        assert_eq!(history.epochs_to_reach(1.0), None);
        assert!(history.time_to_reach(5.0).is_some());
        assert!(history.time_to_reach(1.0).is_none());
        // All-NaN history reaches nothing.
        let runner = EpochRunner::new(ConvergenceTest::FixedEpochs(2));
        let bad = runner.run(|_| EpochOutcome::with_loss(f64::NAN));
        assert_eq!(bad.epochs_to_reach(f64::INFINITY), None);
        assert!(bad.time_to_reach(f64::INFINITY).is_none());
    }

    #[test]
    fn diverged_run_stops_early_and_is_not_converged() {
        let runner = EpochRunner::new(ConvergenceTest::RelativeLossDecrease {
            tolerance: 1e-3,
            max_epochs: 100,
        });
        let history = runner.run(|epoch| {
            EpochOutcome::with_loss(if epoch < 2 {
                10.0 - epoch as f64
            } else {
                f64::NAN
            })
        });
        assert_eq!(history.epochs(), 3, "stops at the first NaN, not the cap");
        assert!(!history.converged());
    }

    #[test]
    fn try_run_surfaces_epoch_error_with_partial_history() {
        let runner = EpochRunner::new(ConvergenceTest::FixedEpochs(10));
        let (history, err) = runner.try_run(|epoch| {
            if epoch == 3 {
                Err("boom")
            } else {
                Ok(EpochOutcome::with_loss(10.0 - epoch as f64))
            }
        });
        assert_eq!(history.epochs(), 3);
        assert_eq!(err, Some((3, "boom")));
        assert!(!history.converged());
    }

    #[test]
    fn try_run_from_continues_a_prior_history() {
        let runner = EpochRunner::new(ConvergenceTest::FixedEpochs(6));
        let (first, err) = runner.try_run(|epoch| {
            if epoch == 3 {
                Err(())
            } else {
                Ok(EpochOutcome::with_loss(10.0 - epoch as f64))
            }
        });
        assert_eq!(err, Some((3, ())));
        let prior = first.records().to_vec();
        let (resumed, err) = runner.try_run_from(3, prior, |epoch| {
            Ok::<_, ()>(EpochOutcome::with_loss(10.0 - epoch as f64))
        });
        assert!(err.is_none());
        assert_eq!(resumed.epochs(), 6);
        assert_eq!(
            resumed.losses(),
            vec![10.0, 9.0, 8.0, 7.0, 6.0, 5.0],
            "combined history matches an uninterrupted run"
        );
        assert!(resumed.converged());
        assert_eq!(resumed.total_retries(), 0);
    }

    #[test]
    fn loss_below_stops_and_marks_converged() {
        let runner = EpochRunner::new(ConvergenceTest::LossBelow {
            target: 3.0,
            max_epochs: 50,
        });
        let history = runner.run(|epoch| EpochOutcome::with_loss(10.0 - 2.0 * epoch as f64));
        assert_eq!(history.epochs(), 5);
        assert!(history.converged());
    }
}
