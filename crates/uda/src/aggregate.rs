//! The developer-facing aggregate abstraction (Figure 3).

use bismarck_storage::Tuple;

/// A user-defined aggregate in the standard three-phase form, plus `merge`
/// for shared-nothing parallelism.
///
/// PostgreSQL calls these `initcond` / `sfunc` / `finalfunc`; DB2 and the
/// commercial engines in the paper use analogous names. Implementations hold
/// the per-task configuration (step size, regularization, column positions)
/// in `&self`; everything that changes during aggregation lives in `State`.
///
/// The four phases compose like so (here with the bundled [`CountAggregate`],
/// `COUNT(*)` as a UDA — an IGD task is the same shape with the model as
/// `State`):
///
/// ```
/// use bismarck_storage::{Tuple, Value};
/// use bismarck_uda::{Aggregate, CountAggregate};
///
/// let agg = CountAggregate;
/// let tuple = Tuple::new(vec![Value::Int(7)]);
///
/// // Two shared-nothing segments aggregate independently...
/// let mut left = agg.initialize();
/// agg.transition(&mut left, &tuple);
/// let mut right = agg.initialize();
/// agg.transition(&mut right, &tuple);
/// agg.transition(&mut right, &tuple);
///
/// // ...and their states merge before terminate produces the output.
/// agg.merge(&mut left, right);
/// assert_eq!(agg.terminate(left), 3);
/// ```
pub trait Aggregate {
    /// The aggregation context (for IGD: the model plus step counters).
    type State;
    /// What `terminate` produces (usually the trained model).
    type Output;

    /// Create the initial aggregation state (e.g. a zero model or a model
    /// carried over from the previous epoch).
    fn initialize(&self) -> Self::State;

    /// Fold one tuple into the state. For IGD this computes the gradient of
    /// the objective on this example and takes one step (Equation 2).
    fn transition(&self, state: &mut Self::State, tuple: &Tuple);

    /// Combine two states that were aggregated independently over disjoint
    /// parts of the data. The default panics, so purely sequential
    /// aggregates don't have to provide one.
    fn merge(&self, _left: &mut Self::State, _right: Self::State) {
        unimplemented!("this aggregate does not support shared-nothing merging")
    }

    /// Finish the aggregation and produce the output.
    fn terminate(&self, state: Self::State) -> Self::Output;
}

/// A simple counting aggregate used in tests and as documentation of the
/// trait's contract: `COUNT(*)` as a UDA.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountAggregate;

impl Aggregate for CountAggregate {
    type State = u64;
    type Output = u64;

    fn initialize(&self) -> u64 {
        0
    }

    fn transition(&self, state: &mut u64, _tuple: &Tuple) {
        *state += 1;
    }

    fn merge(&self, left: &mut u64, right: u64) {
        *left += right;
    }

    fn terminate(&self, state: u64) -> u64 {
        state
    }
}

/// An `AVG(column)` aggregate over a double column; exercises a stateful
/// merge (sum and count are the "sufficient statistics" mentioned in
/// Section 3.3).
#[derive(Debug, Clone, Copy)]
pub struct AvgAggregate {
    /// Ordinal position of the column to average.
    pub column: usize,
}

/// Running sum and count for [`AvgAggregate`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AvgState {
    /// Sum of observed values.
    pub sum: f64,
    /// Number of non-NULL observed values.
    pub count: u64,
}

impl Aggregate for AvgAggregate {
    type State = AvgState;
    type Output = Option<f64>;

    fn initialize(&self) -> AvgState {
        AvgState::default()
    }

    fn transition(&self, state: &mut AvgState, tuple: &Tuple) {
        if let Some(v) = tuple.get_double(self.column) {
            state.sum += v;
            state.count += 1;
        }
    }

    fn merge(&self, left: &mut AvgState, right: AvgState) {
        left.sum += right.sum;
        left.count += right.count;
    }

    fn terminate(&self, state: AvgState) -> Option<f64> {
        if state.count == 0 {
            None
        } else {
            Some(state.sum / state.count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bismarck_storage::{Column, DataType, Schema, Table, Value};

    fn table(values: &[f64]) -> Table {
        let schema = Schema::new(vec![Column::nullable("x", DataType::Double)]).unwrap();
        let mut t = Table::new("t", schema);
        for &v in values {
            t.insert(vec![Value::Double(v)]).unwrap();
        }
        t
    }

    #[test]
    fn count_aggregate_counts() {
        let t = table(&[1.0, 2.0, 3.0]);
        let agg = CountAggregate;
        let mut state = agg.initialize();
        for tup in t.scan() {
            agg.transition(&mut state, tup);
        }
        assert_eq!(agg.terminate(state), 3);
    }

    #[test]
    fn count_merge_adds() {
        let agg = CountAggregate;
        let mut a = 2u64;
        agg.merge(&mut a, 5);
        assert_eq!(a, 7);
    }

    #[test]
    fn avg_aggregate_computes_mean() {
        let t = table(&[1.0, 2.0, 6.0]);
        let agg = AvgAggregate { column: 0 };
        let mut state = agg.initialize();
        for tup in t.scan() {
            agg.transition(&mut state, tup);
        }
        assert_eq!(agg.terminate(state), Some(3.0));
    }

    #[test]
    fn avg_of_empty_is_none() {
        let agg = AvgAggregate { column: 0 };
        assert_eq!(agg.terminate(agg.initialize()), None);
    }

    #[test]
    fn avg_merge_combines_sufficient_statistics() {
        let agg = AvgAggregate { column: 0 };
        let mut left = AvgState { sum: 3.0, count: 2 };
        let right = AvgState { sum: 9.0, count: 1 };
        agg.merge(&mut left, right);
        assert_eq!(agg.terminate(left), Some(4.0));
    }
}
