//! Stopping conditions for the epoch loop.
//!
//! Section 3.1 ("Key Differences: Epochs and Convergence") and Appendix B:
//! Bismarck supports "an arbitrary Boolean function" as the convergence test.
//! The common cases are a fixed number of epochs, a relative drop in the loss
//! value between epochs, and a gradient-norm threshold. The evaluation uses
//! "0.1% tolerance in the objective function value" for completion times.

/// A stopping condition evaluated after every epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConvergenceTest {
    /// Stop after exactly this many epochs.
    FixedEpochs(usize),
    /// Stop when the relative decrease in loss between consecutive epochs
    /// falls below `tolerance`, or after `max_epochs`, whichever is first.
    RelativeLossDecrease {
        /// Relative tolerance, e.g. `1e-3` for the paper's 0.1%.
        tolerance: f64,
        /// Upper bound on epochs so training always terminates.
        max_epochs: usize,
    },
    /// Stop when the loss falls at or below an absolute target value, or
    /// after `max_epochs`. Used by experiments that measure "time to reach
    /// X times the optimal objective value" (Figure 10(B)).
    LossBelow {
        /// Absolute loss target.
        target: f64,
        /// Upper bound on epochs.
        max_epochs: usize,
    },
    /// Stop when the gradient norm reported by the task falls below
    /// `tolerance`, or after `max_epochs`.
    GradientNormBelow {
        /// Gradient-norm threshold.
        tolerance: f64,
        /// Upper bound on epochs.
        max_epochs: usize,
    },
}

impl ConvergenceTest {
    /// The paper's default completion criterion: 0.1% relative tolerance with
    /// a generous epoch cap.
    pub fn paper_default(max_epochs: usize) -> Self {
        ConvergenceTest::RelativeLossDecrease {
            tolerance: 1e-3,
            max_epochs,
        }
    }

    /// Decide whether to stop after `epoch` (0-based) given the loss history
    /// so far (`losses[e]` is the loss measured after epoch `e`) and the
    /// latest gradient norm if the task tracks one.
    ///
    /// # Non-finite losses
    ///
    /// A non-finite *current* loss (`NaN`/`±inf`) means the run has diverged:
    /// no later epoch can recover on its own, so every loss-based test treats
    /// it as a stop signal rather than "keep training" (which would spin
    /// uselessly until `max_epochs`). Callers distinguish divergence from
    /// convergence by inspecting the final loss — [`crate::EpochRunner`] never
    /// marks a run with a non-finite final loss as converged. A non-finite
    /// *previous* loss with a finite current one (e.g. after a divergence
    /// recovery restored an earlier model) keeps training: the relative-drop
    /// ratio is meaningless across that boundary.
    pub fn should_stop(&self, epoch: usize, losses: &[f64], gradient_norm: Option<f64>) -> bool {
        // Divergence short-circuit for every loss-based test (FixedEpochs
        // runs its count regardless; the caller still sees the NaN loss).
        if !matches!(self, ConvergenceTest::FixedEpochs(_))
            && losses.last().is_some_and(|l| !l.is_finite())
        {
            return true;
        }
        match *self {
            ConvergenceTest::FixedEpochs(n) => epoch + 1 >= n,
            ConvergenceTest::RelativeLossDecrease {
                tolerance,
                max_epochs,
            } => {
                if epoch + 1 >= max_epochs {
                    return true;
                }
                if losses.len() < 2 {
                    return false;
                }
                let prev = losses[losses.len() - 2];
                let curr = losses[losses.len() - 1];
                if !prev.is_finite() {
                    // Recovered from a bad epoch; the drop ratio is undefined,
                    // so keep training.
                    return false;
                }
                let denom = prev.abs().max(1e-12);
                let rel = (prev - curr) / denom;
                // Stop only when progress is non-negative and tiny; a loss
                // increase (rel < 0) keeps training, mirroring the common
                // "relative drop" heuristic.
                (0.0..tolerance).contains(&rel)
            }
            ConvergenceTest::LossBelow { target, max_epochs } => {
                if epoch + 1 >= max_epochs {
                    return true;
                }
                losses.last().is_some_and(|&l| l <= target)
            }
            ConvergenceTest::GradientNormBelow {
                tolerance,
                max_epochs,
            } => {
                if epoch + 1 >= max_epochs {
                    return true;
                }
                gradient_norm.is_some_and(|g| g <= tolerance)
            }
        }
    }

    /// The maximum number of epochs this test will ever allow.
    pub fn epoch_cap(&self) -> usize {
        match *self {
            ConvergenceTest::FixedEpochs(n) => n,
            ConvergenceTest::RelativeLossDecrease { max_epochs, .. }
            | ConvergenceTest::LossBelow { max_epochs, .. }
            | ConvergenceTest::GradientNormBelow { max_epochs, .. } => max_epochs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_epochs_counts() {
        let t = ConvergenceTest::FixedEpochs(3);
        assert!(!t.should_stop(0, &[1.0], None));
        assert!(!t.should_stop(1, &[1.0, 0.9], None));
        assert!(t.should_stop(2, &[1.0, 0.9, 0.8], None));
        assert_eq!(t.epoch_cap(), 3);
    }

    #[test]
    fn relative_drop_stops_on_small_improvement() {
        let t = ConvergenceTest::RelativeLossDecrease {
            tolerance: 1e-3,
            max_epochs: 100,
        };
        assert!(!t.should_stop(0, &[10.0], None));
        // 10 -> 5: big improvement, keep going
        assert!(!t.should_stop(1, &[10.0, 5.0], None));
        // 5 -> 4.9999: tiny improvement, stop
        assert!(t.should_stop(2, &[10.0, 5.0, 4.9999], None));
        // loss increased: keep going
        assert!(!t.should_stop(3, &[10.0, 5.0, 4.9999, 5.5], None));
    }

    #[test]
    fn relative_drop_respects_epoch_cap() {
        let t = ConvergenceTest::RelativeLossDecrease {
            tolerance: 1e-9,
            max_epochs: 2,
        };
        assert!(t.should_stop(1, &[10.0, 1.0], None));
    }

    #[test]
    fn relative_drop_ignores_non_finite() {
        let t = ConvergenceTest::RelativeLossDecrease {
            tolerance: 1e-3,
            max_epochs: 10,
        };
        assert!(!t.should_stop(1, &[f64::INFINITY, 5.0], None));
        assert!(!t.should_stop(1, &[f64::NAN, 5.0], None));
    }

    #[test]
    fn non_finite_current_loss_is_a_stop_signal() {
        // A diverged run must stop immediately instead of spinning to the cap.
        let rel = ConvergenceTest::RelativeLossDecrease {
            tolerance: 1e-3,
            max_epochs: 1000,
        };
        assert!(rel.should_stop(1, &[5.0, f64::NAN], None));
        assert!(rel.should_stop(1, &[5.0, f64::INFINITY], None));
        assert!(rel.should_stop(0, &[f64::NAN], None));

        let below = ConvergenceTest::LossBelow {
            target: 1.0,
            max_epochs: 1000,
        };
        assert!(below.should_stop(1, &[5.0, f64::NAN], None));
        assert!(below.should_stop(1, &[5.0, f64::INFINITY], None));

        let grad = ConvergenceTest::GradientNormBelow {
            tolerance: 1e-9,
            max_epochs: 1000,
        };
        assert!(grad.should_stop(1, &[5.0, f64::NAN], Some(1.0)));

        // FixedEpochs runs its full count regardless.
        let fixed = ConvergenceTest::FixedEpochs(5);
        assert!(!fixed.should_stop(1, &[5.0, f64::NAN], None));
    }

    #[test]
    fn loss_below_target() {
        let t = ConvergenceTest::LossBelow {
            target: 1.0,
            max_epochs: 50,
        };
        assert!(!t.should_stop(0, &[2.0], None));
        assert!(t.should_stop(1, &[2.0, 0.9], None));
        assert!(t.should_stop(49, &[2.0; 50], None));
    }

    #[test]
    fn gradient_norm_threshold() {
        let t = ConvergenceTest::GradientNormBelow {
            tolerance: 1e-2,
            max_epochs: 10,
        };
        assert!(!t.should_stop(0, &[1.0], Some(0.5)));
        assert!(t.should_stop(1, &[1.0, 1.0], Some(1e-3)));
        assert!(!t.should_stop(1, &[1.0, 1.0], None));
        assert!(t.should_stop(9, &[1.0; 10], None));
    }

    #[test]
    fn paper_default_is_point_one_percent() {
        match ConvergenceTest::paper_default(20) {
            ConvergenceTest::RelativeLossDecrease {
                tolerance,
                max_epochs,
            } => {
                assert!((tolerance - 1e-3).abs() < 1e-15);
                assert_eq!(max_epochs, 20);
            }
            other => panic!("unexpected default {other:?}"),
        }
    }
}
