//! Property-based tests for the linear-algebra kernels.

use bismarck_linalg::{
    ops, project_l1_ball, project_l2_ball, project_simplex, DenseVector, SparseVector,
};
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, 0..max_len)
}

proptest! {
    #[test]
    fn dot_is_commutative(a in finite_vec(32), b in finite_vec(32)) {
        let ab = ops::dot(&a, &b);
        let ba = ops::dot(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn dot_with_zero_vector_is_zero(a in finite_vec(32)) {
        let z = vec![0.0; a.len()];
        prop_assert_eq!(ops::dot(&a, &z), 0.0);
    }

    #[test]
    fn scale_and_add_matches_elementwise(a in finite_vec(16), c in -10.0f64..10.0) {
        let x: Vec<f64> = a.iter().map(|v| v * 0.5 + 1.0).collect();
        let mut w = a.clone();
        ops::scale_and_add(&mut w, &x, c);
        for i in 0..a.len() {
            prop_assert!((w[i] - (a[i] + c * x[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn sigmoid_in_unit_interval(z in -1e6f64..1e6) {
        let s = ops::sigmoid(z);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn log1p_exp_nonnegative_and_above_linear(z in -700.0f64..700.0) {
        let v = ops::log1p_exp(z);
        prop_assert!(v >= 0.0);
        prop_assert!(v + 1e-9 >= z);
    }

    #[test]
    fn simplex_projection_invariants(mut w in prop::collection::vec(-50.0f64..50.0, 1..24)) {
        project_simplex(&mut w);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum {}", sum);
        prop_assert!(w.iter().all(|&v| v >= -1e-9));
    }

    #[test]
    fn l2_ball_projection_invariant(mut w in finite_vec(24), r in 0.01f64..10.0) {
        project_l2_ball(&mut w, r);
        prop_assert!(ops::norm2(&w) <= r + 1e-6);
    }

    #[test]
    fn l1_ball_projection_invariant(mut w in finite_vec(24), r in 0.01f64..10.0) {
        project_l1_ball(&mut w, r);
        prop_assert!(ops::norm1(&w) <= r + 1e-6);
    }

    #[test]
    fn sparse_dense_dot_agree(pairs in prop::collection::vec((0usize..64, -10.0f64..10.0), 0..32),
                              w in prop::collection::vec(-10.0f64..10.0, 64..65)) {
        let sv = SparseVector::from_pairs(pairs.clone());
        let dv = sv.to_dense(64);
        let sparse_dot = sv.dot_dense(&w);
        let dense_dot = ops::dot(dv.as_slice(), &w);
        prop_assert!((sparse_dot - dense_dot).abs() < 1e-6);
    }

    #[test]
    fn sparse_scale_and_add_agrees_with_dense(
        pairs in prop::collection::vec((0usize..32, -10.0f64..10.0), 0..16),
        c in -5.0f64..5.0)
    {
        let sv = SparseVector::from_pairs(pairs);
        let dv = sv.to_dense(32);
        let mut w1 = vec![1.0; 32];
        let mut w2 = vec![1.0; 32];
        sv.scale_and_add_into(&mut w1, c);
        ops::scale_and_add(&mut w2, dv.as_slice(), c);
        for i in 0..32 {
            prop_assert!((w1[i] - w2[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn dense_average_midpoint_between_norms(a in finite_vec(16)) {
        let mut x = DenseVector::from(a.clone());
        let y = DenseVector::from(a.iter().map(|v| -v).collect::<Vec<_>>());
        x.average_with(&y, 1.0, 1.0);
        // averaging a vector with its negation yields zero
        prop_assert!(x.norm2() < 1e-9);
    }
}
