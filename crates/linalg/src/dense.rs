//! Dense, owned `f64` vectors.
//!
//! `DenseVector` is the representation of models (the UDA `state` in the
//! paper) and of dense feature columns such as the Forest dataset's 54
//! cartographic attributes.

use crate::ops;

/// A dense vector of `f64` values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DenseVector {
    values: Vec<f64>,
}

impl DenseVector {
    /// Create a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        DenseVector {
            values: vec![0.0; n],
        }
    }

    /// Create a vector filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        DenseVector {
            values: vec![value; n],
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vector has zero components.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Mutably borrow the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consume into the underlying `Vec`.
    pub fn into_vec(self) -> Vec<f64> {
        self.values
    }

    /// Grow (zero-padding) or shrink to exactly `n` components.
    pub fn resize(&mut self, n: usize) {
        self.values.resize(n, 0.0);
    }

    /// Component access; returns 0.0 out of range so models can be probed by
    /// feature index without bounds bookkeeping at call sites.
    pub fn get(&self, i: usize) -> f64 {
        self.values.get(i).copied().unwrap_or(0.0)
    }

    /// Set component `i`, growing the vector if needed.
    pub fn set(&mut self, i: usize, v: f64) {
        if i >= self.values.len() {
            self.values.resize(i + 1, 0.0);
        }
        self.values[i] = v;
    }

    /// Dot product with another dense vector.
    pub fn dot(&self, other: &DenseVector) -> f64 {
        ops::dot(&self.values, &other.values)
    }

    /// `self += c * other`.
    pub fn scale_and_add(&mut self, other: &DenseVector, c: f64) {
        if other.len() > self.len() {
            self.resize(other.len());
        }
        ops::scale_and_add(&mut self.values, &other.values, c);
    }

    /// `self *= c`.
    pub fn scale(&mut self, c: f64) {
        ops::scale(&mut self.values, c);
    }

    /// Euclidean norm.
    pub fn norm2(&self) -> f64 {
        ops::norm2(&self.values)
    }

    /// Squared Euclidean norm.
    pub fn norm2_sq(&self) -> f64 {
        ops::norm2_sq(&self.values)
    }

    /// L1 norm.
    pub fn norm1(&self) -> f64 {
        ops::norm1(&self.values)
    }

    /// Squared Euclidean distance to another vector.
    pub fn dist_sq(&self, other: &DenseVector) -> f64 {
        ops::dist_sq(&self.values, &other.values)
    }

    /// Element-wise average of two vectors (used by the PureUDA merge step).
    pub fn average_with(&mut self, other: &DenseVector, self_weight: f64, other_weight: f64) {
        let total = self_weight + other_weight;
        if total <= 0.0 {
            return;
        }
        if other.len() > self.len() {
            self.resize(other.len());
        }
        let n = self.len().min(other.len());
        for i in 0..n {
            self.values[i] =
                (self.values[i] * self_weight + other.values[i] * other_weight) / total;
        }
        // Components present only in `self` keep only their weighted share.
        for i in n..self.len() {
            self.values[i] = self.values[i] * self_weight / total;
        }
    }
}

impl From<Vec<f64>> for DenseVector {
    fn from(values: Vec<f64>) -> Self {
        DenseVector { values }
    }
}

impl From<&[f64]> for DenseVector {
    fn from(values: &[f64]) -> Self {
        DenseVector {
            values: values.to_vec(),
        }
    }
}

impl std::ops::Index<usize> for DenseVector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.values[i]
    }
}

impl std::ops::IndexMut<usize> for DenseVector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.values[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        assert_eq!(DenseVector::zeros(3).as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(DenseVector::filled(2, 1.5).as_slice(), &[1.5, 1.5]);
        assert!(DenseVector::zeros(0).is_empty());
    }

    #[test]
    fn get_out_of_range_is_zero() {
        let v = DenseVector::from(vec![1.0]);
        assert_eq!(v.get(0), 1.0);
        assert_eq!(v.get(5), 0.0);
    }

    #[test]
    fn set_grows() {
        let mut v = DenseVector::zeros(1);
        v.set(3, 2.0);
        assert_eq!(v.len(), 4);
        assert_eq!(v.get(3), 2.0);
    }

    #[test]
    fn scale_and_add_grows_to_other() {
        let mut v = DenseVector::from(vec![1.0]);
        v.scale_and_add(&DenseVector::from(vec![1.0, 2.0]), 2.0);
        assert_eq!(v.as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn norms_and_distance() {
        let v = DenseVector::from(vec![3.0, 4.0]);
        assert!((v.norm2() - 5.0).abs() < 1e-12);
        assert!((v.norm2_sq() - 25.0).abs() < 1e-12);
        assert!((v.norm1() - 7.0).abs() < 1e-12);
        let u = DenseVector::zeros(2);
        assert!((v.dist_sq(&u) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn average_with_equal_weights_is_midpoint() {
        let mut a = DenseVector::from(vec![2.0, 0.0]);
        let b = DenseVector::from(vec![0.0, 2.0]);
        a.average_with(&b, 1.0, 1.0);
        assert_eq!(a.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn average_with_weighted() {
        let mut a = DenseVector::from(vec![0.0]);
        let b = DenseVector::from(vec![4.0]);
        a.average_with(&b, 3.0, 1.0);
        assert!((a[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_with_zero_total_weight_is_noop() {
        let mut a = DenseVector::from(vec![1.0]);
        let b = DenseVector::from(vec![5.0]);
        a.average_with(&b, 0.0, 0.0);
        assert_eq!(a.as_slice(), &[1.0]);
    }

    #[test]
    fn index_ops() {
        let mut v = DenseVector::from(vec![1.0, 2.0]);
        v[1] = 7.0;
        assert_eq!(v[1], 7.0);
    }
}
