//! Euclidean projections used as proximal-point operators (Appendix A).
//!
//! The paper's step rule `w ← Π_{αP}(w − α ∇f_i(w))` needs, for the tasks of
//! Figure 1(B):
//! * projection onto the probability simplex Δ (portfolio optimization),
//! * projection onto an L2 ball (norm constraints on classifiers),
//! * the soft-thresholding / L1-ball machinery behind `µ‖w‖₁` regularizers.

use crate::ops::soft_threshold;

/// Project `w` onto the probability simplex `{ w : w_i >= 0, Σ w_i = 1 }`.
///
/// Uses the classic sort-based algorithm (Held, Wolfe & Crowder). The empty
/// vector is returned unchanged.
pub fn project_simplex(w: &mut [f64]) {
    let n = w.len();
    if n == 0 {
        return;
    }
    let mut sorted: Vec<f64> = w.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let mut cumsum = 0.0;
    let mut rho = 0usize;
    let mut rho_cumsum = 0.0;
    for (k, &v) in sorted.iter().enumerate() {
        cumsum += v;
        let t = (cumsum - 1.0) / (k as f64 + 1.0);
        if v - t > 0.0 {
            rho = k + 1;
            rho_cumsum = cumsum;
        }
    }
    // rho is at least 1 because the largest element always satisfies the test.
    let theta = (rho_cumsum - 1.0) / rho as f64;
    for v in w.iter_mut() {
        *v = (*v - theta).max(0.0);
    }
}

/// Project `w` onto the Euclidean ball of the given `radius` centered at the
/// origin. Vectors already inside the ball are left untouched.
pub fn project_l2_ball(w: &mut [f64], radius: f64) {
    assert!(radius >= 0.0, "radius must be non-negative");
    let norm = crate::ops::norm2(w);
    if norm > radius && norm > 0.0 {
        let scale = radius / norm;
        for v in w.iter_mut() {
            *v *= scale;
        }
    }
}

/// Project `w` onto the L1 ball of the given `radius`.
///
/// Implemented by projecting `|w|` onto the simplex scaled by `radius` and
/// restoring signs; vectors already inside the ball are unchanged.
pub fn project_l1_ball(w: &mut [f64], radius: f64) {
    assert!(radius >= 0.0, "radius must be non-negative");
    let l1: f64 = w.iter().map(|v| v.abs()).sum();
    if l1 <= radius || w.is_empty() {
        return;
    }
    if radius == 0.0 {
        for v in w.iter_mut() {
            *v = 0.0;
        }
        return;
    }
    let mut abs: Vec<f64> = w.iter().map(|v| v.abs() / radius).collect();
    project_simplex(&mut abs);
    for (v, a) in w.iter_mut().zip(abs.iter()) {
        *v = v.signum() * a * radius;
    }
}

/// Apply element-wise soft-thresholding with threshold `t >= 0`; this is the
/// proximal operator of `t * ‖w‖₁` and implements the `µ‖w‖₁` penalty of the
/// LR and SVM objectives in Figure 1(B).
pub fn soft_threshold_vec(w: &mut [f64], t: f64) {
    assert!(t >= 0.0, "threshold must be non-negative");
    for v in w.iter_mut() {
        *v = soft_threshold(*v, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{norm1, norm2};

    fn assert_on_simplex(w: &[f64]) {
        assert!(w.iter().all(|&v| v >= -1e-12), "non-negative: {w:?}");
        let s: f64 = w.iter().sum();
        assert!((s - 1.0).abs() < 1e-9, "sums to one: {s}");
    }

    #[test]
    fn simplex_projection_of_simplex_point_is_identity() {
        let mut w = vec![0.2, 0.3, 0.5];
        let orig = w.clone();
        project_simplex(&mut w);
        for (a, b) in w.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn simplex_projection_produces_simplex_point() {
        let mut w = vec![2.0, -1.0, 0.5, 3.0];
        project_simplex(&mut w);
        assert_on_simplex(&w);
    }

    #[test]
    fn simplex_projection_uniform_for_equal_inputs() {
        let mut w = vec![5.0; 4];
        project_simplex(&mut w);
        for &v in &w {
            assert!((v - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn simplex_projection_single_element() {
        let mut w = vec![-3.0];
        project_simplex(&mut w);
        assert!((w[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn simplex_projection_empty_is_noop() {
        let mut w: Vec<f64> = vec![];
        project_simplex(&mut w);
        assert!(w.is_empty());
    }

    #[test]
    fn l2_ball_projection_shrinks_outside_points() {
        let mut w = vec![3.0, 4.0];
        project_l2_ball(&mut w, 1.0);
        assert!((norm2(&w) - 1.0).abs() < 1e-9);
        // direction preserved
        assert!((w[0] / w[1] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn l2_ball_projection_keeps_inside_points() {
        let mut w = vec![0.1, 0.2];
        let orig = w.clone();
        project_l2_ball(&mut w, 1.0);
        assert_eq!(w, orig);
    }

    #[test]
    fn l1_ball_projection_reduces_norm_to_radius() {
        let mut w = vec![3.0, -4.0, 0.5];
        project_l1_ball(&mut w, 2.0);
        assert!(norm1(&w) <= 2.0 + 1e-9);
    }

    #[test]
    fn l1_ball_projection_keeps_inside_points_and_zero_radius() {
        let mut w = vec![0.5, -0.5];
        let orig = w.clone();
        project_l1_ball(&mut w, 2.0);
        assert_eq!(w, orig);
        project_l1_ball(&mut w, 0.0);
        assert_eq!(w, vec![0.0, 0.0]);
    }

    #[test]
    fn soft_threshold_vec_shrinks_towards_zero() {
        let mut w = vec![2.0, -0.5, -3.0];
        soft_threshold_vec(&mut w, 1.0);
        assert_eq!(w, vec![1.0, 0.0, -2.0]);
    }
}
