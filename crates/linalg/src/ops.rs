//! Scalar and dense-slice kernels: the `Dot_Product`, `Scale_And_Add` and
//! `Sigmoid` primitives of Figure 4, plus numerically-stable log-sum-exp used
//! by the CRF task.

/// Dot product of two equally-long slices.
///
/// The shorter length is used if the slices disagree so the kernel never
/// panics on ragged inputs (the storage layer validates dimensions upstream).
///
/// Four independent accumulators let the compiler keep four FMA chains in
/// flight and auto-vectorize; this runs once per tuple per epoch, so the
/// constant factor here is the system's per-tuple cost (Figure 4).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; 4];
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut tail = 0.0;
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// `w += c * x` over dense slices (`Scale_And_Add` in the paper's Figure 4).
#[inline]
pub fn scale_and_add(w: &mut [f64], x: &[f64], c: f64) {
    let n = w.len().min(x.len());
    let (w, x) = (&mut w[..n], &x[..n]);
    let mut chunks_w = w.chunks_exact_mut(4);
    let mut chunks_x = x.chunks_exact(4);
    for (cw, cx) in chunks_w.by_ref().zip(chunks_x.by_ref()) {
        cw[0] += c * cx[0];
        cw[1] += c * cx[1];
        cw[2] += c * cx[2];
        cw[3] += c * cx[3];
    }
    for (slot, v) in chunks_w
        .into_remainder()
        .iter_mut()
        .zip(chunks_x.remainder())
    {
        *slot += c * v;
    }
}

/// Scale a vector in place: `w *= c`.
#[inline]
pub fn scale(w: &mut [f64], c: f64) {
    for v in w.iter_mut() {
        *v *= c;
    }
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean norm.
#[inline]
pub fn norm2_sq(a: &[f64]) -> f64 {
    dot(a, a)
}

/// L1 norm.
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).sum()
}

/// Squared Euclidean distance between two slices.
#[inline]
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; 4];
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        let d0 = ca[0] - cb[0];
        let d1 = ca[1] - cb[1];
        let d2 = ca[2] - cb[2];
        let d3 = ca[3] - cb[3];
        acc[0] += d0 * d0;
        acc[1] += d1 * d1;
        acc[2] += d2 * d2;
        acc[3] += d3 * d3;
    }
    let mut tail = 0.0;
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// The logistic sigmoid `1 / (1 + exp(-z))`, evaluated without overflow for
/// large `|z|`.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        let e = (-z).exp();
        1.0 / (1.0 + e)
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// `log(1 + exp(z))` evaluated without overflow; the logistic loss of a
/// single example is `log1p_exp(-y * w.x)`.
#[inline]
pub fn log1p_exp(z: f64) -> f64 {
    if z > 35.0 {
        // exp(z) dominates; log(1+exp(z)) ~ z
        z
    } else if z < -35.0 {
        // exp(z) ~ 0
        z.exp()
    } else {
        z.exp().ln_1p()
    }
}

/// Numerically stable `log(sum_i exp(xs[i]))`.
///
/// Returns negative infinity for an empty slice, matching the convention
/// `log(0) = -inf` so callers can fold sequences without special cases.
#[inline]
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NEG_INFINITY;
    }
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    let sum: f64 = xs.iter().map(|x| (x - m).exp()).sum();
    m + sum.ln()
}

/// Soft-thresholding operator used by the L1 (lasso) proximal step:
/// `sign(z) * max(|z| - t, 0)`.
#[inline]
pub fn soft_threshold(z: f64, t: f64) -> f64 {
    if z > t {
        z - t
    } else if z < -t {
        z + t
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert!((dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]) - 32.0).abs() < 1e-12);
    }

    #[test]
    fn dot_ragged_uses_shorter() {
        assert!((dot(&[1.0, 2.0], &[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn unrolled_kernels_match_naive_loops_across_lengths() {
        for n in 0..23usize {
            let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 0.3).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos() - 0.1).collect();
            let naive_dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive_dot).abs() < 1e-12, "dot n={n}");
            let naive_dist: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            assert!((dist_sq(&a, &b) - naive_dist).abs() < 1e-12, "dist n={n}");
            let mut w = a.clone();
            scale_and_add(&mut w, &b, 0.25);
            for i in 0..n {
                assert!(
                    (w[i] - (a[i] + 0.25 * b[i])).abs() < 1e-12,
                    "axpy n={n} i={i}"
                );
            }
        }
    }

    #[test]
    fn scale_and_add_basic() {
        let mut w = vec![1.0, 1.0];
        scale_and_add(&mut w, &[2.0, -1.0], 0.5);
        assert_eq!(w, vec![2.0, 0.5]);
    }

    #[test]
    fn scale_in_place() {
        let mut w = vec![2.0, -4.0];
        scale(&mut w, 0.5);
        assert_eq!(w, vec![1.0, -2.0]);
    }

    #[test]
    fn norms() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((norm2_sq(&[3.0, 4.0]) - 25.0).abs() < 1e-12);
        assert!((norm1(&[3.0, -4.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn dist_sq_basic() {
        assert!((dist_sq(&[1.0, 1.0], &[4.0, 5.0]) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_is_bounded_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        let z = 1.7;
        assert!((sigmoid(z) + sigmoid(-z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log1p_exp_matches_naive_in_safe_range() {
        for &z in &[-10.0, -1.0, 0.0, 1.0, 10.0] {
            let naive = (1.0f64 + f64::exp(z)).ln();
            assert!((log1p_exp(z) - naive).abs() < 1e-9, "z={z}");
        }
    }

    #[test]
    fn log1p_exp_large_inputs_do_not_overflow() {
        assert!((log1p_exp(1000.0) - 1000.0).abs() < 1e-9);
        assert!(log1p_exp(-1000.0) >= 0.0);
        assert!(log1p_exp(-1000.0) < 1e-300);
    }

    #[test]
    fn log_sum_exp_matches_naive() {
        let xs = [0.1, -2.0, 3.5];
        let naive = xs.iter().map(|x: &f64| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-9);
    }

    #[test]
    fn log_sum_exp_empty_and_large() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        let big = [1000.0, 1000.0];
        assert!((log_sum_exp(&big) - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
    }
}
