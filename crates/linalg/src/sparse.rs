//! Sparse vectors stored as sorted (index, value) pairs.
//!
//! The DBLife, CoNLL and DBLP datasets of Table 1 are "in sparse-vector
//! format"; sparse updates are also what makes the Hogwild!-style NoLock
//! parallelism effective (conflicting writes are rare when each example
//! touches few coordinates).

use crate::dense::DenseVector;

/// Why a pre-sorted index/value pair was rejected by
/// [`SparseVector::try_from_sorted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparseLayoutError {
    /// The index and value arrays differ in length.
    LengthMismatch {
        /// Number of indices supplied.
        indices: usize,
        /// Number of values supplied.
        values: usize,
    },
    /// Indices are not strictly increasing at the given position: entry
    /// `position` does not exceed entry `position - 1`.
    NotStrictlyIncreasing {
        /// First offending position (the later of the two entries).
        position: usize,
    },
}

impl std::fmt::Display for SparseLayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseLayoutError::LengthMismatch { indices, values } => {
                write!(f, "sparse vector has {indices} indices but {values} values")
            }
            SparseLayoutError::NotStrictlyIncreasing { position } => write!(
                f,
                "sparse indices are not strictly increasing at entry {position}"
            ),
        }
    }
}

impl std::error::Error for SparseLayoutError {}

/// A sparse `f64` vector: strictly increasing indices with their values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVector {
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseVector {
    /// Empty sparse vector.
    pub fn new() -> Self {
        SparseVector::default()
    }

    /// Build from (index, value) pairs. Pairs are sorted and duplicate
    /// indices are summed, so any insertion order is accepted.
    ///
    /// This is the one place sort-and-merge semantics live; the result is
    /// handed to [`SparseVector::try_from_sorted`] so the layout invariant is
    /// asserted in every build profile.
    pub fn from_pairs(mut pairs: Vec<(usize, f64)>) -> Self {
        pairs.sort_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(pairs.len());
        let mut values: Vec<f64> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if let Some(&last) = indices.last() {
                if last == i as u32 {
                    *values.last_mut().expect("values tracks indices") += v;
                    continue;
                }
            }
            indices.push(i as u32);
            values.push(v);
        }
        SparseVector::try_from_sorted(indices, values)
            .expect("sorted and merged pairs form a valid sparse layout")
    }

    /// Build from parallel index/value arrays that are already sorted by
    /// strictly increasing index. Panics in debug builds if they are not.
    ///
    /// In release builds the layout is *not* checked; ingest paths that
    /// accept external input must use [`SparseVector::try_from_sorted`] so a
    /// malformed row cannot silently corrupt every later dot product.
    pub fn from_sorted(indices: Vec<u32>, values: Vec<f64>) -> Self {
        debug_assert_eq!(indices.len(), values.len());
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        SparseVector { indices, values }
    }

    /// Checked variant of [`SparseVector::from_sorted`]: validates the layout
    /// in every build profile and reports what is wrong instead of debug-only
    /// panicking. Binary-search `get` and merge-style kernels assume strictly
    /// increasing indices, so this is the constructor ingest code must use.
    pub fn try_from_sorted(indices: Vec<u32>, values: Vec<f64>) -> Result<Self, SparseLayoutError> {
        if indices.len() != values.len() {
            return Err(SparseLayoutError::LengthMismatch {
                indices: indices.len(),
                values: values.len(),
            });
        }
        if let Some(position) = indices.windows(2).position(|w| w[0] >= w[1]) {
            return Err(SparseLayoutError::NotStrictlyIncreasing {
                position: position + 1,
            });
        }
        Ok(SparseVector { indices, values })
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Whether the vector stores no entries.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Logical dimension: one past the largest stored index (0 when empty).
    pub fn dimension(&self) -> usize {
        self.indices.last().map(|&i| i as usize + 1).unwrap_or(0)
    }

    /// Stored indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Stored values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterate over (index, value) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.indices
            .iter()
            .zip(self.values.iter())
            .map(|(&i, &v)| (i as usize, v))
    }

    /// Value at logical index `i` (0.0 if not stored).
    pub fn get(&self, i: usize) -> f64 {
        // Indices past u32::MAX cannot be stored; `as u32` would wrap and
        // alias a stored entry.
        let Ok(i) = u32::try_from(i) else { return 0.0 };
        match self.indices.binary_search(&i) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Dot product against a dense model slice. Indices beyond the model's
    /// length contribute zero (the model is logically zero-padded).
    pub fn dot_dense(&self, w: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (&i, &v) in self.indices.iter().zip(self.values.iter()) {
            if let Some(&wi) = w.get(i as usize) {
                acc += wi * v;
            }
        }
        acc
    }

    /// `w += c * self`, touching only the stored coordinates. Indices beyond
    /// `w.len()` are ignored (callers size the model to the data dimension).
    pub fn scale_and_add_into(&self, w: &mut [f64], c: f64) {
        for (&i, &v) in self.indices.iter().zip(self.values.iter()) {
            if let Some(slot) = w.get_mut(i as usize) {
                *slot += c * v;
            }
        }
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Materialize into a dense vector of dimension `dim` (at least the
    /// sparse vector's own dimension).
    pub fn to_dense(&self, dim: usize) -> DenseVector {
        let n = dim.max(self.dimension());
        let mut out = DenseVector::zeros(n);
        for (i, v) in self.iter() {
            out.as_mut_slice()[i] = v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_merges_duplicates() {
        let v = SparseVector::from_pairs(vec![(3, 1.0), (1, 2.0), (3, 0.5)]);
        assert_eq!(v.indices(), &[1, 3]);
        assert_eq!(v.values(), &[2.0, 1.5]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn dimension_of_empty_is_zero() {
        assert_eq!(SparseVector::new().dimension(), 0);
        assert!(SparseVector::new().is_empty());
    }

    #[test]
    fn get_returns_stored_or_zero() {
        let v = SparseVector::from_pairs(vec![(2, 5.0)]);
        assert_eq!(v.get(2), 5.0);
        assert_eq!(v.get(0), 0.0);
        assert_eq!(v.get(100), 0.0);
    }

    #[test]
    fn dot_dense_ignores_out_of_range() {
        let v = SparseVector::from_pairs(vec![(0, 1.0), (5, 10.0)]);
        let w = [2.0, 0.0, 0.0];
        assert!((v.dot_dense(&w) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scale_and_add_touches_only_stored() {
        let v = SparseVector::from_pairs(vec![(1, 2.0), (9, 1.0)]);
        let mut w = vec![0.0; 3];
        v.scale_and_add_into(&mut w, 3.0);
        assert_eq!(w, vec![0.0, 6.0, 0.0]);
    }

    #[test]
    fn to_dense_roundtrip() {
        let v = SparseVector::from_pairs(vec![(1, 2.0), (3, -1.0)]);
        let d = v.to_dense(4);
        assert_eq!(d.as_slice(), &[0.0, 2.0, 0.0, -1.0]);
        assert!((v.norm_sq() - d.norm2_sq()).abs() < 1e-12);
    }

    #[test]
    fn to_dense_respects_requested_dim() {
        let v = SparseVector::from_pairs(vec![(1, 2.0)]);
        assert_eq!(v.to_dense(5).len(), 5);
        // Requested dim smaller than actual dimension is still large enough.
        assert_eq!(v.to_dense(0).len(), 2);
    }

    #[test]
    fn from_sorted_accepts_valid_input() {
        let v = SparseVector::from_sorted(vec![0, 2], vec![1.0, 2.0]);
        assert_eq!(v.get(2), 2.0);
    }

    #[test]
    fn try_from_sorted_accepts_valid_and_empty_input() {
        let v = SparseVector::try_from_sorted(vec![0, 2, 9], vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(v.nnz(), 3);
        assert_eq!(v.get(9), 3.0);
        assert!(SparseVector::try_from_sorted(vec![], vec![])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn try_from_sorted_rejects_malformed_layouts() {
        assert_eq!(
            SparseVector::try_from_sorted(vec![0, 1], vec![1.0]),
            Err(SparseLayoutError::LengthMismatch {
                indices: 2,
                values: 1
            })
        );
        assert_eq!(
            SparseVector::try_from_sorted(vec![0, 2, 1], vec![1.0, 2.0, 3.0]),
            Err(SparseLayoutError::NotStrictlyIncreasing { position: 2 })
        );
        // Duplicate indices are also rejected: "sorted" means strictly so.
        let dup = SparseVector::try_from_sorted(vec![3, 3], vec![1.0, 2.0]);
        assert_eq!(
            dup,
            Err(SparseLayoutError::NotStrictlyIncreasing { position: 1 })
        );
        assert!(dup.unwrap_err().to_string().contains("strictly increasing"));
    }
}
