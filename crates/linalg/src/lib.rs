//! Vector and matrix primitives used throughout the Bismarck reproduction.
//!
//! The paper's transition functions are written in terms of a handful of
//! kernels — `Dot_Product`, `Scale_And_Add`, `Sigmoid` (Figure 4) — applied to
//! either dense feature vectors (e.g. the Forest dataset) or sparse ones
//! (e.g. DBLife, CoNLL). This crate provides those kernels together with the
//! small amount of matrix machinery needed for low-rank matrix factorization
//! and linear-chain CRFs.
//!
//! Everything here is deliberately dependency-free and allocation-conscious:
//! the transition function runs once per tuple per epoch, so it is the hot
//! loop of the whole system.

#![warn(missing_docs)]

pub mod dense;
pub mod factor;
pub mod ops;
pub mod projection;
pub mod sparse;

pub use crate::dense::DenseVector;
pub use crate::factor::FactorMatrix;
pub use crate::ops::{log1p_exp, log_sum_exp, sigmoid};
pub use crate::projection::{project_l1_ball, project_l2_ball, project_simplex};
pub use crate::sparse::{SparseLayoutError, SparseVector};

/// A feature vector that is either dense or sparse.
///
/// Tasks such as logistic regression and SVM are written once against this
/// enum so the same transition code handles both the dense Forest-like and
/// sparse DBLife-like datasets, mirroring how the paper's C implementation
/// dispatches on the input column type.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureVector {
    /// Dense feature values, index `i` holds feature `i`.
    Dense(DenseVector),
    /// Sparse feature values as sorted (index, value) pairs.
    Sparse(SparseVector),
}

impl FeatureVector {
    /// Dot product with a dense model vector.
    #[inline]
    pub fn dot(&self, w: &[f64]) -> f64 {
        match self {
            FeatureVector::Dense(x) => ops::dot(x.as_slice(), w),
            FeatureVector::Sparse(x) => x.dot_dense(w),
        }
    }

    /// `w += c * x`, the `Scale_And_Add` kernel from Figure 4.
    #[inline]
    pub fn scale_and_add_into(&self, w: &mut [f64], c: f64) {
        match self {
            FeatureVector::Dense(x) => ops::scale_and_add(w, x.as_slice(), c),
            FeatureVector::Sparse(x) => x.scale_and_add_into(w, c),
        }
    }

    /// Number of logical dimensions (highest index + 1 for sparse vectors).
    pub fn dimension(&self) -> usize {
        match self {
            FeatureVector::Dense(x) => x.len(),
            FeatureVector::Sparse(x) => x.dimension(),
        }
    }

    /// Number of stored (possibly zero) entries.
    pub fn nnz(&self) -> usize {
        match self {
            FeatureVector::Dense(x) => x.len(),
            FeatureVector::Sparse(x) => x.nnz(),
        }
    }

    /// Squared Euclidean norm of the feature vector.
    pub fn norm_sq(&self) -> f64 {
        match self {
            FeatureVector::Dense(x) => ops::dot(x.as_slice(), x.as_slice()),
            FeatureVector::Sparse(x) => x.norm_sq(),
        }
    }

    /// Materialize into a dense vector of dimension `dim`.
    pub fn to_dense(&self, dim: usize) -> DenseVector {
        match self {
            FeatureVector::Dense(x) => {
                let mut v = x.clone();
                v.resize(dim);
                v
            }
            FeatureVector::Sparse(x) => x.to_dense(dim),
        }
    }

    /// Iterate over (index, value) pairs of the stored entries.
    ///
    /// Returns a concrete enum iterator — no per-call `Box<dyn Iterator>`
    /// allocation, which matters because tasks iterate entries once per tuple
    /// per epoch.
    pub fn iter_entries(&self) -> FeatureEntries<'_> {
        self.as_view().iter_entries()
    }

    /// Borrow this vector as a zero-copy [`FeatureVectorRef`] view.
    #[inline]
    pub fn as_view(&self) -> FeatureVectorRef<'_> {
        match self {
            FeatureVector::Dense(x) => FeatureVectorRef::Dense(x.as_slice()),
            FeatureVector::Sparse(x) => FeatureVectorRef::Sparse {
                indices: x.indices(),
                values: x.values(),
            },
        }
    }
}

/// A borrowed feature vector: the zero-copy view the per-tuple hot path runs
/// on.
///
/// Storage hands out `FeatureVectorRef`s straight from column payloads
/// ([`Dense`](FeatureVectorRef::Dense) borrows the dense slice,
/// [`Sparse`](FeatureVectorRef::Sparse) borrows the parallel index/value
/// slices), so a gradient step performs **no** heap allocation: the paper's
/// `Dot_Product` / `Scale_And_Add` kernels read directly from the stored
/// tuple. The owned [`FeatureVector`] remains for call sites that genuinely
/// need to keep a vector beyond the tuple's lifetime.
///
/// The view is `Copy` (two words), so passing it by value is free, and both
/// layouts run through one kernel API:
///
/// ```
/// use bismarck_linalg::FeatureVectorRef;
///
/// let dense = FeatureVectorRef::Dense(&[2.0, 0.0, -1.0]);
/// let sparse = FeatureVectorRef::Sparse {
///     indices: &[0, 2],
///     values: &[2.0, -1.0],
/// };
/// let mut w = vec![1.0, 5.0, 3.0];
///
/// assert_eq!(dense.dot(&w), sparse.dot(&w)); // same logical vector
/// sparse.scale_and_add_into(&mut w, 2.0); // w += 2 * x
/// assert_eq!(w, vec![5.0, 5.0, 1.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureVectorRef<'a> {
    /// Dense feature values, index `i` holds feature `i`.
    Dense(&'a [f64]),
    /// Sparse feature values as parallel sorted index/value slices.
    Sparse {
        /// Strictly increasing stored indices.
        indices: &'a [u32],
        /// Values parallel to `indices`.
        values: &'a [f64],
    },
}

impl<'a> FeatureVectorRef<'a> {
    /// Dot product with a dense model slice (`Dot_Product` in Figure 4).
    /// Sparse indices beyond `w.len()` contribute zero.
    #[inline]
    pub fn dot(&self, w: &[f64]) -> f64 {
        match *self {
            FeatureVectorRef::Dense(x) => ops::dot(x, w),
            FeatureVectorRef::Sparse { indices, values } => {
                let mut acc = 0.0;
                for (&i, &v) in indices.iter().zip(values) {
                    if let Some(&wi) = w.get(i as usize) {
                        acc += wi * v;
                    }
                }
                acc
            }
        }
    }

    /// `w += c * x`, the `Scale_And_Add` kernel from Figure 4. Sparse indices
    /// beyond `w.len()` are ignored.
    #[inline]
    pub fn scale_and_add_into(&self, w: &mut [f64], c: f64) {
        match *self {
            FeatureVectorRef::Dense(x) => ops::scale_and_add(w, x, c),
            FeatureVectorRef::Sparse { indices, values } => {
                for (&i, &v) in indices.iter().zip(values) {
                    if let Some(slot) = w.get_mut(i as usize) {
                        *slot += c * v;
                    }
                }
            }
        }
    }

    /// Number of logical dimensions (highest index + 1 for sparse views).
    pub fn dimension(&self) -> usize {
        match *self {
            FeatureVectorRef::Dense(x) => x.len(),
            FeatureVectorRef::Sparse { indices, .. } => {
                indices.last().map(|&i| i as usize + 1).unwrap_or(0)
            }
        }
    }

    /// Number of stored (possibly zero) entries.
    pub fn nnz(&self) -> usize {
        match *self {
            FeatureVectorRef::Dense(x) => x.len(),
            FeatureVectorRef::Sparse { indices, .. } => indices.len(),
        }
    }

    /// Value at logical index `i` (0.0 if not stored).
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        match *self {
            FeatureVectorRef::Dense(x) => x.get(i).copied().unwrap_or(0.0),
            FeatureVectorRef::Sparse { indices, values } => {
                // Indices past u32::MAX cannot be stored, so they are 0.0 by
                // definition; a plain `as u32` cast would wrap and alias a
                // stored entry.
                let Ok(i) = u32::try_from(i) else { return 0.0 };
                match indices.binary_search(&i) {
                    Ok(pos) => values[pos],
                    Err(_) => 0.0,
                }
            }
        }
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(&self) -> f64 {
        match *self {
            FeatureVectorRef::Dense(x) => ops::dot(x, x),
            FeatureVectorRef::Sparse { values, .. } => values.iter().map(|v| v * v).sum(),
        }
    }

    /// Materialize into a dense vector of dimension at least `dim`.
    pub fn to_dense(&self, dim: usize) -> DenseVector {
        let n = dim.max(self.dimension());
        let mut out = DenseVector::zeros(n);
        let slice = out.as_mut_slice();
        match *self {
            FeatureVectorRef::Dense(x) => slice[..x.len()].copy_from_slice(x),
            FeatureVectorRef::Sparse { indices, values } => {
                for (&i, &v) in indices.iter().zip(values) {
                    slice[i as usize] = v;
                }
            }
        }
        out
    }

    /// Clone into an owned [`FeatureVector`]. This is the *only* place the
    /// view API allocates; training hot paths never call it.
    pub fn to_owned(&self) -> FeatureVector {
        match *self {
            FeatureVectorRef::Dense(x) => FeatureVector::Dense(DenseVector::from(x)),
            FeatureVectorRef::Sparse { indices, values } => {
                FeatureVector::Sparse(SparseVector::from_sorted(indices.to_vec(), values.to_vec()))
            }
        }
    }

    /// Iterate over (index, value) pairs of the stored entries without
    /// allocating.
    #[inline]
    pub fn iter_entries(&self) -> FeatureEntries<'a> {
        match *self {
            FeatureVectorRef::Dense(x) => FeatureEntries::Dense(x.iter().enumerate()),
            FeatureVectorRef::Sparse { indices, values } => {
                FeatureEntries::Sparse(indices.iter().zip(values.iter()))
            }
        }
    }
}

impl<'a> From<&'a FeatureVector> for FeatureVectorRef<'a> {
    fn from(v: &'a FeatureVector) -> Self {
        v.as_view()
    }
}

impl<'a> From<&'a DenseVector> for FeatureVectorRef<'a> {
    fn from(v: &'a DenseVector) -> Self {
        FeatureVectorRef::Dense(v.as_slice())
    }
}

impl<'a> From<&'a SparseVector> for FeatureVectorRef<'a> {
    fn from(v: &'a SparseVector) -> Self {
        FeatureVectorRef::Sparse {
            indices: v.indices(),
            values: v.values(),
        }
    }
}

/// Concrete (index, value) iterator over a feature vector's stored entries.
///
/// An enum rather than a `Box<dyn Iterator>` so iterating a tuple's features
/// stays allocation-free on the training path.
#[derive(Debug, Clone)]
pub enum FeatureEntries<'a> {
    /// Entries of a dense slice: every position, in order.
    Dense(std::iter::Enumerate<std::slice::Iter<'a, f64>>),
    /// Stored entries of a sparse vector, in increasing index order.
    Sparse(std::iter::Zip<std::slice::Iter<'a, u32>, std::slice::Iter<'a, f64>>),
}

impl Iterator for FeatureEntries<'_> {
    type Item = (usize, f64);

    #[inline]
    fn next(&mut self) -> Option<(usize, f64)> {
        match self {
            FeatureEntries::Dense(it) => it.next().map(|(i, &v)| (i, v)),
            FeatureEntries::Sparse(it) => it.next().map(|(&i, &v)| (i as usize, v)),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            FeatureEntries::Dense(it) => it.size_hint(),
            FeatureEntries::Sparse(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for FeatureEntries<'_> {}

impl From<DenseVector> for FeatureVector {
    fn from(v: DenseVector) -> Self {
        FeatureVector::Dense(v)
    }
}

impl From<SparseVector> for FeatureVector {
    fn from(v: SparseVector) -> Self {
        FeatureVector::Sparse(v)
    }
}

impl From<Vec<f64>> for FeatureVector {
    fn from(v: Vec<f64>) -> Self {
        FeatureVector::Dense(DenseVector::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_vector_dispatches_dot() {
        let dense = FeatureVector::from(vec![1.0, 2.0, 3.0]);
        let sparse = FeatureVector::Sparse(SparseVector::from_pairs(vec![(0, 1.0), (2, 3.0)]));
        let w = [2.0, 0.5, 1.0];
        assert!((dense.dot(&w) - 6.0).abs() < 1e-12);
        assert!((sparse.dot(&w) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn feature_vector_scale_and_add() {
        let sparse = FeatureVector::Sparse(SparseVector::from_pairs(vec![(1, 2.0)]));
        let mut w = vec![0.0; 3];
        sparse.scale_and_add_into(&mut w, 0.5);
        assert_eq!(w, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn feature_vector_dimension_and_nnz() {
        let dense = FeatureVector::from(vec![1.0, 0.0, 3.0]);
        assert_eq!(dense.dimension(), 3);
        assert_eq!(dense.nnz(), 3);
        let sparse = FeatureVector::Sparse(SparseVector::from_pairs(vec![(4, 1.0)]));
        assert_eq!(sparse.dimension(), 5);
        assert_eq!(sparse.nnz(), 1);
    }

    #[test]
    fn feature_vector_to_dense_pads() {
        let sparse = FeatureVector::Sparse(SparseVector::from_pairs(vec![(1, 2.0)]));
        let dense = sparse.to_dense(4);
        assert_eq!(dense.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn iter_entries_matches_norm() {
        let fv = FeatureVector::from(vec![3.0, 4.0]);
        let sum: f64 = fv.iter_entries().map(|(_, v)| v * v).sum();
        assert!((sum - fv.norm_sq()).abs() < 1e-12);
    }

    #[test]
    fn view_agrees_with_owned_vector() {
        let owned = [
            FeatureVector::from(vec![1.0, -2.0, 0.0, 3.5, 0.25]),
            FeatureVector::Sparse(SparseVector::from_pairs(vec![(1, 2.0), (7, -1.0)])),
        ];
        let w = [0.5, -1.0, 2.0, 0.0, 1.0];
        for fv in &owned {
            let view = fv.as_view();
            assert!((view.dot(&w) - fv.dot(&w)).abs() < 1e-12);
            assert_eq!(view.dimension(), fv.dimension());
            assert_eq!(view.nnz(), fv.nnz());
            assert!((view.norm_sq() - fv.norm_sq()).abs() < 1e-12);
            assert_eq!(view.to_dense(9), fv.to_dense(9));
            assert_eq!(&view.to_owned(), fv);
            let via_view: Vec<(usize, f64)> = view.iter_entries().collect();
            let via_owned: Vec<(usize, f64)> = fv.iter_entries().collect();
            assert_eq!(via_view, via_owned);
            assert_eq!(view.iter_entries().len(), fv.nnz());
            let mut a = w.to_vec();
            let mut b = w.to_vec();
            view.scale_and_add_into(&mut a, 0.3);
            fv.scale_and_add_into(&mut b, 0.3);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn view_get_and_ragged_bounds() {
        let sparse = SparseVector::from_pairs(vec![(2, 5.0), (10, 1.0)]);
        let view = FeatureVectorRef::from(&sparse);
        assert_eq!(view.get(2), 5.0);
        assert_eq!(view.get(3), 0.0);
        assert_eq!(view.get(100), 0.0);
        // An index past u32::MAX must not wrap onto a stored entry.
        assert_eq!(view.get((1usize << 32) + 2), 0.0);
        assert_eq!(sparse.get((1usize << 32) + 2), 0.0);
        // Updates and dots against a shorter model ignore index 10.
        let mut w = vec![0.0; 4];
        view.scale_and_add_into(&mut w, 2.0);
        assert_eq!(w, vec![0.0, 0.0, 10.0, 0.0]);
        assert!((view.dot(&[0.0, 0.0, 3.0]) - 15.0).abs() < 1e-12);

        let dense = DenseVector::from(vec![1.0, 2.0]);
        let dview = FeatureVectorRef::from(&dense);
        assert_eq!(dview.get(1), 2.0);
        assert_eq!(dview.get(5), 0.0);
        assert!((dview.dot(&[10.0]) - 10.0).abs() < 1e-12);
    }
}
