//! Vector and matrix primitives used throughout the Bismarck reproduction.
//!
//! The paper's transition functions are written in terms of a handful of
//! kernels — `Dot_Product`, `Scale_And_Add`, `Sigmoid` (Figure 4) — applied to
//! either dense feature vectors (e.g. the Forest dataset) or sparse ones
//! (e.g. DBLife, CoNLL). This crate provides those kernels together with the
//! small amount of matrix machinery needed for low-rank matrix factorization
//! and linear-chain CRFs.
//!
//! Everything here is deliberately dependency-free and allocation-conscious:
//! the transition function runs once per tuple per epoch, so it is the hot
//! loop of the whole system.

pub mod dense;
pub mod factor;
pub mod ops;
pub mod projection;
pub mod sparse;

pub use crate::dense::DenseVector;
pub use crate::factor::FactorMatrix;
pub use crate::ops::{log1p_exp, log_sum_exp, sigmoid};
pub use crate::projection::{project_l1_ball, project_l2_ball, project_simplex};
pub use crate::sparse::SparseVector;

/// A feature vector that is either dense or sparse.
///
/// Tasks such as logistic regression and SVM are written once against this
/// enum so the same transition code handles both the dense Forest-like and
/// sparse DBLife-like datasets, mirroring how the paper's C implementation
/// dispatches on the input column type.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureVector {
    /// Dense feature values, index `i` holds feature `i`.
    Dense(DenseVector),
    /// Sparse feature values as sorted (index, value) pairs.
    Sparse(SparseVector),
}

impl FeatureVector {
    /// Dot product with a dense model vector.
    #[inline]
    pub fn dot(&self, w: &[f64]) -> f64 {
        match self {
            FeatureVector::Dense(x) => ops::dot(x.as_slice(), w),
            FeatureVector::Sparse(x) => x.dot_dense(w),
        }
    }

    /// `w += c * x`, the `Scale_And_Add` kernel from Figure 4.
    #[inline]
    pub fn scale_and_add_into(&self, w: &mut [f64], c: f64) {
        match self {
            FeatureVector::Dense(x) => ops::scale_and_add(w, x.as_slice(), c),
            FeatureVector::Sparse(x) => x.scale_and_add_into(w, c),
        }
    }

    /// Number of logical dimensions (highest index + 1 for sparse vectors).
    pub fn dimension(&self) -> usize {
        match self {
            FeatureVector::Dense(x) => x.len(),
            FeatureVector::Sparse(x) => x.dimension(),
        }
    }

    /// Number of stored (possibly zero) entries.
    pub fn nnz(&self) -> usize {
        match self {
            FeatureVector::Dense(x) => x.len(),
            FeatureVector::Sparse(x) => x.nnz(),
        }
    }

    /// Squared Euclidean norm of the feature vector.
    pub fn norm_sq(&self) -> f64 {
        match self {
            FeatureVector::Dense(x) => ops::dot(x.as_slice(), x.as_slice()),
            FeatureVector::Sparse(x) => x.norm_sq(),
        }
    }

    /// Materialize into a dense vector of dimension `dim`.
    pub fn to_dense(&self, dim: usize) -> DenseVector {
        match self {
            FeatureVector::Dense(x) => {
                let mut v = x.clone();
                v.resize(dim);
                v
            }
            FeatureVector::Sparse(x) => x.to_dense(dim),
        }
    }

    /// Iterate over (index, value) pairs of the stored entries.
    pub fn iter_entries(&self) -> Box<dyn Iterator<Item = (usize, f64)> + '_> {
        match self {
            FeatureVector::Dense(x) => Box::new(x.as_slice().iter().copied().enumerate()),
            FeatureVector::Sparse(x) => Box::new(x.iter()),
        }
    }
}

impl From<DenseVector> for FeatureVector {
    fn from(v: DenseVector) -> Self {
        FeatureVector::Dense(v)
    }
}

impl From<SparseVector> for FeatureVector {
    fn from(v: SparseVector) -> Self {
        FeatureVector::Sparse(v)
    }
}

impl From<Vec<f64>> for FeatureVector {
    fn from(v: Vec<f64>) -> Self {
        FeatureVector::Dense(DenseVector::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_vector_dispatches_dot() {
        let dense = FeatureVector::from(vec![1.0, 2.0, 3.0]);
        let sparse = FeatureVector::Sparse(SparseVector::from_pairs(vec![(0, 1.0), (2, 3.0)]));
        let w = [2.0, 0.5, 1.0];
        assert!((dense.dot(&w) - 6.0).abs() < 1e-12);
        assert!((sparse.dot(&w) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn feature_vector_scale_and_add() {
        let sparse = FeatureVector::Sparse(SparseVector::from_pairs(vec![(1, 2.0)]));
        let mut w = vec![0.0; 3];
        sparse.scale_and_add_into(&mut w, 0.5);
        assert_eq!(w, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn feature_vector_dimension_and_nnz() {
        let dense = FeatureVector::from(vec![1.0, 0.0, 3.0]);
        assert_eq!(dense.dimension(), 3);
        assert_eq!(dense.nnz(), 3);
        let sparse = FeatureVector::Sparse(SparseVector::from_pairs(vec![(4, 1.0)]));
        assert_eq!(sparse.dimension(), 5);
        assert_eq!(sparse.nnz(), 1);
    }

    #[test]
    fn feature_vector_to_dense_pads() {
        let sparse = FeatureVector::Sparse(SparseVector::from_pairs(vec![(1, 2.0)]));
        let dense = sparse.to_dense(4);
        assert_eq!(dense.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn iter_entries_matches_norm() {
        let fv = FeatureVector::from(vec![3.0, 4.0]);
        let sum: f64 = fv.iter_entries().map(|(_, v)| v * v).sum();
        assert!((sum - fv.norm_sq()).abs() < 1e-12);
    }
}
