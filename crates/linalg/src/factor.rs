//! Row-major factor matrices for low-rank matrix factorization (LMF).
//!
//! The recommendation task of Figure 1(B) factorizes a partially observed
//! matrix `M ≈ Lᵀ R` where `L` has one rank-`r` column per row of `M` and `R`
//! one per column. We store each factor as a row-major matrix whose row `i`
//! is the rank-`r` latent vector of entity `i`.

use crate::ops;

/// A dense row-major matrix of shape `rows x rank`, used for the `L` and `R`
/// factors of low-rank matrix factorization.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorMatrix {
    rows: usize,
    rank: usize,
    data: Vec<f64>,
}

impl FactorMatrix {
    /// A `rows x rank` matrix of zeros.
    pub fn zeros(rows: usize, rank: usize) -> Self {
        FactorMatrix {
            rows,
            rank,
            data: vec![0.0; rows * rank],
        }
    }

    /// A `rows x rank` matrix with every entry set to `value`.
    pub fn filled(rows: usize, rank: usize, value: f64) -> Self {
        FactorMatrix {
            rows,
            rank,
            data: vec![value; rows * rank],
        }
    }

    /// Build from a closure mapping `(row, k)` to a value; used to seed
    /// factors with small pseudo-random values.
    pub fn from_fn(rows: usize, rank: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * rank);
        for r in 0..rows {
            for k in 0..rank {
                data.push(f(r, k));
            }
        }
        FactorMatrix { rows, rank, data }
    }

    /// Number of rows (entities).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Latent dimensionality.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Borrow row `i` as a slice of length `rank`.
    pub fn row(&self, i: usize) -> &[f64] {
        let start = i * self.rank;
        &self.data[start..start + self.rank]
    }

    /// Mutably borrow row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        let start = i * self.rank;
        &mut self.data[start..start + self.rank]
    }

    /// Flat view of the underlying data (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable view of the underlying data (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Predicted value for cell `(i, j)` given the other factor: the dot
    /// product `L_i . R_j`.
    pub fn predict(&self, other: &FactorMatrix, i: usize, j: usize) -> f64 {
        ops::dot(self.row(i), other.row(j))
    }

    /// Squared Frobenius norm, the `‖L,R‖_F²` regularizer of Figure 1(B).
    pub fn frobenius_sq(&self) -> f64 {
        ops::norm2_sq(&self.data)
    }

    /// Element-wise weighted average with another factor matrix of identical
    /// shape; used by the PureUDA merge step for LMF.
    pub fn average_with(&mut self, other: &FactorMatrix, self_weight: f64, other_weight: f64) {
        assert_eq!(self.rows, other.rows, "factor matrices must agree in rows");
        assert_eq!(self.rank, other.rank, "factor matrices must agree in rank");
        let total = self_weight + other_weight;
        if total <= 0.0 {
            return;
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = (*a * self_weight + *b * other_weight) / total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape() {
        let m = FactorMatrix::zeros(3, 2);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.rank(), 2);
        assert_eq!(m.as_slice().len(), 6);
    }

    #[test]
    fn from_fn_row_major_layout() {
        let m = FactorMatrix::from_fn(2, 3, |r, k| (r * 10 + k) as f64);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn predict_is_row_dot() {
        let l = FactorMatrix::from_fn(2, 2, |r, k| (r + k) as f64);
        let r = FactorMatrix::from_fn(3, 2, |row, k| (row * k) as f64 + 1.0);
        // l.row(1) = [1,2]; r.row(2) = [1,3]; dot = 7
        assert!((l.predict(&r, 1, 2) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn frobenius_sq() {
        let m = FactorMatrix::filled(2, 2, 2.0);
        assert!((m.frobenius_sq() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn row_mut_updates_only_that_row() {
        let mut m = FactorMatrix::zeros(2, 2);
        m.row_mut(1)[0] = 5.0;
        assert_eq!(m.row(0), &[0.0, 0.0]);
        assert_eq!(m.row(1), &[5.0, 0.0]);
    }

    #[test]
    fn average_with_midpoint() {
        let mut a = FactorMatrix::filled(1, 2, 0.0);
        let b = FactorMatrix::filled(1, 2, 4.0);
        a.average_with(&b, 1.0, 1.0);
        assert_eq!(a.row(0), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "rows")]
    fn average_with_mismatched_shapes_panics() {
        let mut a = FactorMatrix::zeros(1, 2);
        let b = FactorMatrix::zeros(2, 2);
        a.average_with(&b, 1.0, 1.0);
    }
}
