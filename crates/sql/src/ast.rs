//! Abstract syntax tree for the supported SQL dialect.
//!
//! The dialect covers what the paper's user-facing examples exercise
//! (Section 2.1): creating and populating training tables, training and
//! applying models via function calls (`SELECT SVMTrain(...)`), and the
//! ordinary relational queries an analyst would run around them (projections,
//! filters, aggregates, `ORDER BY RANDOM()` reshuffles, `LIMIT` samples).

use bismarck_storage::DataType;

/// One parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col TYPE, ...) [STORAGE = ROW | COLUMNAR]`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions in declaration order.
        columns: Vec<ColumnDef>,
        /// Physical layout for the new table.
        storage: TableStorage,
    },
    /// `CREATE TABLE name [STORAGE = ROW | COLUMNAR] AS SELECT ...` —
    /// materialize a query result as a new table. This is how the paper
    /// realizes shuffle-once inside PostgreSQL:
    /// `CREATE TABLE shuffled AS SELECT * FROM data ORDER BY RANDOM()`.
    CreateTableAs {
        /// New table name.
        name: String,
        /// The query whose result becomes the table.
        query: SelectStatement,
        /// Physical layout for the new table.
        storage: TableStorage,
    },
    /// `SHOW TABLES` — list the catalog's tables and their row counts.
    ShowTables,
    /// `DESCRIBE name` — list a table's columns and types.
    Describe {
        /// Table name.
        name: String,
    },
    /// `DROP TABLE name`
    DropTable {
        /// Table name.
        name: String,
    },
    /// `INSERT INTO name [(col, ...)] VALUES (expr, ...), (expr, ...), ...`
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list; `None` means schema order.
        columns: Option<Vec<String>>,
        /// One entry per `(...)` row of literal expressions.
        rows: Vec<Vec<Expr>>,
    },
    /// `SELECT ... [FROM ...] [WHERE ...] [GROUP BY ...] [ORDER BY ...] [LIMIT n]`
    Select(SelectStatement),
    /// `COPY name FROM 'path'` (append rows parsed from a delimited text
    /// file) or `COPY name TO 'path'` (export the table).
    Copy {
        /// Table name.
        table: String,
        /// Transfer direction.
        direction: CopyDirection,
        /// Filesystem path of the delimited text file.
        path: String,
    },
    /// `SHUFFLE TABLE name [SEED n]` — physically rewrite the table in a
    /// random order (the paper's shuffle-once materialized as DDL).
    Shuffle {
        /// Table name.
        table: String,
        /// Optional explicit seed; the session RNG is used otherwise.
        seed: Option<u64>,
    },
    /// `CLUSTER TABLE name BY column [ASC|DESC]` — physically rewrite the
    /// table sorted by a column, reproducing the "clustered for reasons
    /// unrelated to the analysis" layouts of Section 3.2.
    Cluster {
        /// Table name.
        table: String,
        /// Column to cluster by.
        column: String,
        /// Sort direction.
        ascending: bool,
    },
}

/// Physical layout requested by a `CREATE TABLE` statement's optional
/// `STORAGE = ...` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TableStorage {
    /// Row-store (the default): tuples stored contiguously, WAL-logged.
    #[default]
    Row,
    /// Columnar chunked storage: per-column chunks with validity bitmaps,
    /// scanned through the same `TupleScan` surface as the row-store.
    Columnar,
}

/// Direction of a `COPY` statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyDirection {
    /// `COPY ... FROM 'path'`: append rows read from the file.
    FromFile,
    /// `COPY ... TO 'path'`: write the table out to the file.
    ToFile,
}

/// A column definition inside `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
}

/// The body of a `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// Projected items.
    pub items: Vec<SelectItem>,
    /// Source table; `None` for table-less selects such as
    /// `SELECT SVMTrain(...)` or `SELECT 1 + 1`.
    pub from: Option<String>,
    /// Optional filter predicate.
    pub filter: Option<Expr>,
    /// Optional grouping columns.
    pub group_by: Vec<Expr>,
    /// Optional ordering keys.
    pub order_by: Vec<OrderKey>,
    /// Optional row-count cap.
    pub limit: Option<usize>,
}

/// One projected item of a `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — all columns of the source table.
    Wildcard,
    /// An expression with an optional `AS alias`.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Output column name override.
        alias: Option<String>,
    },
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// The sort expression; `RANDOM()` requests a shuffle.
    pub expr: Expr,
    /// Sort direction (ignored for `RANDOM()`).
    pub ascending: bool,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Literal),
    /// A reference to a column of the source table.
    Column(String),
    /// `*` as a function argument (only meaningful inside `COUNT(*)`).
    Wildcard,
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// A function call: scalar (`ABS(x)`), aggregate (`AVG(x)`), or an
    /// analytics front-end (`SVMTrain('m', 't', 'vec', 'label')`).
    Function {
        /// Function name as written (resolution is case-insensitive).
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `ARRAY[e1, e2, ...]` — a dense feature-vector literal.
    ArrayLiteral(Vec<Expr>),
    /// `{index: value, ...}` — a sparse feature-vector literal.
    SparseLiteral(Vec<(Expr, Expr)>),
}

/// A literal scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// SQL NULL.
    Null,
    /// Boolean literal (`TRUE` / `FALSE`).
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Double(f64),
    /// String literal.
    Text(String),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Numeric negation.
    Neg,
    /// Boolean NOT.
    Not,
}

/// Binary operators in increasing precedence groups: OR < AND < comparison <
/// additive < multiplicative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Logical OR.
    Or,
    /// Logical AND.
    And,
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl Expr {
    /// True if this expression contains an aggregate function call
    /// (`COUNT`, `SUM`, `AVG`, `MIN`, `MAX`) anywhere in its tree.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { name, args } => {
                is_aggregate_function(name) || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::ArrayLiteral(items) => items.iter().any(Expr::contains_aggregate),
            Expr::SparseLiteral(pairs) => pairs
                .iter()
                .any(|(i, v)| i.contains_aggregate() || v.contains_aggregate()),
            _ => false,
        }
    }

    /// A printable name for an unaliased projection of this expression.
    pub fn default_name(&self) -> String {
        match self {
            Expr::Column(name) => name.clone(),
            Expr::Function { name, .. } => name.clone(),
            Expr::Literal(_) => "?column?".to_string(),
            _ => "?column?".to_string(),
        }
    }
}

/// Whether a function name refers to one of the built-in SQL aggregates.
pub fn is_aggregate_function(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "COUNT" | "SUM" | "AVG" | "MIN" | "MAX"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection_descends_into_subexpressions() {
        let agg = Expr::Binary {
            left: Box::new(Expr::Function {
                name: "avg".into(),
                args: vec![Expr::Column("x".into())],
            }),
            op: BinaryOp::Add,
            right: Box::new(Expr::Literal(Literal::Int(1))),
        };
        assert!(agg.contains_aggregate());

        let scalar = Expr::Function {
            name: "ABS".into(),
            args: vec![Expr::Column("x".into())],
        };
        assert!(!scalar.contains_aggregate());
    }

    #[test]
    fn aggregate_names_are_case_insensitive() {
        assert!(is_aggregate_function("count"));
        assert!(is_aggregate_function("Sum"));
        assert!(!is_aggregate_function("SVMTrain"));
    }

    #[test]
    fn default_names_prefer_column_and_function_names() {
        assert_eq!(Expr::Column("label".into()).default_name(), "label");
        assert_eq!(
            Expr::Function {
                name: "SVMTrain".into(),
                args: vec![]
            }
            .default_name(),
            "SVMTrain"
        );
        assert_eq!(Expr::Literal(Literal::Int(3)).default_name(), "?column?");
    }
}
