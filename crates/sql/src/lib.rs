//! # bismarck-sql — the SQL face of the Bismarck reproduction
//!
//! Section 2.1 of the paper shows the end-user experience: analytics are
//! trained and applied with ordinary SQL, e.g.
//!
//! ```sql
//! SELECT SVMTrain('myModel', 'LabeledPapers', 'vec', 'label');
//! ```
//!
//! and the learned model "is then persisted as a user table `myModel`".
//! This crate provides that interface over the in-process storage substrate
//! (`bismarck-storage`) and the unified IGD architecture (`bismarck-core`):
//! a tokenizer, a recursive-descent parser, an expression evaluator and an
//! executor, plus the registry of analytics functions (`SVMTrain`,
//! `LogisticRegressionTrain`, `LMFTrain`, `CRFTrain` and the matching
//! `*Predict` functions).
//!
//! The dialect also covers the plumbing a user needs around those calls:
//! `CREATE TABLE` / `INSERT` for loading data (with `ARRAY[..]` dense-vector
//! and `{index: value, ..}` sparse-vector literals), `SELECT` with `WHERE`,
//! `GROUP BY`, aggregates, `ORDER BY` (including the paper's
//! `ORDER BY RANDOM()` shuffle) and `LIMIT`.
//!
//! ## Example
//!
//! ```
//! use bismarck_sql::SqlSession;
//!
//! let mut session = SqlSession::with_seed(7);
//! session.execute_script(
//!     "CREATE TABLE LabeledPapers (id INT, vec DENSE_VEC, label DOUBLE);
//!      INSERT INTO LabeledPapers VALUES
//!        (1, ARRAY[1.0, -0.5], 1.0),
//!        (2, ARRAY[-1.0, 0.5], -1.0),
//!        (3, ARRAY[0.8, -0.6], 1.0),
//!        (4, ARRAY[-0.9, 0.4], -1.0);",
//! ).unwrap();
//! let summary = session
//!     .execute("SELECT SVMTrain('myModel', 'LabeledPapers', 'vec', 'label', 0.2, 10)")
//!     .unwrap();
//! assert_eq!(summary.len(), 1);
//! // The model is an ordinary table in the same catalog.
//! let coefficients = session.execute("SELECT COUNT(*) FROM myModel").unwrap();
//! assert_eq!(coefficients.single_value().unwrap().as_int(), Some(2));
//! ```

#![warn(missing_docs)]
// Production paths must surface typed `SqlError`s, never panic: a malformed
// statement or a governance violation is ordinary control flow for a SQL
// engine. Tests are exempt (unwrap-on-known-good keeps them readable).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod analytics;
pub mod ast;
pub mod error;
pub mod eval;
pub mod exec;
pub mod parser;
pub mod result;
pub mod token;

pub use crate::error::{Result, SqlError};
pub use crate::exec::SqlSession;
pub use crate::parser::{parse_script, parse_statement};
pub use crate::result::QueryResult;
