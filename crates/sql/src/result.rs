//! Query results: a small column-named row set with a table-style `Display`.

use bismarck_storage::Value;

/// The outcome of executing one SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows, each with one value per column.
    pub rows: Vec<Vec<Value>>,
    /// A short human-readable status tag (`SELECT`, `INSERT 3`, `CREATE TABLE`, ...).
    pub status: String,
}

impl QueryResult {
    /// An empty result carrying only a status line (DDL/DML statements).
    pub fn status_only(status: impl Into<String>) -> Self {
        QueryResult {
            columns: Vec::new(),
            rows: Vec::new(),
            status: status.into(),
        }
    }

    /// A result with rows.
    pub fn with_rows(columns: Vec<String>, rows: Vec<Vec<Value>>) -> Self {
        let status = format!("SELECT {}", rows.len());
        QueryResult {
            columns,
            rows,
            status,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single value of a one-row, one-column result, if that is the shape.
    pub fn single_value(&self) -> Option<&Value> {
        match (self.rows.len(), self.columns.len()) {
            (1, 1) => self.rows[0].first(),
            _ => None,
        }
    }

    /// The index of a named output column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// All values of a named output column, in row order.
    pub fn column_values(&self, name: &str) -> Option<Vec<&Value>> {
        let idx = self.column_index(name)?;
        Some(self.rows.iter().map(|row| &row[idx]).collect())
    }
}

fn render_value(value: &Value) -> String {
    match value {
        Value::Null => "NULL".to_string(),
        Value::Int(v) => v.to_string(),
        Value::Double(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{v:.1}")
            } else {
                format!("{v:.6}")
            }
        }
        Value::Text(s) => s.clone(),
        Value::DenseVec(v) => {
            let entries: Vec<String> = v
                .as_slice()
                .iter()
                .take(4)
                .map(|x| format!("{x:.3}"))
                .collect();
            if v.len() > 4 {
                format!("[{}, ... ({} dims)]", entries.join(", "), v.len())
            } else {
                format!("[{}]", entries.join(", "))
            }
        }
        Value::SparseVec(v) => format!("{{sparse, {} nnz, dim {}}}", v.nnz(), v.dimension()),
        Value::Sequence(s) => format!("<sequence of {} positions>", s.len()),
    }
}

impl std::fmt::Display for QueryResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.columns.is_empty() {
            return writeln!(f, "{}", self.status);
        }
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = render_value(v);
                        if s.len() > widths[i] {
                            widths[i] = s.len();
                        }
                        s
                    })
                    .collect()
            })
            .collect();
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect();
        writeln!(f, "{}", header.join(" | "))?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "{}", rule.join("-+-"))?;
        for row in rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, s)| format!("{:width$}", s, width = widths[i]))
                .collect();
            writeln!(f, "{}", line.join(" | "))?;
        }
        writeln!(f, "({} rows)", self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bismarck_linalg::DenseVector;

    #[test]
    fn single_value_only_for_one_by_one_results() {
        let r = QueryResult::with_rows(vec!["n".into()], vec![vec![Value::Int(5)]]);
        assert_eq!(r.single_value(), Some(&Value::Int(5)));
        let r2 = QueryResult::with_rows(
            vec!["a".into(), "b".into()],
            vec![vec![Value::Int(1), Value::Int(2)]],
        );
        assert_eq!(r2.single_value(), None);
        assert_eq!(
            QueryResult::status_only("CREATE TABLE").single_value(),
            None
        );
    }

    #[test]
    fn column_lookup_by_name() {
        let r = QueryResult::with_rows(
            vec!["id".into(), "score".into()],
            vec![
                vec![Value::Int(1), Value::Double(0.5)],
                vec![Value::Int(2), Value::Double(0.75)],
            ],
        );
        assert_eq!(r.column_index("score"), Some(1));
        assert_eq!(r.column_values("score").unwrap().len(), 2);
        assert!(r.column_values("missing").is_none());
    }

    #[test]
    fn display_renders_aligned_table_and_row_count() {
        let r = QueryResult::with_rows(
            vec!["name".into(), "n".into()],
            vec![
                vec![Value::Text("forest".into()), Value::Int(581000)],
                vec![Value::Text("dblife".into()), Value::Int(16000)],
            ],
        );
        let text = r.to_string();
        assert!(text.contains("name"));
        assert!(text.contains("(2 rows)"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn display_handles_vectors_and_nulls() {
        let long = Value::DenseVec(DenseVector::from(vec![1.0; 10]));
        let r = QueryResult::with_rows(vec!["v".into(), "x".into()], vec![vec![long, Value::Null]]);
        let text = r.to_string();
        assert!(text.contains("(10 dims)"));
        assert!(text.contains("NULL"));
    }

    #[test]
    fn status_only_display_is_the_status_line() {
        let r = QueryResult::status_only("INSERT 3");
        assert_eq!(r.to_string().trim(), "INSERT 3");
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }
}
