//! Tokenizer for the SQL dialect understood by the front-end.
//!
//! The dialect is deliberately small — it covers the statements the paper's
//! user-facing examples need (Section 2.1): `CREATE TABLE`, `INSERT`,
//! `SELECT` with `WHERE` / `GROUP BY` / `ORDER BY [RANDOM()]` / `LIMIT`,
//! `DROP TABLE`, and scalar / aggregate / analytics function calls.
//! Keywords are case-insensitive; identifiers preserve their case, matching
//! how the storage catalog resolves names.

use crate::error::{Result, SqlError};

/// A single lexical token plus the byte offset where it starts (for error
/// messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character in the original statement text.
    pub offset: usize,
}

/// The kinds of token the parser consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A keyword such as `SELECT` (always stored upper-cased).
    Keyword(String),
    /// An identifier (table, column or function name), case preserved.
    Identifier(String),
    /// A single-quoted string literal with quotes stripped and `''` unescaped.
    StringLiteral(String),
    /// An integer literal.
    Integer(i64),
    /// A floating-point literal.
    Float(f64),
    /// `(`
    LeftParen,
    /// `)`
    RightParen,
    /// `[`
    LeftBracket,
    /// `]`
    RightBracket,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `:` (used in sparse-vector literals `{index: value, ...}`)
    Colon,
    /// `{`
    LeftBrace,
    /// `}`
    RightBrace,
}

impl TokenKind {
    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Keyword(k) => format!("keyword {k}"),
            TokenKind::Identifier(id) => format!("identifier {id}"),
            TokenKind::StringLiteral(_) => "string literal".to_string(),
            TokenKind::Integer(v) => format!("integer {v}"),
            TokenKind::Float(v) => format!("float {v}"),
            TokenKind::LeftParen => "'('".to_string(),
            TokenKind::RightParen => "')'".to_string(),
            TokenKind::LeftBracket => "'['".to_string(),
            TokenKind::RightBracket => "']'".to_string(),
            TokenKind::Comma => "','".to_string(),
            TokenKind::Semicolon => "';'".to_string(),
            TokenKind::Star => "'*'".to_string(),
            TokenKind::Plus => "'+'".to_string(),
            TokenKind::Minus => "'-'".to_string(),
            TokenKind::Slash => "'/'".to_string(),
            TokenKind::Eq => "'='".to_string(),
            TokenKind::NotEq => "'<>'".to_string(),
            TokenKind::Lt => "'<'".to_string(),
            TokenKind::LtEq => "'<='".to_string(),
            TokenKind::Gt => "'>'".to_string(),
            TokenKind::GtEq => "'>='".to_string(),
            TokenKind::Colon => "':'".to_string(),
            TokenKind::LeftBrace => "'{'".to_string(),
            TokenKind::RightBrace => "'}'".to_string(),
        }
    }
}

/// The reserved words of the dialect. Anything else that looks like a word is
/// an identifier (so function names such as `SVMTrain` stay identifiers and
/// resolve through the function registry).
const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "LIMIT", "AS", "CREATE", "TABLE", "DROP",
    "INSERT", "INTO", "VALUES", "AND", "OR", "NOT", "NULL", "ASC", "DESC", "TRUE", "FALSE",
    "ARRAY", "DISTINCT", "IS", "COPY", "TO", "SHUFFLE", "CLUSTER", "SEED", "SHOW", "TABLES",
    "DESCRIBE",
];

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenize a statement (or a script of `;`-separated statements).
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes: Vec<char> = input.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    // Track byte offsets for error messages; we advance by UTF-8 length.
    let mut offset = 0usize;

    while i < bytes.len() {
        let c = bytes[i];
        let start_offset = offset;
        match c {
            c if c.is_whitespace() => {
                i += 1;
                offset += c.len_utf8();
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == '-' => {
                // Line comment: skip to end of line.
                while i < bytes.len() && bytes[i] != '\n' {
                    offset += bytes[i].len_utf8();
                    i += 1;
                }
            }
            '\'' => {
                let (literal, consumed) = lex_string(&bytes[i..], start_offset)?;
                tokens.push(Token {
                    kind: TokenKind::StringLiteral(literal),
                    offset: start_offset,
                });
                for c in &bytes[i..i + consumed] {
                    offset += c.len_utf8();
                }
                i += consumed;
            }
            c if c.is_ascii_digit() => {
                let (kind, consumed) = lex_number(&bytes[i..], start_offset)?;
                tokens.push(Token {
                    kind,
                    offset: start_offset,
                });
                offset += consumed;
                i += consumed;
            }
            c if is_ident_start(c) => {
                let mut end = i;
                while end < bytes.len() && is_ident_continue(bytes[end]) {
                    end += 1;
                }
                let word: String = bytes[i..end].iter().collect();
                let upper = word.to_ascii_uppercase();
                let kind = if KEYWORDS.contains(&upper.as_str()) {
                    TokenKind::Keyword(upper)
                } else {
                    TokenKind::Identifier(word)
                };
                tokens.push(Token {
                    kind,
                    offset: start_offset,
                });
                offset += end - i;
                i = end;
            }
            _ => {
                let (kind, consumed) = lex_symbol(&bytes[i..], start_offset)?;
                tokens.push(Token {
                    kind,
                    offset: start_offset,
                });
                offset += consumed;
                i += consumed;
            }
        }
    }
    Ok(tokens)
}

fn lex_string(rest: &[char], offset: usize) -> Result<(String, usize)> {
    debug_assert_eq!(rest[0], '\'');
    let mut literal = String::new();
    let mut i = 1usize;
    while i < rest.len() {
        if rest[i] == '\'' {
            // '' is an escaped quote inside the literal.
            if i + 1 < rest.len() && rest[i + 1] == '\'' {
                literal.push('\'');
                i += 2;
                continue;
            }
            return Ok((literal, i + 1));
        }
        literal.push(rest[i]);
        i += 1;
    }
    Err(SqlError::Lex {
        position: offset,
        message: "unterminated string literal".into(),
    })
}

fn lex_number(rest: &[char], offset: usize) -> Result<(TokenKind, usize)> {
    let mut i = 0usize;
    while i < rest.len() && rest[i].is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i < rest.len() && rest[i] == '.' && i + 1 < rest.len() && rest[i + 1].is_ascii_digit() {
        is_float = true;
        i += 1;
        while i < rest.len() && rest[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < rest.len() && (rest[i] == 'e' || rest[i] == 'E') {
        let mut j = i + 1;
        if j < rest.len() && (rest[j] == '+' || rest[j] == '-') {
            j += 1;
        }
        if j < rest.len() && rest[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < rest.len() && rest[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text: String = rest[..i].iter().collect();
    if is_float {
        text.parse::<f64>()
            .map(|v| (TokenKind::Float(v), i))
            .map_err(|e| SqlError::Lex {
                position: offset,
                message: format!("bad float: {e}"),
            })
    } else {
        text.parse::<i64>()
            .map(|v| (TokenKind::Integer(v), i))
            .map_err(|e| SqlError::Lex {
                position: offset,
                message: format!("bad integer: {e}"),
            })
    }
}

fn lex_symbol(rest: &[char], offset: usize) -> Result<(TokenKind, usize)> {
    let two: String = rest.iter().take(2).collect();
    match two.as_str() {
        "<>" => return Ok((TokenKind::NotEq, 2)),
        "!=" => return Ok((TokenKind::NotEq, 2)),
        "<=" => return Ok((TokenKind::LtEq, 2)),
        ">=" => return Ok((TokenKind::GtEq, 2)),
        _ => {}
    }
    let kind = match rest[0] {
        '(' => TokenKind::LeftParen,
        ')' => TokenKind::RightParen,
        '[' => TokenKind::LeftBracket,
        ']' => TokenKind::RightBracket,
        '{' => TokenKind::LeftBrace,
        '}' => TokenKind::RightBrace,
        ',' => TokenKind::Comma,
        ';' => TokenKind::Semicolon,
        '*' => TokenKind::Star,
        '+' => TokenKind::Plus,
        '-' => TokenKind::Minus,
        '/' => TokenKind::Slash,
        '=' => TokenKind::Eq,
        '<' => TokenKind::Lt,
        '>' => TokenKind::Gt,
        ':' => TokenKind::Colon,
        other => {
            return Err(SqlError::Lex {
                position: offset,
                message: format!("unexpected character '{other}'"),
            })
        }
    };
    Ok((kind, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_are_case_insensitive_and_uppercased() {
        let toks = kinds("select From wHeRe");
        assert_eq!(
            toks,
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Keyword("FROM".into()),
                TokenKind::Keyword("WHERE".into()),
            ]
        );
    }

    #[test]
    fn identifiers_keep_case_and_are_not_keywords() {
        let toks = kinds("SVMTrain LabeledPapers vec_2");
        assert_eq!(
            toks,
            vec![
                TokenKind::Identifier("SVMTrain".into()),
                TokenKind::Identifier("LabeledPapers".into()),
                TokenKind::Identifier("vec_2".into()),
            ]
        );
    }

    #[test]
    fn string_literals_strip_quotes_and_unescape() {
        let toks = kinds("'myModel' 'it''s'");
        assert_eq!(
            toks,
            vec![
                TokenKind::StringLiteral("myModel".into()),
                TokenKind::StringLiteral("it's".into()),
            ]
        );
    }

    #[test]
    fn unterminated_string_is_a_lex_error() {
        let err = tokenize("SELECT 'oops").unwrap_err();
        assert!(matches!(err, SqlError::Lex { .. }));
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn numbers_split_into_integer_and_float() {
        let toks = kinds("42 3.5 1e-3 7.25e2 10");
        assert_eq!(
            toks,
            vec![
                TokenKind::Integer(42),
                TokenKind::Float(3.5),
                TokenKind::Float(1e-3),
                TokenKind::Float(7.25e2),
                TokenKind::Integer(10),
            ]
        );
    }

    #[test]
    fn symbols_and_two_char_operators() {
        let toks = kinds("( ) [ ] { } , ; * + - / = <> != < <= > >= :");
        assert_eq!(toks.len(), 20);
        assert_eq!(toks[13], TokenKind::NotEq);
        assert_eq!(toks[14], TokenKind::NotEq);
        assert_eq!(toks[16], TokenKind::LtEq);
        assert_eq!(toks[18], TokenKind::GtEq);
    }

    #[test]
    fn line_comments_are_skipped() {
        let toks = kinds("SELECT 1 -- the answer\n, 2");
        assert_eq!(
            toks,
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Integer(1),
                TokenKind::Comma,
                TokenKind::Integer(2),
            ]
        );
    }

    #[test]
    fn offsets_point_at_token_starts() {
        let toks = tokenize("SELECT  foo").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 8);
    }

    #[test]
    fn unexpected_character_reports_position() {
        let err = tokenize("SELECT @").unwrap_err();
        match err {
            SqlError::Lex { position, .. } => assert_eq!(position, 7),
            other => panic!("expected lex error, got {other:?}"),
        }
    }

    #[test]
    fn paper_training_query_tokenizes() {
        let toks = kinds("SELECT SVMTrain('myModel', 'LabeledPapers', 'vec', 'label');");
        assert_eq!(toks[0], TokenKind::Keyword("SELECT".into()));
        assert_eq!(toks[1], TokenKind::Identifier("SVMTrain".into()));
        assert_eq!(toks[2], TokenKind::LeftParen);
        assert_eq!(toks[3], TokenKind::StringLiteral("myModel".into()));
        assert_eq!(*toks.last().unwrap(), TokenKind::Semicolon);
    }
}
