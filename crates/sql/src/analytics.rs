//! The analytics function registry: the glue between `SELECT SVMTrain(...)`
//! style calls and the Bismarck front-end in `bismarck-core`.
//!
//! This is the user-facing surface Section 2.1 of the paper describes — the
//! same call shape as MADlib's SQL functions — implemented over the unified
//! IGD architecture instead of per-task code paths.

use bismarck_core::frontend::{
    self, crf_predict, crf_train, lmf_train, logistic_predict, logistic_predict_source,
    logistic_regression_loss, logistic_regression_loss_source, logistic_regression_train,
    logistic_regression_train_source, svm_loss, svm_loss_source, svm_predict, svm_predict_source,
    svm_train, svm_train_source, TrainSummary,
};
use bismarck_core::{StepSizeSchedule, TrainerConfig};
use bismarck_storage::{ColumnarTable, Database, Value};
use bismarck_uda::ConvergenceTest;

use crate::error::{Result, SqlError};
use crate::result::QueryResult;

/// True if `name` resolves to one of the analytics functions handled by
/// [`execute_analytics`]. Resolution is case-insensitive so the paper's
/// `SVMTrain` and a user's `svmtrain` both work.
pub fn is_analytics_function(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "SVMTRAIN"
            | "LRTRAIN"
            | "LOGISTICREGRESSIONTRAIN"
            | "LMFTRAIN"
            | "CRFTRAIN"
            | "SVMPREDICT"
            | "LRPREDICT"
            | "LOGISTICREGRESSIONPREDICT"
            | "LINEARPREDICT"
            | "CRFPREDICT"
            | "SVMLOSS"
            | "LRLOSS"
            | "LOGISTICREGRESSIONLOSS"
    )
}

fn text_arg(args: &[Value], index: usize, function: &str, what: &str) -> Result<String> {
    args.get(index)
        .and_then(|v| v.as_text().map(str::to_string))
        .ok_or_else(|| {
            SqlError::Analytics(format!(
                "{function}() argument {index} must be the {what} (text)"
            ))
        })
}

fn int_arg(args: &[Value], index: usize, function: &str, what: &str) -> Result<usize> {
    args.get(index)
        .and_then(Value::as_int)
        .filter(|&v| v >= 0)
        .map(|v| v as usize)
        .ok_or_else(|| {
            SqlError::Analytics(format!(
                "{function}() argument {index} must be the {what} (non-negative integer)"
            ))
        })
}

/// Apply optional trailing `(step_size, epochs)` overrides to the session's
/// default trainer configuration. Either may be omitted.
fn config_with_overrides(
    base: TrainerConfig,
    args: &[Value],
    first_optional: usize,
    function: &str,
) -> Result<TrainerConfig> {
    let mut config = base;
    if let Some(step) = args.get(first_optional) {
        let step = step.as_double().filter(|s| *s > 0.0).ok_or_else(|| {
            SqlError::Analytics(format!(
                "{function}() optional step-size argument must be a positive number"
            ))
        })?;
        config = config.with_step_size(StepSizeSchedule::Constant(step));
    }
    if let Some(epochs) = args.get(first_optional + 1) {
        let epochs = epochs.as_int().filter(|e| *e > 0).ok_or_else(|| {
            SqlError::Analytics(format!(
                "{function}() optional epoch-count argument must be a positive integer"
            ))
        })?;
        config = config.with_convergence(ConvergenceTest::FixedEpochs(epochs as usize));
    }
    if args.len() > first_optional + 2 {
        return Err(SqlError::Analytics(format!(
            "{function}() takes at most {} arguments, got {}",
            first_optional + 2,
            args.len()
        )));
    }
    Ok(config)
}

fn summary_result(summary: TrainSummary) -> QueryResult {
    QueryResult::with_rows(
        vec![
            "model".into(),
            "task".into(),
            "dimension".into(),
            "epochs".into(),
            "final_loss".into(),
            "converged".into(),
        ],
        vec![vec![
            Value::Text(summary.model_table),
            Value::Text(summary.task.to_string()),
            Value::Int(summary.dimension as i64),
            Value::Int(summary.epochs as i64),
            Value::Double(summary.final_loss),
            Value::Int(i64::from(summary.converged)),
        ]],
    )
}

fn prediction_result(column: &str, scores: Vec<f64>) -> QueryResult {
    QueryResult::with_rows(
        vec!["row".into(), column.into()],
        scores
            .into_iter()
            .enumerate()
            .map(|(i, s)| vec![Value::Int(i as i64), Value::Double(s)])
            .collect(),
    )
}

/// Execute one analytics function call with already-evaluated arguments.
///
/// Training functions persist the model back into `db` and return a one-row
/// summary; prediction functions return one row per input tuple.
pub fn execute_analytics(
    db: &mut Database,
    base_config: TrainerConfig,
    name: &str,
    args: &[Value],
) -> Result<QueryResult> {
    let upper = name.to_ascii_uppercase();
    match upper.as_str() {
        "SVMTRAIN" | "LRTRAIN" | "LOGISTICREGRESSIONTRAIN" => {
            let model = text_arg(args, 0, name, "model name")?;
            let table = text_arg(args, 1, name, "training table")?;
            let features = text_arg(args, 2, name, "feature column")?;
            let label = text_arg(args, 3, name, "label column")?;
            let config = config_with_overrides(base_config, args, 4, name)?;
            let summary = if upper == "SVMTRAIN" {
                svm_train(db, &model, &table, &features, &label, config)?
            } else {
                logistic_regression_train(db, &model, &table, &features, &label, config)?
            };
            Ok(summary_result(summary))
        }
        "LMFTRAIN" => {
            let model = text_arg(args, 0, name, "model name")?;
            let table = text_arg(args, 1, name, "ratings table")?;
            let row_col = text_arg(args, 2, name, "row-id column")?;
            let col_col = text_arg(args, 3, name, "column-id column")?;
            let rating_col = text_arg(args, 4, name, "rating column")?;
            let rows = int_arg(args, 5, name, "number of rows")?;
            let cols = int_arg(args, 6, name, "number of columns")?;
            let rank = int_arg(args, 7, name, "factorization rank")?;
            let config = config_with_overrides(base_config, args, 8, name)?;
            let summary = lmf_train(
                db,
                &model,
                &table,
                &row_col,
                &col_col,
                &rating_col,
                rows,
                cols,
                rank,
                config,
            )?;
            Ok(summary_result(summary))
        }
        "CRFTRAIN" => {
            let model = text_arg(args, 0, name, "model name")?;
            let table = text_arg(args, 1, name, "training table")?;
            let sequence = text_arg(args, 2, name, "sequence column")?;
            let config = config_with_overrides(base_config, args, 3, name)?;
            let summary = crf_train(db, &model, &table, &sequence, config)?;
            Ok(summary_result(summary))
        }
        "SVMPREDICT" | "LRPREDICT" | "LOGISTICREGRESSIONPREDICT" | "LINEARPREDICT" => {
            let model = text_arg(args, 0, name, "model name")?;
            let table = text_arg(args, 1, name, "data table")?;
            let features = text_arg(args, 2, name, "feature column")?;
            if args.len() > 3 {
                return Err(SqlError::Analytics(format!(
                    "{name}() takes 3 arguments, got {}",
                    args.len()
                )));
            }
            let (column, scores) = match upper.as_str() {
                "SVMPREDICT" => ("prediction", svm_predict(db, &model, &table, &features)?),
                "LINEARPREDICT" => (
                    "score",
                    frontend::linear_predict(db, &model, &table, &features)?,
                ),
                _ => (
                    "probability",
                    logistic_predict(db, &model, &table, &features)?,
                ),
            };
            Ok(prediction_result(column, scores))
        }
        "SVMLOSS" | "LRLOSS" | "LOGISTICREGRESSIONLOSS" => {
            let model = text_arg(args, 0, name, "model name")?;
            let table = text_arg(args, 1, name, "data table")?;
            let features = text_arg(args, 2, name, "feature column")?;
            let label = text_arg(args, 3, name, "label column")?;
            if args.len() > 4 {
                return Err(SqlError::Analytics(format!(
                    "{name}() takes 4 arguments, got {}",
                    args.len()
                )));
            }
            let loss = if upper == "SVMLOSS" {
                svm_loss(db, &model, &table, &features, &label)?
            } else {
                logistic_regression_loss(db, &model, &table, &features, &label)?
            };
            Ok(QueryResult::with_rows(
                vec!["loss".into()],
                vec![vec![Value::Double(loss)]],
            ))
        }
        "CRFPREDICT" => {
            let model = text_arg(args, 0, name, "model name")?;
            let table = text_arg(args, 1, name, "data table")?;
            let sequence = text_arg(args, 2, name, "sequence column")?;
            if args.len() > 3 {
                return Err(SqlError::Analytics(format!(
                    "{name}() takes 3 arguments, got {}",
                    args.len()
                )));
            }
            let labelings = crf_predict(db, &model, &table, &sequence)?;
            let rows = labelings
                .into_iter()
                .enumerate()
                .map(|(i, labels)| {
                    let rendered = labels
                        .iter()
                        .map(usize::to_string)
                        .collect::<Vec<_>>()
                        .join(" ");
                    vec![Value::Int(i as i64), Value::Text(rendered)]
                })
                .collect();
            Ok(QueryResult::with_rows(
                vec!["row".into(), "labels".into()],
                rows,
            ))
        }
        other => Err(SqlError::Analytics(format!(
            "unknown analytics function {other}()"
        ))),
    }
}

/// [`execute_analytics`] over a columnar table instead of a row-store table.
///
/// The linear-model functions (SVM / logistic-regression train, loss and
/// predict) stream the columnar chunks through the same generic trainers the
/// row-store uses; trained models are still persisted into `db` as ordinary
/// model tables. The sequence / factorization tasks (`CRFTrain`,
/// `CRFPredict`, `LMFTrain`) walk row-store-specific shape-inference paths
/// and are rejected with a clear error rather than silently misbehaving.
pub fn execute_analytics_columnar(
    db: &mut Database,
    source: &ColumnarTable,
    base_config: TrainerConfig,
    name: &str,
    args: &[Value],
) -> Result<QueryResult> {
    let upper = name.to_ascii_uppercase();
    let schema = source.schema().clone();
    let source_name = source.name().to_string();
    match upper.as_str() {
        "SVMTRAIN" | "LRTRAIN" | "LOGISTICREGRESSIONTRAIN" => {
            let model = text_arg(args, 0, name, "model name")?;
            let features = text_arg(args, 2, name, "feature column")?;
            let label = text_arg(args, 3, name, "label column")?;
            let config = config_with_overrides(base_config, args, 4, name)?;
            let summary = if upper == "SVMTRAIN" {
                svm_train_source(
                    db,
                    &model,
                    source,
                    &schema,
                    &source_name,
                    &features,
                    &label,
                    config,
                )?
            } else {
                logistic_regression_train_source(
                    db,
                    &model,
                    source,
                    &schema,
                    &source_name,
                    &features,
                    &label,
                    config,
                )?
            };
            Ok(summary_result(summary))
        }
        "SVMPREDICT" | "LRPREDICT" | "LOGISTICREGRESSIONPREDICT" | "LINEARPREDICT" => {
            let model = text_arg(args, 0, name, "model name")?;
            let features = text_arg(args, 2, name, "feature column")?;
            if args.len() > 3 {
                return Err(SqlError::Analytics(format!(
                    "{name}() takes 3 arguments, got {}",
                    args.len()
                )));
            }
            let (column, scores) = match upper.as_str() {
                "SVMPREDICT" => (
                    "prediction",
                    svm_predict_source(db, &model, source, &schema, &features)?,
                ),
                "LINEARPREDICT" => (
                    "score",
                    frontend::linear_predict_source(db, &model, source, &schema, &features)?,
                ),
                _ => (
                    "probability",
                    logistic_predict_source(db, &model, source, &schema, &features)?,
                ),
            };
            Ok(prediction_result(column, scores))
        }
        "SVMLOSS" | "LRLOSS" | "LOGISTICREGRESSIONLOSS" => {
            let model = text_arg(args, 0, name, "model name")?;
            let features = text_arg(args, 2, name, "feature column")?;
            let label = text_arg(args, 3, name, "label column")?;
            if args.len() > 4 {
                return Err(SqlError::Analytics(format!(
                    "{name}() takes 4 arguments, got {}",
                    args.len()
                )));
            }
            let loss = if upper == "SVMLOSS" {
                svm_loss_source(db, &model, source, &schema, &source_name, &features, &label)?
            } else {
                logistic_regression_loss_source(
                    db,
                    &model,
                    source,
                    &schema,
                    &source_name,
                    &features,
                    &label,
                )?
            };
            Ok(QueryResult::with_rows(
                vec!["loss".into()],
                vec![vec![Value::Double(loss)]],
            ))
        }
        "LMFTRAIN" | "CRFTRAIN" | "CRFPREDICT" => Err(SqlError::Analytics(format!(
            "{name}() is not supported over columnar table '{source_name}'; \
             use a row-store table"
        ))),
        other => Err(SqlError::Analytics(format!(
            "unknown analytics function {other}()"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bismarck_storage::{Column, DataType, Schema, Table};

    fn classification_db(n: usize) -> Database {
        let mut db = Database::new();
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("vec", DataType::DenseVec),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        let mut table = Table::new("LabeledPapers", schema);
        for i in 0..n {
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            table
                .insert(vec![
                    Value::Int(i as i64),
                    Value::from(vec![y * 2.0, -y]),
                    Value::Double(y),
                ])
                .unwrap();
        }
        db.register_table(table).unwrap();
        db
    }

    fn fast_config() -> TrainerConfig {
        TrainerConfig::default().with_convergence(ConvergenceTest::FixedEpochs(5))
    }

    #[test]
    fn analytics_function_names_are_case_insensitive() {
        assert!(is_analytics_function("SVMTrain"));
        assert!(is_analytics_function("svmtrain"));
        assert!(is_analytics_function("CRFPredict"));
        assert!(!is_analytics_function("COUNT"));
        assert!(!is_analytics_function("Frobnicate"));
    }

    #[test]
    fn svm_train_returns_one_row_summary_and_persists_model() {
        let mut db = classification_db(100);
        let args = vec![
            Value::Text("myModel".into()),
            Value::Text("LabeledPapers".into()),
            Value::Text("vec".into()),
            Value::Text("label".into()),
        ];
        let result = execute_analytics(&mut db, fast_config(), "SVMTrain", &args).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.columns[0], "model");
        assert!(db.contains("myModel"));
        let loss_idx = result.column_index("final_loss").unwrap();
        assert!(result.rows[0][loss_idx].as_double().unwrap().is_finite());
    }

    #[test]
    fn optional_step_and_epoch_overrides_are_honoured() {
        let mut db = classification_db(60);
        let args = vec![
            Value::Text("m".into()),
            Value::Text("LabeledPapers".into()),
            Value::Text("vec".into()),
            Value::Text("label".into()),
            Value::Double(0.5),
            Value::Int(3),
        ];
        let result = execute_analytics(&mut db, fast_config(), "LRTrain", &args).unwrap();
        let epochs_idx = result.column_index("epochs").unwrap();
        assert_eq!(result.rows[0][epochs_idx], Value::Int(3));
    }

    #[test]
    fn too_many_arguments_is_an_error() {
        let mut db = classification_db(10);
        let mut args = vec![
            Value::Text("m".into()),
            Value::Text("LabeledPapers".into()),
            Value::Text("vec".into()),
            Value::Text("label".into()),
            Value::Double(0.5),
            Value::Int(3),
            Value::Int(99),
        ];
        let err = execute_analytics(&mut db, fast_config(), "SVMTrain", &args).unwrap_err();
        assert!(err.to_string().contains("at most"));
        args.truncate(4);
        args[0] = Value::Int(12); // model name must be text
        let err = execute_analytics(&mut db, fast_config(), "SVMTrain", &args).unwrap_err();
        assert!(err.to_string().contains("model name"));
    }

    #[test]
    fn predict_after_train_produces_one_row_per_tuple() {
        let mut db = classification_db(80);
        let train_args = vec![
            Value::Text("m".into()),
            Value::Text("LabeledPapers".into()),
            Value::Text("vec".into()),
            Value::Text("label".into()),
        ];
        execute_analytics(&mut db, fast_config(), "SVMTrain", &train_args).unwrap();
        let predict_args = vec![
            Value::Text("m".into()),
            Value::Text("LabeledPapers".into()),
            Value::Text("vec".into()),
        ];
        let result =
            execute_analytics(&mut db, fast_config(), "SVMPredict", &predict_args).unwrap();
        assert_eq!(result.len(), 80);
        assert_eq!(
            result.columns,
            vec!["row".to_string(), "prediction".to_string()]
        );
        let predictions = result.column_values("prediction").unwrap();
        assert!(predictions.iter().all(|v| {
            let p = v.as_double().unwrap();
            p == 1.0 || p == -1.0 || p == 0.0
        }));

        let probs = execute_analytics(&mut db, fast_config(), "LRPredict", &predict_args).unwrap();
        assert_eq!(probs.columns[1], "probability");
    }

    #[test]
    fn loss_functions_return_a_single_finite_value() {
        let mut db = classification_db(100);
        let train_args = vec![
            Value::Text("m".into()),
            Value::Text("LabeledPapers".into()),
            Value::Text("vec".into()),
            Value::Text("label".into()),
        ];
        execute_analytics(&mut db, fast_config(), "SVMTrain", &train_args).unwrap();
        let loss = execute_analytics(&mut db, fast_config(), "SVMLoss", &train_args).unwrap();
        assert_eq!(loss.columns, vec!["loss".to_string()]);
        let value = loss.single_value().unwrap().as_double().unwrap();
        assert!(value.is_finite() && value >= 0.0);

        execute_analytics(&mut db, fast_config(), "LRTrain", &train_args).unwrap();
        let lr_loss = execute_analytics(&mut db, fast_config(), "LRLoss", &train_args).unwrap();
        assert!(lr_loss
            .single_value()
            .unwrap()
            .as_double()
            .unwrap()
            .is_finite());
    }

    #[test]
    fn unknown_table_surfaces_as_analytics_error() {
        let mut db = Database::new();
        let args = vec![
            Value::Text("m".into()),
            Value::Text("NoSuchTable".into()),
            Value::Text("vec".into()),
            Value::Text("label".into()),
        ];
        let err = execute_analytics(&mut db, fast_config(), "SVMTrain", &args).unwrap_err();
        assert!(matches!(err, SqlError::Analytics(_)));
    }
}
