//! Statement execution: a [`SqlSession`] owns a [`Database`] and runs parsed
//! statements against it.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use bismarck_core::frontend::{load_model, persist_model};
use bismarck_core::governor::{Governor, QueryGuard, ShutdownReport};
use bismarck_core::serving::{ModelHandle, ModelSnapshot, ServingTask};
use bismarck_core::TrainerConfig;
use bismarck_storage::{
    Column, ColumnarTable, DataType, Database, RecoveryReport, Schema, Table, TupleScan, Value,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::analytics::{execute_analytics, execute_analytics_columnar, is_analytics_function};
use crate::ast::{
    CopyDirection, Expr, Literal, OrderKey, SelectItem, SelectStatement, Statement, TableStorage,
};
use crate::error::{Result, SqlError};
use crate::eval::{compare_values, evaluate, evaluate_grouped, is_truthy, EvalContext, RowContext};
use crate::parser::{parse_script, parse_statement};
use crate::result::QueryResult;

/// Default RNG seed so `ORDER BY RANDOM()` and `RANDOM()` are reproducible
/// unless the caller overrides the seed.
const DEFAULT_SEED: u64 = 0xB15_AA5C;

/// Row loops poll the statement's [`QueryGuard`] every this many rows, so a
/// deadline or cancellation stops a scan within a bounded amount of work.
const GUARD_CHECK_ROWS: usize = 256;

/// An interactive SQL session: a catalog of tables plus the trainer
/// configuration used by analytics calls, the RNG behind `RANDOM()`, and the
/// serving registry behind `PREDICT()`.
pub struct SqlSession {
    db: Database,
    /// Tables created with `STORAGE = COLUMNAR`. They live beside the
    /// row-store catalog (names are checked against both registries) but are
    /// session-local: the durable WAL covers row-store tables only, so a
    /// columnar table created through SQL does not survive a reopen. Paged
    /// columnar tables built from Rust can be registered with
    /// [`SqlSession::register_columnar_table`].
    columnar: HashMap<String, ColumnarTable>,
    trainer_config: TrainerConfig,
    ctx: EvalContext,
    /// Live serving handles addressable by `PREDICT('name', ...)`; resolved
    /// ahead of persisted model tables of the same name.
    serving: HashMap<String, ModelHandle>,
    /// What [`SqlSession::open`] recovered from disk; `None` for in-memory
    /// sessions.
    recovery: Option<RecoveryReport>,
    /// Guard for the statement currently executing; an unlimited guard
    /// between statements (and for plain [`SqlSession::execute`] calls).
    guard: QueryGuard,
}

impl Default for SqlSession {
    fn default() -> Self {
        SqlSession::new()
    }
}

impl SqlSession {
    /// A session over an empty database with the default trainer settings.
    pub fn new() -> Self {
        SqlSession::with_seed(DEFAULT_SEED)
    }

    /// A session whose `RANDOM()` / `ORDER BY RANDOM()` stream is seeded with
    /// `seed`, for reproducible scripts and tests.
    pub fn with_seed(seed: u64) -> Self {
        SqlSession {
            db: Database::new(),
            columnar: HashMap::new(),
            trainer_config: TrainerConfig::default(),
            ctx: EvalContext::with_seed(seed),
            serving: HashMap::new(),
            recovery: None,
            guard: QueryGuard::unlimited(),
        }
    }

    /// Open a **durable** session bound to directory `dir`: every catalog
    /// mutation (CREATE/DROP TABLE, INSERT, COPY FROM, trained-model
    /// persistence) is write-ahead logged there, and reopening the same
    /// directory reconstructs the catalog — so a `train → exit → reopen →
    /// PREDICT` sequence works across process restarts.
    ///
    /// The recovery diagnostics are logged to stderr and kept available via
    /// [`SqlSession::recovery_report`].
    pub fn open(dir: impl AsRef<Path>) -> Result<SqlSession> {
        let (db, report) = Database::open(dir)?;
        eprintln!("[bismarck recovery] {report}");
        let mut session = SqlSession::new();
        session.db = db;
        session.recovery = Some(report);
        Ok(session)
    }

    /// What [`SqlSession::open`] reconstructed from disk (tables restored,
    /// WAL records replayed, torn-tail bytes discarded); `None` for
    /// in-memory sessions.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Override the trainer configuration used by analytics functions
    /// (`SVMTrain`, `LRTrain`, ...). Per-call step-size / epoch arguments are
    /// applied on top of this.
    pub fn with_trainer_config(mut self, config: TrainerConfig) -> Self {
        self.trainer_config = config;
        self
    }

    /// The underlying database (for inspection from Rust code).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the underlying database.
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Consume the session, returning the database.
    pub fn into_database(self) -> Database {
        self.db
    }

    /// Register an already-built table (e.g. from `bismarck-datagen`),
    /// replacing any table of the same name. On a durable session (see
    /// [`SqlSession::open`]) the table contents are write-ahead logged.
    pub fn register_table(&mut self, table: Table) -> Result<()> {
        self.db.register_table(table)?;
        Ok(())
    }

    /// Register an already-built columnar table (in-memory or paged),
    /// making it addressable from SQL like any other table. Fails if a
    /// row-store table of the same name exists.
    pub fn register_columnar_table(&mut self, table: ColumnarTable) -> Result<()> {
        if self.db.contains(table.name()) {
            return Err(SqlError::Storage(
                bismarck_storage::StorageError::TableExists(table.name().to_string()),
            ));
        }
        self.columnar.insert(table.name().to_string(), table);
        Ok(())
    }

    /// The columnar table registered under `name`, if any.
    pub fn columnar_table(&self, name: &str) -> Option<&ColumnarTable> {
        self.columnar.get(name)
    }

    /// Register a live serving handle under `name`, making
    /// `PREDICT('name', ...)` score against the handle's **latest**
    /// snapshot — including while a trainer configured with the same handle
    /// (via [`TrainerConfig::with_serving`]) publishes epochs from another
    /// thread. Replaces any handle previously registered under the name and
    /// shadows a persisted model table of the same name.
    pub fn register_model_handle(&mut self, name: impl Into<String>, handle: ModelHandle) {
        self.serving.insert(name.into(), handle);
    }

    /// The serving handle registered under `name`, if any.
    pub fn model_handle(&self, name: &str) -> Option<&ModelHandle> {
        self.serving.get(name)
    }

    /// Execute a single statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let statement = parse_statement(sql)?;
        self.run_statement(statement)
    }

    /// Execute a single statement under a [`QueryGuard`]: the statement's row
    /// loops poll the guard's deadline and cancel flag (surfacing
    /// [`SqlError::Timeout`] / [`SqlError::Cancelled`]), materialized
    /// intermediate results are charged against the guard's memory budget
    /// (surfacing [`SqlError::MemoryBudget`]), and analytics calls carry the
    /// guard into the trainers, which stop at the next epoch boundary.
    ///
    /// A governance failure leaves the session usable: the next statement
    /// runs normally under its own guard.
    ///
    /// ```
    /// use std::time::Duration;
    /// use bismarck_core::governor::{QueryGuard, QueryLimits};
    /// use bismarck_sql::{SqlSession, SqlError};
    ///
    /// let mut session = SqlSession::new();
    /// session.execute("CREATE TABLE t (x INT)").unwrap();
    /// let guard = QueryGuard::new(QueryLimits::none().with_timeout(Duration::from_secs(30)));
    /// session.execute_with("INSERT INTO t VALUES (1)", &guard).unwrap();
    ///
    /// let cancelled = QueryGuard::unlimited();
    /// cancelled.cancel();
    /// assert_eq!(
    ///     session.execute_with("SELECT * FROM t", &cancelled),
    ///     Err(SqlError::Cancelled),
    /// );
    /// ```
    pub fn execute_with(&mut self, sql: &str, guard: &QueryGuard) -> Result<QueryResult> {
        let statement = parse_statement(sql)?;
        self.guard = guard.clone();
        let result = self.run_statement(statement);
        self.guard = QueryGuard::unlimited();
        result
    }

    /// Execute a `;`-separated script, returning one result per statement.
    /// Execution stops at the first error.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<QueryResult>> {
        let statements = parse_script(sql)?;
        self.run_statements(statements)
    }

    /// [`SqlSession::execute_script`] under a single [`QueryGuard`]: every
    /// statement in the script shares the guard's deadline, cancel flag and
    /// memory budget. Execution stops at the first error (including a
    /// governance error).
    pub fn execute_script_with(
        &mut self,
        sql: &str,
        guard: &QueryGuard,
    ) -> Result<Vec<QueryResult>> {
        let statements = parse_script(sql)?;
        self.guard = guard.clone();
        let result = self.run_statements(statements);
        self.guard = QueryGuard::unlimited();
        result
    }

    fn run_statements(&mut self, statements: Vec<Statement>) -> Result<Vec<QueryResult>> {
        let mut results = Vec::with_capacity(statements.len());
        for statement in statements {
            results.push(self.run_statement(statement)?);
        }
        Ok(results)
    }

    /// Gracefully shut the session down under a deadline:
    ///
    /// 1. [`Governor::shutdown`] refuses new statements, cancels every
    ///    outstanding [`QueryGuard`] the governor admitted (stopping row
    ///    loops and trainers at their next check point) and waits — up to
    ///    `deadline` — for in-flight statements to drain;
    /// 2. every registered serving handle's **last published** snapshot is
    ///    persisted into the catalog under its registered name, so a reopened
    ///    session serves identical predictions via `PREDICT()`;
    /// 3. on a durable session the catalog is compacted (snapshot written
    ///    atomically, WAL truncated) and flushed.
    ///
    /// Returns the governor's [`ShutdownReport`]. Safe on an in-memory
    /// session (steps 2–3 still run; compaction is a no-op).
    pub fn shutdown(&mut self, governor: &Governor, deadline: Instant) -> Result<ShutdownReport> {
        let report = governor.shutdown(deadline);
        let names: Vec<String> = self.serving.keys().cloned().collect();
        for name in names {
            let snapshot = match self.serving.get(&name) {
                Some(handle) => handle.snapshot(),
                None => continue,
            };
            // Version 0 is the handle's pre-publish placeholder — there is
            // no trained model to persist yet.
            if snapshot.version() == 0 {
                continue;
            }
            persist_model(&mut self.db, &name, snapshot.weights())
                .map_err(|e| SqlError::Analytics(e.to_string()))?;
        }
        self.db.compact()?;
        Ok(report)
    }

    fn run_statement(&mut self, statement: Statement) -> Result<QueryResult> {
        self.guard.check()?;
        // Intermediate-result reservations are statement-scoped: whatever
        // this statement charged is returned to the budget when it finishes
        // (or fails), so a script sharing one guard meters its *peak* usage
        // per statement and a budget error never poisons the session.
        let reserved_before = self.guard.budget().reserved();
        let result = self.dispatch(statement);
        let reserved_now = self.guard.budget().reserved();
        self.guard
            .budget()
            .release(reserved_now.saturating_sub(reserved_before));
        result
    }

    fn dispatch(&mut self, statement: Statement) -> Result<QueryResult> {
        self.prime_predict_models(&statement)?;
        match statement {
            Statement::CreateTable {
                name,
                columns,
                storage,
            } => self.run_create_table(name, columns, storage),
            Statement::DropTable { name } => {
                if self.columnar.remove(&name).is_some() {
                    return Ok(QueryResult::status_only("DROP TABLE"));
                }
                self.db.drop_table(&name)?;
                Ok(QueryResult::status_only("DROP TABLE"))
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => self.run_insert(table, columns, rows),
            Statement::Select(select) => self.run_select(select),
            Statement::Copy {
                table,
                direction,
                path,
            } => self.run_copy(table, direction, path),
            Statement::Shuffle { table, seed } => self.run_reorder(table, Reorder::Shuffle(seed)),
            Statement::Cluster {
                table,
                column,
                ascending,
            } => self.run_reorder(table, Reorder::Cluster { column, ascending }),
            Statement::CreateTableAs {
                name,
                query,
                storage,
            } => self.run_create_table_as(name, query, storage),
            Statement::ShowTables => Ok(self.run_show_tables()),
            Statement::Describe { name } => self.run_describe(&name),
        }
    }

    /// `CREATE TABLE ... AS SELECT ...`: materialize a query result. Column
    /// types are inferred from the result values (integer columns containing
    /// any double are widened to DOUBLE; all-NULL columns default to DOUBLE).
    fn run_create_table_as(
        &mut self,
        name: String,
        query: SelectStatement,
        storage: TableStorage,
    ) -> Result<QueryResult> {
        self.check_name_free(&name)?;
        let result = self.run_select(query)?;
        let arity = result.columns.len();

        // Infer one type per output column.
        let mut types: Vec<Option<DataType>> = vec![None; arity];
        for row in &result.rows {
            for (i, value) in row.iter().enumerate() {
                let Some(dtype) = value.data_type() else {
                    continue;
                };
                types[i] = Some(match (types[i], dtype) {
                    (None, t) => t,
                    (Some(DataType::Int), DataType::Double)
                    | (Some(DataType::Double), DataType::Int) => DataType::Double,
                    (Some(existing), t) if existing == t => existing,
                    (Some(existing), t) => {
                        return Err(SqlError::Analysis(format!(
                            "column '{}' mixes {existing} and {t} values; cannot materialize",
                            result.columns[i]
                        )))
                    }
                });
            }
        }

        let columns: Vec<Column> = result
            .columns
            .iter()
            .zip(&types)
            .map(|(name, dtype)| Column::nullable(name.clone(), dtype.unwrap_or(DataType::Double)))
            .collect();
        let schema = Schema::new(columns)?;
        let count = result.rows.len();
        let coerced_rows = result.rows.into_iter().map(|row| {
            row.into_iter()
                .zip(&types)
                .map(|(value, dtype)| match (value, dtype) {
                    // Widen integers stored in a DOUBLE column.
                    (Value::Int(v), Some(DataType::Double)) => Value::Double(v as f64),
                    (value, _) => value,
                })
                .collect::<Vec<Value>>()
        });
        match storage {
            TableStorage::Row => {
                let mut table = Table::new(name.clone(), schema);
                for row in coerced_rows {
                    table.insert(row)?;
                }
                self.db.register_table(table)?;
            }
            TableStorage::Columnar => {
                let mut table = ColumnarTable::new(name.clone(), schema);
                table.insert_all(coerced_rows)?;
                self.columnar.insert(name, table);
            }
        }
        Ok(QueryResult::status_only(format!(
            "CREATE TABLE AS ({count} rows)"
        )))
    }

    /// Error if `name` is taken in either the row-store catalog or the
    /// columnar registry.
    fn check_name_free(&self, name: &str) -> Result<()> {
        if self.db.contains(name) || self.columnar.contains_key(name) {
            return Err(SqlError::Storage(
                bismarck_storage::StorageError::TableExists(name.to_string()),
            ));
        }
        Ok(())
    }

    /// `SHOW TABLES`: table names and row counts (row-store and columnar),
    /// sorted by name.
    fn run_show_tables(&self) -> QueryResult {
        let mut entries: Vec<(String, usize)> = self
            .db
            .table_names()
            .into_iter()
            .map(|name| {
                let len = self.db.table(&name).map(Table::len).unwrap_or(0);
                (name, len)
            })
            .chain(
                self.columnar
                    .iter()
                    .map(|(name, table)| (name.clone(), table.len())),
            )
            .collect();
        entries.sort();
        let rows = entries
            .into_iter()
            .map(|(name, len)| vec![Value::Text(name), Value::Int(len as i64)])
            .collect();
        QueryResult::with_rows(vec!["table".into(), "rows".into()], rows)
    }

    /// `DESCRIBE <table>`: column names, types and nullability.
    fn run_describe(&self, name: &str) -> Result<QueryResult> {
        let schema = match self.columnar.get(name) {
            Some(table) => table.schema(),
            None => self.db.table(name)?.schema(),
        };
        let rows = schema
            .columns()
            .iter()
            .map(|column| {
                vec![
                    Value::Text(column.name.clone()),
                    Value::Text(column.dtype.to_string()),
                    Value::Int(i64::from(column.nullable)),
                ]
            })
            .collect();
        Ok(QueryResult::with_rows(
            vec!["column".into(), "type".into(), "nullable".into()],
            rows,
        ))
    }

    fn run_copy(
        &mut self,
        table_name: String,
        direction: CopyDirection,
        path: String,
    ) -> Result<QueryResult> {
        match direction {
            CopyDirection::FromFile => {
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| SqlError::Evaluation(format!("cannot read '{path}': {e}")))?;
                let schema = match self.columnar.get(&table_name) {
                    Some(table) => table.schema().clone(),
                    None => self.db.table(&table_name)?.schema().clone(),
                };
                // Parse the whole file first so a malformed line never
                // leaves a half-loaded target behind.
                let parsed = bismarck_storage::csv::rows_from_str(&schema, &text)?;
                for (i, row) in parsed.iter().enumerate() {
                    if i.is_multiple_of(GUARD_CHECK_ROWS) {
                        self.guard.check()?;
                    }
                    self.guard.reserve(approx_row_bytes(row))?;
                }
                let count = match self.columnar.get_mut(&table_name) {
                    Some(table) => table.insert_all(parsed)?,
                    None => self.db.insert_rows(&table_name, parsed)?,
                };
                Ok(QueryResult::status_only(format!("COPY {count}")))
            }
            CopyDirection::ToFile => {
                let (text, count) = match self.columnar.get(&table_name) {
                    Some(table) => (bismarck_storage::csv::tuples_to_string(table), table.len()),
                    None => {
                        let table = self.db.table(&table_name)?;
                        (bismarck_storage::csv::table_to_string(table), table.len())
                    }
                };
                std::fs::write(&path, text)
                    .map_err(|e| SqlError::Evaluation(format!("cannot write '{path}': {e}")))?;
                Ok(QueryResult::status_only(format!("COPY {count}")))
            }
        }
    }

    /// Physically rewrite a stored table in a new order (`SHUFFLE TABLE` /
    /// `CLUSTER TABLE ... BY`). This is the storage-side knob Section 3.2
    /// studies: the scan order of later training runs follows this layout.
    fn run_reorder(&mut self, table_name: String, reorder: Reorder) -> Result<QueryResult> {
        // A columnar table is rewritten by rebuilding its chunks from the
        // reordered rows. Paged tables are excluded: their segments are
        // immutable on disk, and trainers shuffle them through scan
        // permutations rather than physical rewrites.
        let columnar_capacity = match self.columnar.get(&table_name) {
            Some(table) if table.pager_stats().is_some() => {
                return Err(SqlError::Analysis(format!(
                    "cannot physically rewrite paged columnar table '{table_name}'; \
                     trainers shuffle it via scan permutations instead"
                )))
            }
            Some(table) => Some(table.chunk_capacity()),
            None => None,
        };
        let (schema, mut rows) = if let Some(table) = self.columnar.get(&table_name) {
            let guard = &self.guard;
            let mut rows: Vec<Vec<Value>> = Vec::with_capacity(table.len());
            let mut scan_err: Option<SqlError> = None;
            let mut i = 0usize;
            table.scan_tuples_while(&mut |tuple| {
                if i.is_multiple_of(GUARD_CHECK_ROWS) {
                    if let Err(e) = guard.check() {
                        scan_err = Some(e.into());
                        return false;
                    }
                }
                i += 1;
                if let Err(e) = guard.reserve(approx_row_bytes(tuple.values())) {
                    scan_err = Some(e.into());
                    return false;
                }
                rows.push(tuple.values().to_vec());
                true
            });
            if let Some(e) = scan_err {
                return Err(e);
            }
            (table.schema().clone(), rows)
        } else {
            let table = self.db.table(&table_name)?;
            let mut rows: Vec<Vec<Value>> = Vec::with_capacity(table.len());
            for (i, tuple) in table.scan().enumerate() {
                if i.is_multiple_of(GUARD_CHECK_ROWS) {
                    self.guard.check()?;
                }
                self.guard.reserve(approx_row_bytes(tuple.values()))?;
                rows.push(tuple.values().to_vec());
            }
            (table.schema().clone(), rows)
        };
        let status = match reorder {
            Reorder::Shuffle(seed) => {
                match seed {
                    Some(seed) => rows.shuffle(&mut StdRng::seed_from_u64(seed)),
                    None => rows.shuffle(&mut self.ctx.rng),
                }
                format!("SHUFFLE {}", rows.len())
            }
            Reorder::Cluster { column, ascending } => {
                let idx = schema.index_of(&column)?;
                rows.sort_by(|a, b| {
                    let ordering = compare_values(&a[idx], &b[idx]);
                    if ascending {
                        ordering
                    } else {
                        ordering.reverse()
                    }
                });
                format!("CLUSTER {}", rows.len())
            }
        };
        match columnar_capacity {
            Some(capacity) => {
                let mut rebuilt = ColumnarTable::with_chunk_capacity(&table_name, schema, capacity);
                rebuilt.insert_all(rows)?;
                self.columnar.insert(table_name, rebuilt);
            }
            None => {
                let mut rebuilt = Table::new(table_name, schema);
                for row in rows {
                    rebuilt.insert(row)?;
                }
                self.db.register_table(rebuilt)?;
            }
        }
        Ok(QueryResult::status_only(status))
    }

    fn run_create_table(
        &mut self,
        name: String,
        columns: Vec<crate::ast::ColumnDef>,
        storage: TableStorage,
    ) -> Result<QueryResult> {
        // Columns are nullable so `INSERT` with an explicit column list can
        // omit the rest; the storage layer still enforces declared types.
        let schema = Schema::new(
            columns
                .into_iter()
                .map(|c| Column::nullable(c.name, c.data_type))
                .collect(),
        )?;
        self.check_name_free(&name)?;
        match storage {
            TableStorage::Row => {
                self.db.create_table(name, schema)?;
            }
            TableStorage::Columnar => {
                self.columnar
                    .insert(name.clone(), ColumnarTable::new(name, schema));
            }
        }
        Ok(QueryResult::status_only("CREATE TABLE"))
    }

    fn run_insert(
        &mut self,
        table_name: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Expr>>,
    ) -> Result<QueryResult> {
        // Evaluate all rows before touching the table so a mid-statement
        // error does not leave a partial insert behind.
        let schema = match self.columnar.get(&table_name) {
            Some(table) => table.schema().clone(),
            None => self.db.table(&table_name)?.schema().clone(),
        };
        let arity = schema.arity();
        let column_indices: Option<Vec<usize>> = match &columns {
            Some(names) => {
                let mut indices = Vec::with_capacity(names.len());
                for name in names {
                    indices.push(schema.index_of(name)?);
                }
                Some(indices)
            }
            None => None,
        };

        let mut materialized: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            if i.is_multiple_of(GUARD_CHECK_ROWS) {
                self.guard.check()?;
            }
            let mut values = Vec::with_capacity(row.len());
            for expr in row {
                values.push(evaluate(expr, None, &mut self.ctx)?);
            }
            let full_row = match &column_indices {
                Some(indices) => {
                    if values.len() != indices.len() {
                        return Err(SqlError::Analysis(format!(
                            "INSERT row has {} values for {} named columns",
                            values.len(),
                            indices.len()
                        )));
                    }
                    let mut full = vec![Value::Null; arity];
                    for (idx, value) in indices.iter().zip(values) {
                        full[*idx] = value;
                    }
                    full
                }
                None => values,
            };
            self.guard.reserve(approx_row_bytes(&full_row))?;
            materialized.push(full_row);
        }

        let count = match self.columnar.get_mut(&table_name) {
            Some(table) => table.insert_all(materialized)?,
            None => self.db.insert_rows(&table_name, materialized)?,
        };
        Ok(QueryResult::status_only(format!("INSERT {count}")))
    }

    fn run_select(&mut self, select: SelectStatement) -> Result<QueryResult> {
        match &select.from {
            None => self.run_tableless_select(select),
            Some(_) => self.run_table_select(select),
        }
    }

    /// `SELECT` without `FROM`: either a single analytics call
    /// (`SELECT SVMTrain(...)`) or a row of scalar expressions.
    fn run_tableless_select(&mut self, select: SelectStatement) -> Result<QueryResult> {
        // Analytics calls take over the whole statement: they produce their
        // own result shape (a training summary or a prediction row set).
        let analytics_items = select
            .items
            .iter()
            .filter(|item| {
                matches!(item, SelectItem::Expr { expr: Expr::Function { name, .. }, .. }
                    if is_analytics_function(name))
            })
            .count();
        if analytics_items > 0 {
            if select.items.len() != 1 {
                return Err(SqlError::Analysis(
                    "an analytics function must be the only item in its SELECT".into(),
                ));
            }
            let SelectItem::Expr {
                expr: Expr::Function { name, args },
                ..
            } = &select.items[0]
            else {
                unreachable!("filtered on function items above");
            };
            let mut arg_values = Vec::with_capacity(args.len());
            for arg in args {
                arg_values.push(evaluate(arg, None, &mut self.ctx)?);
            }
            // The guard rides into the trainers through the config: deadline
            // or cancellation ends the run at the next epoch boundary.
            let config = self.trainer_config.clone().with_guard(self.guard.clone());
            // Every analytics function takes the data table as its second
            // argument; a columnar name routes the call to the columnar
            // entry point (models still persist into the row-store catalog).
            let SqlSession { db, columnar, .. } = self;
            let columnar_source = arg_values
                .get(1)
                .and_then(|v| v.as_text())
                .and_then(|table| columnar.get(table));
            let result = match columnar_source {
                Some(source) => execute_analytics_columnar(db, source, config, name, &arg_values),
                None => execute_analytics(db, config, name, &arg_values),
            };
            // A run the guard interrupted surfaces as the governance error,
            // not a generic analytics failure.
            return result.map_err(|e| match self.guard.check() {
                Err(violation) => violation.into(),
                Ok(()) => e,
            });
        }

        let mut columns = Vec::with_capacity(select.items.len());
        let mut row = Vec::with_capacity(select.items.len());
        for item in &select.items {
            match item {
                SelectItem::Wildcard => {
                    return Err(SqlError::Analysis(
                        "SELECT * requires a FROM clause".to_string(),
                    ))
                }
                SelectItem::Expr { expr, alias } => {
                    columns.push(alias.clone().unwrap_or_else(|| expr.default_name()));
                    row.push(evaluate(expr, None, &mut self.ctx)?);
                }
            }
        }
        Ok(QueryResult::with_rows(columns, vec![row]))
    }

    fn run_table_select(&mut self, select: SelectStatement) -> Result<QueryResult> {
        let Some(table_name) = select.from.as_deref() else {
            return Err(SqlError::Analysis(
                "SELECT over a table requires a FROM clause".into(),
            ));
        };
        // Split borrows: the table is read-only while the RNG in `ctx` is
        // mutated by RANDOM().
        let SqlSession {
            db,
            columnar,
            ctx,
            guard,
            ..
        } = self;

        // Filter. Kept rows are the statement's first materialized
        // intermediate, so they are charged against the guard's budget.
        // Row-store and columnar tables stream through the same TupleScan
        // surface; the callback-based columnar path threads errors out
        // through `scan_err` because the closure cannot use `?`.
        let schema;
        let mut rows: Vec<Vec<Value>> = Vec::new();
        {
            let source: &dyn TupleScan = match columnar.get(table_name) {
                Some(table) => {
                    schema = table.schema().clone();
                    table
                }
                None => {
                    let table = db.table(table_name)?;
                    schema = table.schema().clone();
                    table
                }
            };
            let mut scan_err: Option<SqlError> = None;
            let mut i = 0usize;
            source.scan_tuples_while(&mut |tuple| {
                if i.is_multiple_of(GUARD_CHECK_ROWS) {
                    if let Err(e) = guard.check() {
                        scan_err = Some(e.into());
                        return false;
                    }
                }
                i += 1;
                let keep = match &select.filter {
                    Some(predicate) => {
                        let row = RowContext {
                            schema: &schema,
                            values: tuple.values(),
                        };
                        match evaluate(predicate, Some(row), ctx) {
                            Ok(value) => is_truthy(&value),
                            Err(e) => {
                                scan_err = Some(e);
                                return false;
                            }
                        }
                    }
                    None => true,
                };
                if keep {
                    if let Err(e) = guard.reserve(approx_row_bytes(tuple.values())) {
                        scan_err = Some(e.into());
                        return false;
                    }
                    rows.push(tuple.values().to_vec());
                }
                true
            });
            if let Some(e) = scan_err {
                return Err(e);
            }
        }

        let has_aggregates = !select.group_by.is_empty()
            || select.items.iter().any(
                |item| matches!(item, SelectItem::Expr { expr, .. } if expr.contains_aggregate()),
            );

        let (columns, mut keyed_rows) = if has_aggregates {
            self.grouped_projection(&select, &schema, rows)?
        } else {
            self.plain_projection(&select, &schema, rows)?
        };

        // Order.
        if !select.order_by.is_empty() {
            if order_by_is_random(&select.order_by) {
                keyed_rows.shuffle(&mut self.ctx.rng);
            } else {
                keyed_rows.sort_by(|(a, _), (b, _)| {
                    for (idx, key) in select.order_by.iter().enumerate() {
                        let ordering = compare_values(&a[idx], &b[idx]);
                        let ordering = if key.ascending {
                            ordering
                        } else {
                            ordering.reverse()
                        };
                        if ordering != std::cmp::Ordering::Equal {
                            return ordering;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
            }
        }

        let mut output: Vec<Vec<Value>> = keyed_rows.into_iter().map(|(_, row)| row).collect();
        if let Some(limit) = select.limit {
            output.truncate(limit);
        }
        Ok(QueryResult::with_rows(columns, output))
    }

    /// Project rows without aggregation. Returns `(columns, keyed rows)`
    /// where each row carries its pre-computed `ORDER BY` key values.
    #[allow(clippy::type_complexity)]
    fn plain_projection(
        &mut self,
        select: &SelectStatement,
        schema: &Schema,
        rows: Vec<Vec<Value>>,
    ) -> Result<(Vec<String>, Vec<(Vec<Value>, Vec<Value>)>)> {
        let mut columns = Vec::new();
        for item in &select.items {
            match item {
                SelectItem::Wildcard => {
                    columns.extend(schema.columns().iter().map(|c| c.name.clone()));
                }
                SelectItem::Expr { expr, alias } => {
                    columns.push(alias.clone().unwrap_or_else(|| expr.default_name()));
                }
            }
        }

        let mut keyed_rows = Vec::with_capacity(rows.len());
        for (i, values) in rows.into_iter().enumerate() {
            if i.is_multiple_of(GUARD_CHECK_ROWS) {
                self.guard.check()?;
            }
            let row = RowContext {
                schema,
                values: &values,
            };
            let mut out = Vec::with_capacity(columns.len());
            for item in &select.items {
                match item {
                    SelectItem::Wildcard => out.extend(values.iter().cloned()),
                    SelectItem::Expr { expr, .. } => {
                        out.push(evaluate(expr, Some(row), &mut self.ctx)?)
                    }
                }
            }
            let keys = self.order_keys_scalar(&select.order_by, Some(row))?;
            keyed_rows.push((keys, out));
        }
        Ok((columns, keyed_rows))
    }

    /// Project with `GROUP BY` / aggregates: one output row per group.
    #[allow(clippy::type_complexity)]
    fn grouped_projection(
        &mut self,
        select: &SelectStatement,
        schema: &Schema,
        rows: Vec<Vec<Value>>,
    ) -> Result<(Vec<String>, Vec<(Vec<Value>, Vec<Value>)>)> {
        for item in &select.items {
            if matches!(item, SelectItem::Wildcard) {
                return Err(SqlError::Analysis(
                    "SELECT * cannot be combined with GROUP BY or aggregates".into(),
                ));
            }
        }

        // Partition rows into groups keyed by the GROUP BY expressions
        // (a single all-rows group when there is no GROUP BY).
        let mut groups: Vec<(Vec<Value>, Vec<Vec<Value>>)> = Vec::new();
        if select.group_by.is_empty() {
            groups.push((Vec::new(), rows));
        } else {
            for (i, values) in rows.into_iter().enumerate() {
                if i.is_multiple_of(GUARD_CHECK_ROWS) {
                    self.guard.check()?;
                }
                let row = RowContext {
                    schema,
                    values: &values,
                };
                let mut key = Vec::with_capacity(select.group_by.len());
                for expr in &select.group_by {
                    key.push(evaluate(expr, Some(row), &mut self.ctx)?);
                }
                match groups.iter_mut().find(|(existing, _)| *existing == key) {
                    Some((_, members)) => members.push(values),
                    None => groups.push((key, vec![values])),
                }
            }
        }

        let mut columns = Vec::with_capacity(select.items.len());
        for item in &select.items {
            let SelectItem::Expr { expr, alias } = item else {
                unreachable!()
            };
            columns.push(alias.clone().unwrap_or_else(|| expr.default_name()));
        }

        let mut keyed_rows = Vec::with_capacity(groups.len());
        for (i, (_, members)) in groups.into_iter().enumerate() {
            if i.is_multiple_of(GUARD_CHECK_ROWS) {
                self.guard.check()?;
            }
            // An aggregate over zero rows is only meaningful without GROUP BY
            // (e.g. COUNT(*) over an empty table).
            let mut out = Vec::with_capacity(columns.len());
            for item in &select.items {
                let SelectItem::Expr { expr, .. } = item else {
                    unreachable!()
                };
                out.push(evaluate_grouped(expr, schema, &members, &mut self.ctx)?);
            }
            let mut keys = Vec::with_capacity(select.order_by.len());
            for key in &select.order_by {
                keys.push(evaluate_grouped(
                    &key.expr,
                    schema,
                    &members,
                    &mut self.ctx,
                )?);
            }
            keyed_rows.push((keys, out));
        }
        Ok((columns, keyed_rows))
    }

    /// Resolve every model named by a `PREDICT()` call in the statement into
    /// the evaluation context's snapshot cache, **once per statement**: a
    /// registered serving handle yields its latest snapshot (scored through
    /// the handle task's link function), a persisted model table is loaded
    /// as a raw-score (identity link) model. Acquiring the snapshot up front
    /// both amortizes its cost across the statement's rows and guarantees
    /// all rows are scored against the same model version. Unknown names are
    /// left unresolved and error at evaluation time.
    fn prime_predict_models(&mut self, statement: &Statement) -> Result<()> {
        self.ctx.models.clear();
        let mut names = Vec::new();
        collect_statement_predict_models(statement, &mut names);
        for name in names {
            if let Some(handle) = self.serving.get(&name) {
                self.ctx.models.insert(name, handle.snapshot());
            } else if self.db.contains(&name) {
                let weights = load_model(&self.db, &name).map_err(|e| {
                    SqlError::Evaluation(format!("cannot load model '{name}': {e}"))
                })?;
                self.ctx.models.insert(
                    name,
                    Arc::new(ModelSnapshot::detached(ServingTask::LeastSquares, weights)),
                );
            }
        }
        Ok(())
    }

    fn order_keys_scalar(
        &mut self,
        order_by: &[OrderKey],
        row: Option<RowContext<'_>>,
    ) -> Result<Vec<Value>> {
        if order_by_is_random(order_by) {
            return Ok(Vec::new());
        }
        let mut keys = Vec::with_capacity(order_by.len());
        for key in order_by {
            keys.push(evaluate(&key.expr, row, &mut self.ctx)?);
        }
        Ok(keys)
    }
}

/// How `run_reorder` rewrites a table.
enum Reorder {
    /// Random permutation, optionally with an explicit seed.
    Shuffle(Option<u64>),
    /// Sort by a column.
    Cluster {
        /// Column to sort by.
        column: String,
        /// Sort direction.
        ascending: bool,
    },
}

/// Append the model names referenced by `PREDICT()` calls anywhere in the
/// statement to `out` (deduplicated). Only text *literals* are collected —
/// the model must be known before row-by-row evaluation starts, so a
/// computed model name cannot be resolved and errors at evaluation time.
fn collect_statement_predict_models(statement: &Statement, out: &mut Vec<String>) {
    match statement {
        Statement::Select(select) => collect_select_predict_models(select, out),
        Statement::CreateTableAs { query, .. } => collect_select_predict_models(query, out),
        Statement::Insert { rows, .. } => {
            for row in rows {
                for expr in row {
                    collect_expr_predict_models(expr, out);
                }
            }
        }
        _ => {}
    }
}

fn collect_select_predict_models(select: &SelectStatement, out: &mut Vec<String>) {
    for item in &select.items {
        if let SelectItem::Expr { expr, .. } = item {
            collect_expr_predict_models(expr, out);
        }
    }
    if let Some(filter) = &select.filter {
        collect_expr_predict_models(filter, out);
    }
    for expr in &select.group_by {
        collect_expr_predict_models(expr, out);
    }
    for key in &select.order_by {
        collect_expr_predict_models(&key.expr, out);
    }
}

fn collect_expr_predict_models(expr: &Expr, out: &mut Vec<String>) {
    match expr {
        Expr::Function { name, args } => {
            if name.eq_ignore_ascii_case("predict") {
                if let Some(Expr::Literal(Literal::Text(model))) = args.first() {
                    if !out.contains(model) {
                        out.push(model.clone());
                    }
                }
            }
            for arg in args {
                collect_expr_predict_models(arg, out);
            }
        }
        Expr::Unary { expr, .. } => collect_expr_predict_models(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_expr_predict_models(left, out);
            collect_expr_predict_models(right, out);
        }
        Expr::IsNull { expr, .. } => collect_expr_predict_models(expr, out),
        Expr::ArrayLiteral(items) => {
            for item in items {
                collect_expr_predict_models(item, out);
            }
        }
        Expr::SparseLiteral(pairs) => {
            for (index, value) in pairs {
                collect_expr_predict_models(index, out);
                collect_expr_predict_models(value, out);
            }
        }
        Expr::Literal(_) | Expr::Column(_) | Expr::Wildcard => {}
    }
}

/// Approximate heap footprint of a materialized row, for charging the
/// statement's [`MemoryBudget`](bismarck_core::governor::MemoryBudget). The
/// estimate is deliberately simple — inline enum size plus the dominant heap
/// payload of each variant — because the budget is a governance backstop, not
/// an allocator.
fn approx_row_bytes(values: &[Value]) -> usize {
    values
        .iter()
        .map(|value| {
            std::mem::size_of::<Value>()
                + match value {
                    Value::Null | Value::Int(_) | Value::Double(_) => 0,
                    Value::Text(s) => s.len(),
                    Value::DenseVec(v) => v.len() * std::mem::size_of::<f64>(),
                    // index + value per stored entry.
                    Value::SparseVec(v) => v.nnz() * 16,
                    Value::Sequence(seq) => seq
                        .iter()
                        .map(|(features, _)| features.nnz() * 16 + 4)
                        .sum(),
                }
        })
        .sum()
}

/// True when the `ORDER BY` clause is the paper's `ORDER BY RANDOM()` shuffle.
fn order_by_is_random(order_by: &[OrderKey]) -> bool {
    order_by.len() == 1
        && matches!(
            &order_by[0].expr,
            Expr::Function { name, args } if name.eq_ignore_ascii_case("random") && args.is_empty()
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run a statement that the test expects to succeed, panicking with the
    /// offending SQL text (not just the error) when it does not.
    fn exec(session: &mut SqlSession, sql: &str) -> QueryResult {
        session
            .execute(sql)
            .unwrap_or_else(|e| panic!("SQL `{sql}` failed: {e}"))
    }

    /// `execute_script` counterpart of [`exec`].
    fn exec_script(session: &mut SqlSession, sql: &str) -> Vec<QueryResult> {
        session
            .execute_script(sql)
            .unwrap_or_else(|e| panic!("SQL script `{sql}` failed: {e}"))
    }

    fn session_with_points() -> SqlSession {
        let mut session = SqlSession::with_seed(11);
        exec_script(
            &mut session,
            "CREATE TABLE points (id INT, x DOUBLE, label DOUBLE, name TEXT);
                 INSERT INTO points VALUES
                   (1, 0.5, 1.0, 'a'),
                   (2, -0.5, -1.0, 'b'),
                   (3, 1.5, 1.0, 'c'),
                   (4, -1.5, -1.0, 'd'),
                   (5, 2.5, 1.0, 'e');",
        );
        session
    }

    #[test]
    fn create_insert_select_roundtrip() {
        let mut session = session_with_points();
        let result = exec(&mut session, "SELECT * FROM points");
        assert_eq!(result.columns, vec!["id", "x", "label", "name"]);
        assert_eq!(result.len(), 5);

        let filtered = exec(
            &mut session,
            "SELECT id, name FROM points WHERE label > 0 ORDER BY id DESC",
        );
        assert_eq!(filtered.len(), 3);
        assert_eq!(filtered.rows[0][0], Value::Int(5));
        assert_eq!(filtered.rows[2][0], Value::Int(1));
    }

    #[test]
    fn insert_with_column_list_fills_missing_with_null() {
        let mut session = session_with_points();
        exec(
            &mut session,
            "INSERT INTO points (id, label) VALUES (6, 1.0)",
        );
        let row = exec(&mut session, "SELECT x FROM points WHERE id = 6");
        assert_eq!(row.rows[0][0], Value::Null);
    }

    #[test]
    fn insert_arity_mismatch_is_rejected_before_writing() {
        let mut session = session_with_points();
        let err = session
            .execute("INSERT INTO points (id, label) VALUES (7, 1.0, 2.0)")
            .unwrap_err();
        assert!(err.to_string().contains("2 named columns"));
        let count = exec(&mut session, "SELECT COUNT(*) FROM points");
        assert_eq!(count.single_value(), Some(&Value::Int(5)));
    }

    #[test]
    fn aggregates_with_and_without_group_by() {
        let mut session = session_with_points();
        let total = exec(&mut session, "SELECT COUNT(*), AVG(x) FROM points");
        assert_eq!(total.rows[0][0], Value::Int(5));
        assert_eq!(total.rows[0][1], Value::Double(0.5));

        let grouped = exec(
            &mut session,
            "SELECT label, COUNT(*) AS n, MAX(x) AS biggest FROM points \
                 GROUP BY label ORDER BY label",
        );
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped.columns, vec!["label", "n", "biggest"]);
        assert_eq!(grouped.rows[0][0], Value::Double(-1.0));
        assert_eq!(grouped.rows[0][1], Value::Int(2));
        assert_eq!(grouped.rows[1][2], Value::Double(2.5));
    }

    #[test]
    fn count_star_over_empty_table_is_zero() {
        let mut session = SqlSession::new();
        exec(&mut session, "CREATE TABLE empty (x INT)");
        let result = exec(&mut session, "SELECT COUNT(*) FROM empty");
        assert_eq!(result.single_value(), Some(&Value::Int(0)));
    }

    #[test]
    fn order_by_random_is_a_permutation_and_seed_dependent() {
        let run = |seed: u64| {
            let mut session = SqlSession::with_seed(seed);
            exec_script(
                &mut session,
                "CREATE TABLE t (id INT);
                     INSERT INTO t VALUES (1),(2),(3),(4),(5),(6),(7),(8),(9),(10);",
            );
            exec(&mut session, "SELECT id FROM t ORDER BY RANDOM()")
                .rows
                .iter()
                .map(|r| r[0].as_int().unwrap())
                .collect::<Vec<_>>()
        };
        let a = run(1);
        let b = run(2);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..=10).collect::<Vec<_>>());
        assert_ne!(a, b, "different seeds should give different shuffles");
        assert_eq!(run(1), a, "same seed must reproduce the shuffle");
    }

    #[test]
    fn limit_caps_rows() {
        let mut session = session_with_points();
        let result = exec(&mut session, "SELECT id FROM points ORDER BY id LIMIT 2");
        assert_eq!(result.len(), 2);
        assert_eq!(result.rows[1][0], Value::Int(2));
    }

    #[test]
    fn tableless_select_evaluates_scalars() {
        let mut session = SqlSession::new();
        let result = exec(&mut session, "SELECT 1 + 2 AS three, 'x'");
        assert_eq!(result.columns, vec!["three", "?column?"]);
        assert_eq!(result.rows[0][0], Value::Int(3));
    }

    #[test]
    fn select_star_without_from_is_rejected() {
        let mut session = SqlSession::new();
        assert!(session.execute("SELECT *").is_err());
    }

    #[test]
    fn wildcard_with_group_by_is_rejected() {
        let mut session = session_with_points();
        let err = session
            .execute("SELECT * FROM points GROUP BY label")
            .unwrap_err();
        assert!(err.to_string().contains("GROUP BY"));
    }

    #[test]
    fn drop_table_removes_it_from_the_catalog() {
        let mut session = session_with_points();
        exec(&mut session, "DROP TABLE points");
        assert!(session.execute("SELECT * FROM points").is_err());
        assert!(!session.database().contains("points"));
    }

    #[test]
    fn unknown_table_and_column_errors_surface() {
        let mut session = session_with_points();
        assert!(matches!(
            session.execute("SELECT * FROM missing").unwrap_err(),
            SqlError::Storage(_)
        ));
        assert!(session.execute("SELECT nope FROM points").is_err());
    }

    #[test]
    fn script_stops_at_first_error() {
        let mut session = SqlSession::new();
        let err = session
            .execute_script("CREATE TABLE t (x INT); INSERT INTO missing VALUES (1); SELECT 1")
            .unwrap_err();
        assert!(matches!(err, SqlError::Storage(_)));
        // The CREATE before the failure still took effect (no transactions).
        assert!(session.database().contains("t"));
    }

    #[test]
    fn type_mismatch_on_insert_is_a_storage_error() {
        let mut session = SqlSession::new();
        exec(&mut session, "CREATE TABLE typed (x INT)");
        let err = session
            .execute("INSERT INTO typed VALUES ('text')")
            .unwrap_err();
        assert!(matches!(err, SqlError::Storage(_)));
    }

    #[test]
    fn end_to_end_svm_training_via_sql() {
        let mut session = SqlSession::with_seed(3);
        exec(
            &mut session,
            "CREATE TABLE LabeledPapers (id INT, vec DENSE_VEC, label DOUBLE)",
        );
        // 40 linearly separable examples.
        for i in 0..40 {
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            exec(
                &mut session,
                &format!(
                    "INSERT INTO LabeledPapers VALUES ({i}, ARRAY[{}, {}], {y})",
                    y * 2.0,
                    -y
                ),
            );
        }
        let summary = exec(
            &mut session,
            "SELECT SVMTrain('myModel', 'LabeledPapers', 'vec', 'label', 0.2, 8)",
        );
        assert_eq!(summary.len(), 1);
        assert!(session.database().contains("myModel"));

        let predictions = exec(
            &mut session,
            "SELECT SVMPredict('myModel', 'LabeledPapers', 'vec')",
        );
        assert_eq!(predictions.len(), 40);

        // The persisted model is an ordinary table we can query.
        let coefs = exec(&mut session, "SELECT COUNT(*) FROM myModel");
        assert_eq!(coefs.single_value(), Some(&Value::Int(2)));
    }

    #[test]
    fn predict_over_a_persisted_model_table_gives_raw_scores() {
        let mut session = SqlSession::with_seed(3);
        exec(
            &mut session,
            "CREATE TABLE d (id INT, vec DENSE_VEC, label DOUBLE)",
        );
        for i in 0..40 {
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            exec(
                &mut session,
                &format!(
                    "INSERT INTO d VALUES ({i}, ARRAY[{}, {}], {y})",
                    y * 2.0,
                    -y
                ),
            );
        }
        exec(
            &mut session,
            "SELECT SVMTrain('m', 'd', 'vec', 'label', 0.2, 8)",
        );

        // Join predictions against the training table: a persisted model
        // serves the raw linear score, whose sign matches the label.
        let scored = exec(
            &mut session,
            "SELECT label, PREDICT('m', vec) AS score FROM d",
        );
        assert_eq!(scored.len(), 40);
        for row in &scored.rows {
            let label = row[0].as_double().unwrap();
            let score = row[1].as_double().unwrap();
            assert!(score.is_finite());
            assert!(label * score > 0.0, "label {label} vs score {score}");
        }

        // PREDICT also works in predicates and tableless form.
        let positives = exec(
            &mut session,
            "SELECT COUNT(*) FROM d WHERE PREDICT('m', vec) > 0",
        );
        assert_eq!(positives.single_value(), Some(&Value::Int(20)));
        let one = exec(&mut session, "SELECT PREDICT('m', 2.0, -1.0)");
        assert!(one.rows[0][0].as_double().unwrap() > 0.0);
    }

    #[test]
    fn predict_against_a_registered_handle_applies_the_task_link() {
        let mut session = session_with_points();
        let handle = ModelHandle::new(ServingTask::Logistic, 2);
        handle.publish(&[1.0, 0.0]).unwrap();
        session.register_model_handle("live", handle.clone());

        // The logistic handle serves probabilities in (0, 1).
        let probs = exec(
            &mut session,
            "SELECT PREDICT('live', x, 0.0) AS p FROM points ORDER BY id",
        );
        assert_eq!(probs.len(), 5);
        for row in &probs.rows {
            let p = row[0].as_double().unwrap();
            assert!((0.0..=1.0).contains(&p), "not a probability: {p}");
        }

        // A publish between statements is visible to the next statement.
        handle.publish(&[-1.0, 0.0]).unwrap();
        let flipped = exec(&mut session, "SELECT PREDICT('live', 10.0, 0.0)");
        assert!(flipped.rows[0][0].as_double().unwrap() < 0.5);
        assert!(session.model_handle("live").is_some());

        // Unknown model names surface a helpful evaluation error.
        let err = session
            .execute("SELECT PREDICT('nope', 1.0, 2.0)")
            .unwrap_err();
        assert!(err.to_string().contains("unknown model"), "{err}");
    }

    #[test]
    fn analytics_over_a_bad_column_is_an_error_not_a_panic() {
        let mut session = session_with_points();
        // `name` holds TEXT, not feature vectors; `nope` does not exist.
        let err = session
            .execute("SELECT SVMTrain('m', 'points', 'name', 'label')")
            .unwrap_err();
        assert!(matches!(err, SqlError::Analytics(_)), "got: {err}");
        let err = session
            .execute("SELECT SVMTrain('m', 'points', 'nope', 'label')")
            .unwrap_err();
        assert!(matches!(err, SqlError::Analytics(_)), "got: {err}");
        // Nothing was persisted by the failed calls.
        assert!(!session.database().contains("m"));
    }

    #[test]
    fn scalar_function_arity_mismatch_is_an_analysis_error() {
        let mut session = SqlSession::new();
        let err = session.execute("SELECT ABS(1, 2)").unwrap_err();
        assert!(matches!(err, SqlError::Analysis(_)), "got: {err}");
        assert!(err.to_string().contains("argument"));
    }

    #[test]
    fn arithmetic_over_a_non_numeric_cell_is_an_evaluation_error() {
        let mut session = session_with_points();
        let err = session.execute("SELECT name + 1 FROM points").unwrap_err();
        assert!(matches!(err, SqlError::Evaluation(_)), "got: {err}");
        assert!(err.to_string().contains("not numeric"));
    }

    #[test]
    fn analytics_call_must_be_the_only_select_item() {
        let mut session = session_with_points();
        let err = session
            .execute("SELECT SVMTrain('m', 'points', 'x', 'label'), 1")
            .unwrap_err();
        assert!(err.to_string().contains("only item"));
    }

    #[test]
    fn create_table_as_select_materializes_the_papers_shuffle_once() {
        let mut session = session_with_points();
        exec(
            &mut session,
            "CREATE TABLE shuffled AS SELECT * FROM points ORDER BY RANDOM()",
        );
        // Same rows, same schema shape, independent of the source table.
        let n = exec(&mut session, "SELECT COUNT(*) FROM shuffled");
        assert_eq!(n.single_value(), Some(&Value::Int(5)));
        let described = exec(&mut session, "DESCRIBE shuffled");
        assert_eq!(described.len(), 4);
        let ids: Vec<i64> = exec(&mut session, "SELECT id FROM shuffled ORDER BY id")
            .rows
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);

        // A projection / aggregate result can be materialized too, with
        // integers widened to DOUBLE where the column mixes both.
        exec(
            &mut session,
            "CREATE TABLE class_sizes AS \
                 SELECT label, COUNT(*) AS n, AVG(x) AS mean_x FROM points GROUP BY label",
        );
        let rows = exec(&mut session, "SELECT COUNT(*) FROM class_sizes");
        assert_eq!(rows.single_value(), Some(&Value::Int(2)));

        // Creating over an existing name is rejected.
        assert!(session
            .execute("CREATE TABLE shuffled AS SELECT * FROM points")
            .is_err());
    }

    #[test]
    fn show_tables_lists_names_and_row_counts() {
        let mut session = session_with_points();
        exec(&mut session, "CREATE TABLE empty (x INT)");
        let tables = exec(&mut session, "SHOW TABLES");
        assert_eq!(tables.len(), 2);
        assert_eq!(tables.rows[0][0], Value::Text("empty".into()));
        assert_eq!(tables.rows[0][1], Value::Int(0));
        assert_eq!(tables.rows[1][0], Value::Text("points".into()));
        assert_eq!(tables.rows[1][1], Value::Int(5));
    }

    #[test]
    fn describe_reports_columns_types_and_nullability() {
        let mut session = session_with_points();
        let described = exec(&mut session, "DESCRIBE points");
        assert_eq!(described.columns, vec!["column", "type", "nullable"]);
        assert_eq!(described.rows[0][0], Value::Text("id".into()));
        assert_eq!(described.rows[0][1], Value::Text("INT".into()));
        assert_eq!(described.rows[1][1], Value::Text("DOUBLE".into()));
        assert!(session.execute("DESCRIBE missing").is_err());
    }

    #[test]
    fn shuffle_table_permutes_storage_order_deterministically_with_seed() {
        let mut session = session_with_points();
        let before: Vec<i64> = exec(&mut session, "SELECT id FROM points")
            .rows
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        exec(&mut session, "SHUFFLE TABLE points SEED 9");
        let after: Vec<i64> = exec(&mut session, "SELECT id FROM points")
            .rows
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        let mut sorted = after.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3, 4, 5]);
        assert_ne!(before, after, "seeded shuffle should move at least one row");

        // Re-running with the same seed from a fresh copy gives the same order.
        let mut session2 = session_with_points();
        exec(&mut session2, "SHUFFLE TABLE points SEED 9");
        let after2: Vec<i64> = exec(&mut session2, "SELECT id FROM points")
            .rows
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        assert_eq!(after, after2);
    }

    #[test]
    fn cluster_table_sorts_storage_order() {
        let mut session = session_with_points();
        exec(&mut session, "CLUSTER TABLE points BY x DESC");
        let xs: Vec<f64> = exec(&mut session, "SELECT x FROM points")
            .rows
            .iter()
            .map(|r| r[0].as_double().unwrap())
            .collect();
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_eq!(xs, sorted);

        // Clustering by a missing column is rejected and leaves the table intact.
        assert!(session.execute("CLUSTER TABLE points BY missing").is_err());
        assert_eq!(
            exec(&mut session, "SELECT COUNT(*) FROM points").single_value(),
            Some(&Value::Int(5))
        );
    }

    #[test]
    fn copy_to_and_from_roundtrips_through_a_file() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("bismarck_sql_copy_test_{}.csv", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();

        let mut session = session_with_points();
        let exported = exec(&mut session, &format!("COPY points TO '{path_str}'"));
        assert_eq!(exported.status, "COPY 5");

        // Append the exported rows into a second table with the same schema.
        exec(
            &mut session,
            "CREATE TABLE points2 (id INT, x DOUBLE, label DOUBLE, name TEXT)",
        );
        let imported = exec(&mut session, &format!("COPY points2 FROM '{path_str}'"));
        assert_eq!(imported.status, "COPY 5");
        let n = exec(&mut session, "SELECT COUNT(*) FROM points2");
        assert_eq!(n.single_value(), Some(&Value::Int(5)));
        let avg_match = exec(&mut session, "SELECT AVG(x) FROM points2")
            .single_value()
            .unwrap()
            .as_double()
            .unwrap();
        assert!((avg_match - 0.5).abs() < 1e-9);

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn copy_from_missing_file_is_an_error_and_loads_nothing() {
        let mut session = session_with_points();
        let err = session
            .execute("COPY points FROM '/definitely/not/here.csv'")
            .unwrap_err();
        assert!(matches!(err, SqlError::Evaluation(_)));
        let n = exec(&mut session, "SELECT COUNT(*) FROM points");
        assert_eq!(n.single_value(), Some(&Value::Int(5)));
    }

    #[test]
    fn svm_loss_via_sql_after_training() {
        let mut session = SqlSession::with_seed(13);
        exec(
            &mut session,
            "CREATE TABLE d (id INT, vec DENSE_VEC, label DOUBLE)",
        );
        for i in 0..30 {
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            exec(
                &mut session,
                &format!(
                    "INSERT INTO d VALUES ({i}, ARRAY[{}, {}], {y})",
                    y,
                    -y * 0.5
                ),
            );
        }
        exec(
            &mut session,
            "SELECT SVMTrain('m', 'd', 'vec', 'label', 0.2, 10)",
        );
        let loss = exec(&mut session, "SELECT SVMLoss('m', 'd', 'vec', 'label')");
        let value = loss.single_value().unwrap().as_double().unwrap();
        assert!(value.is_finite() && value >= 0.0);
        // A well-separated toy problem should reach a small hinge loss.
        assert!(value < 30.0);
    }

    #[test]
    fn columnar_table_supports_the_full_statement_surface() {
        let mut session = SqlSession::with_seed(7);
        exec(
            &mut session,
            "CREATE TABLE points (id INT, x DOUBLE, label DOUBLE, name TEXT) STORAGE = COLUMNAR",
        );
        exec_script(
            &mut session,
            "INSERT INTO points VALUES
               (1, 0.5, 1.0, 'a'), (2, -0.5, -1.0, 'b'), (3, 1.5, 1.0, 'c')",
        );
        assert!(session.columnar_table("points").is_some());
        assert!(!session.database().contains("points"));

        let all = exec(&mut session, "SELECT * FROM points ORDER BY id");
        assert_eq!(all.len(), 3);
        assert_eq!(all.columns, vec!["id", "x", "label", "name"]);
        let filtered = exec(&mut session, "SELECT id FROM points WHERE label > 0");
        assert_eq!(filtered.len(), 2);
        let agg = exec(&mut session, "SELECT COUNT(*), AVG(x) FROM points");
        assert_eq!(agg.rows[0][0], Value::Int(3));

        let described = exec(&mut session, "DESCRIBE points");
        assert_eq!(described.len(), 4);
        let tables = exec(&mut session, "SHOW TABLES");
        assert_eq!(tables.rows[0][0], Value::Text("points".into()));
        assert_eq!(tables.rows[0][1], Value::Int(3));

        exec(&mut session, "SHUFFLE TABLE points SEED 5");
        exec(&mut session, "CLUSTER TABLE points BY x ASC");
        let xs: Vec<f64> = exec(&mut session, "SELECT x FROM points")
            .rows
            .iter()
            .map(|r| r[0].as_double().unwrap())
            .collect();
        assert_eq!(xs, vec![-0.5, 0.5, 1.5]);

        exec(&mut session, "DROP TABLE points");
        assert!(session.columnar_table("points").is_none());
        assert!(session.execute("SELECT * FROM points").is_err());
    }

    #[test]
    fn columnar_name_collisions_are_rejected_both_ways() {
        let mut session = SqlSession::new();
        exec(&mut session, "CREATE TABLE t (x INT)");
        assert!(session
            .execute("CREATE TABLE t (x INT) STORAGE = COLUMNAR")
            .is_err());
        exec(&mut session, "CREATE TABLE c (x INT) STORAGE = COLUMNAR");
        assert!(session.execute("CREATE TABLE c (x INT)").is_err());
        assert!(session
            .execute("CREATE TABLE c STORAGE = COLUMNAR AS SELECT * FROM t")
            .is_err());
    }

    #[test]
    fn create_columnar_as_select_materializes_query_results() {
        let mut session = session_with_points();
        exec(
            &mut session,
            "CREATE TABLE cpoints STORAGE = COLUMNAR AS SELECT * FROM points",
        );
        let table = session.columnar_table("cpoints").expect("columnar table");
        assert_eq!(table.len(), 5);
        let n = exec(&mut session, "SELECT COUNT(*) FROM cpoints");
        assert_eq!(n.single_value(), Some(&Value::Int(5)));
    }

    #[test]
    fn copy_roundtrips_through_a_columnar_table() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "bismarck_sql_columnar_copy_{}.csv",
            std::process::id()
        ));
        let path_str = path.to_str().unwrap().to_string();

        let mut session = session_with_points();
        exec(
            &mut session,
            "CREATE TABLE cpoints (id INT, x DOUBLE, label DOUBLE, name TEXT) STORAGE = COLUMNAR",
        );
        exec(&mut session, &format!("COPY points TO '{path_str}'"));
        let imported = exec(&mut session, &format!("COPY cpoints FROM '{path_str}'"));
        assert_eq!(imported.status, "COPY 5");

        // Export the columnar table and re-import into a fresh row table:
        // tuple-for-tuple identical content.
        exec(&mut session, &format!("COPY cpoints TO '{path_str}'"));
        exec(
            &mut session,
            "CREATE TABLE back (id INT, x DOUBLE, label DOUBLE, name TEXT)",
        );
        exec(&mut session, &format!("COPY back FROM '{path_str}'"));
        let row = exec(&mut session, "SELECT * FROM back ORDER BY id");
        let col = exec(&mut session, "SELECT * FROM cpoints ORDER BY id");
        assert_eq!(row.rows, col.rows);

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn training_over_columnar_matches_row_store_bit_for_bit() {
        let build = |columnar: bool| {
            let mut session = SqlSession::with_seed(3);
            let storage = if columnar { " STORAGE = COLUMNAR" } else { "" };
            exec(
                &mut session,
                &format!("CREATE TABLE d (id INT, vec DENSE_VEC, label DOUBLE){storage}"),
            );
            for i in 0..40 {
                let y = if i % 2 == 0 { 1.0 } else { -1.0 };
                exec(
                    &mut session,
                    &format!(
                        "INSERT INTO d VALUES ({i}, ARRAY[{}, {}], {y})",
                        y * 2.0,
                        -y
                    ),
                );
            }
            exec(
                &mut session,
                "SELECT SVMTrain('m', 'd', 'vec', 'label', 0.2, 8)",
            );
            let weights = exec(&mut session, "SELECT * FROM m ORDER BY idx");
            let loss = exec(&mut session, "SELECT SVMLoss('m', 'd', 'vec', 'label')");
            let preds = exec(&mut session, "SELECT SVMPredict('m', 'd', 'vec')");
            (weights.rows, loss.rows, preds.rows)
        };
        let (row_w, row_l, row_p) = build(false);
        let (col_w, col_l, col_p) = build(true);
        assert_eq!(row_w, col_w, "model weights must be bit-identical");
        assert_eq!(row_l, col_l);
        assert_eq!(row_p, col_p);
    }

    #[test]
    fn sequence_analytics_over_columnar_is_a_clear_error() {
        let mut session = SqlSession::new();
        exec(
            &mut session,
            "CREATE TABLE seqs (s SEQUENCE) STORAGE = COLUMNAR",
        );
        let err = session
            .execute("SELECT CRFTrain('m', 'seqs', 's')")
            .unwrap_err();
        assert!(
            err.to_string().contains("not supported over columnar"),
            "{err}"
        );
    }

    #[test]
    fn random_scalar_function_varies_per_row() {
        let mut session = session_with_points();
        let result = exec(&mut session, "SELECT RANDOM() AS r FROM points");
        let values: Vec<f64> = result
            .rows
            .iter()
            .map(|r| r[0].as_double().unwrap())
            .collect();
        assert_eq!(values.len(), 5);
        let distinct = values
            .iter()
            .map(|v| format!("{v:.12}"))
            .collect::<std::collections::HashSet<_>>();
        assert!(
            distinct.len() > 1,
            "RANDOM() should not repeat the same value every row"
        );
    }
}
