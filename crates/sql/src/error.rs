//! Errors surfaced by the SQL front-end.

use bismarck_core::frontend::FrontendError;
use bismarck_core::governor::{AdmissionError, BudgetExceeded, GuardViolation};
use bismarck_storage::StorageError;

/// Any failure while lexing, parsing, planning or executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// The statement text could not be tokenized (bad character, unterminated
    /// string literal, malformed number).
    Lex {
        /// Byte offset of the offending character.
        position: usize,
        /// Human-readable description.
        message: String,
    },
    /// The token stream does not form a valid statement.
    Parse {
        /// Token index where parsing failed.
        position: usize,
        /// Human-readable description.
        message: String,
    },
    /// The statement is well-formed but refers to unknown tables, columns or
    /// functions, or mixes types in an unsupported way.
    Analysis(String),
    /// A runtime failure while evaluating an expression (division by zero,
    /// non-numeric operand, aggregate over an empty input where undefined).
    Evaluation(String),
    /// The underlying storage engine rejected an operation.
    Storage(StorageError),
    /// An analytics front-end call (`SVMTrain`, ...) failed.
    Analytics(String),
    /// The statement's [`QueryGuard`](bismarck_core::governor::QueryGuard)
    /// deadline expired before the statement finished. The session stays
    /// usable: the failed statement leaves no partial catalog state behind
    /// beyond what the WAL records (and recovery replays or drops atomically).
    Timeout,
    /// The statement was cooperatively cancelled via
    /// [`QueryGuard::cancel`](bismarck_core::governor::QueryGuard::cancel)
    /// (or a [`Governor::shutdown`](bismarck_core::governor::Governor::shutdown)
    /// sweep) before it finished.
    Cancelled,
    /// Materializing intermediate results exceeded the statement's memory
    /// budget. Carries the typed accounting record from the governor.
    MemoryBudget(BudgetExceeded),
    /// The governor refused to admit the statement (concurrency limit
    /// reached, or the process is shutting down).
    Admission(AdmissionError),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            SqlError::Parse { position, message } => {
                write!(f, "parse error at token {position}: {message}")
            }
            SqlError::Analysis(msg) => write!(f, "analysis error: {msg}"),
            SqlError::Evaluation(msg) => write!(f, "evaluation error: {msg}"),
            SqlError::Storage(e) => write!(f, "storage error: {e}"),
            SqlError::Analytics(msg) => write!(f, "analytics error: {msg}"),
            SqlError::Timeout => write!(f, "statement deadline exceeded"),
            SqlError::Cancelled => write!(f, "statement cancelled"),
            SqlError::MemoryBudget(e) => write!(f, "{e}"),
            SqlError::Admission(e) => write!(f, "admission refused: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<StorageError> for SqlError {
    fn from(e: StorageError) -> Self {
        SqlError::Storage(e)
    }
}

impl From<FrontendError> for SqlError {
    fn from(e: FrontendError) -> Self {
        SqlError::Analytics(e.to_string())
    }
}

impl From<GuardViolation> for SqlError {
    fn from(v: GuardViolation) -> Self {
        match v {
            GuardViolation::DeadlineExceeded => SqlError::Timeout,
            GuardViolation::Cancelled => SqlError::Cancelled,
        }
    }
}

impl From<BudgetExceeded> for SqlError {
    fn from(e: BudgetExceeded) -> Self {
        SqlError::MemoryBudget(e)
    }
}

impl From<AdmissionError> for SqlError {
    fn from(e: AdmissionError) -> Self {
        SqlError::Admission(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_positions_and_messages() {
        let lex = SqlError::Lex {
            position: 7,
            message: "unterminated string".into(),
        };
        assert!(lex.to_string().contains("byte 7"));
        assert!(lex.to_string().contains("unterminated"));

        let parse = SqlError::Parse {
            position: 3,
            message: "expected FROM".into(),
        };
        assert!(parse.to_string().contains("token 3"));

        let storage: SqlError = StorageError::UnknownTable("t".into()).into();
        assert!(matches!(storage, SqlError::Storage(_)));
        assert!(storage.to_string().contains("storage error"));
    }

    #[test]
    fn frontend_errors_map_to_analytics() {
        let err: SqlError = FrontendError::InvalidInput("empty table".into()).into();
        assert!(matches!(err, SqlError::Analytics(_)));
        assert!(err.to_string().contains("empty table"));
    }
}
