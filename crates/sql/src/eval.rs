//! Scalar and aggregate expression evaluation over storage [`Value`]s.
//!
//! Booleans are represented as `Value::Int(1)` / `Value::Int(0)`; any
//! non-zero numeric value is truthy and NULL is falsy, which matches how the
//! executor uses predicates (a `WHERE` clause keeps a row only when its
//! predicate is truthy, so NULL comparisons drop the row, as in SQL's
//! three-valued logic collapsed to two values).

use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

use bismarck_core::serving::ModelSnapshot;
use bismarck_linalg::{DenseVector, SparseVector};
use bismarck_storage::{Schema, Value};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::ast::{is_aggregate_function, BinaryOp, Expr, Literal, UnaryOp};
use crate::error::{Result, SqlError};

/// Mutable evaluation context shared across a statement: the deterministic
/// RNG backing `RANDOM()` and the per-statement model cache backing
/// `PREDICT()`.
pub struct EvalContext {
    /// Session RNG; seeded so scripts are reproducible.
    pub rng: StdRng,
    /// Model snapshots resolved for `PREDICT()` calls, keyed by model name.
    /// The executor acquires each referenced model **once per statement**
    /// before evaluation starts, so every row of a `SELECT` is scored
    /// against the same snapshot even while training publishes new versions
    /// concurrently.
    pub models: HashMap<String, Arc<ModelSnapshot>>,
}

impl EvalContext {
    /// A context whose RNG stream is seeded with `seed` and whose model
    /// cache starts empty.
    pub fn with_seed(seed: u64) -> Self {
        EvalContext {
            rng: StdRng::seed_from_u64(seed),
            models: HashMap::new(),
        }
    }
}

/// A row visible to column references during evaluation.
#[derive(Clone, Copy)]
pub struct RowContext<'a> {
    /// The source table's schema (resolves column names to indices).
    pub schema: &'a Schema,
    /// The current row's values.
    pub values: &'a [Value],
}

impl<'a> RowContext<'a> {
    fn column(&self, name: &str) -> Result<Value> {
        let idx = self
            .schema
            .index_of(name)
            .map_err(|_| SqlError::Analysis(format!("unknown column '{name}'")))?;
        Ok(self.values[idx].clone())
    }
}

/// Evaluate a scalar expression. Aggregate calls are rejected here; the
/// executor routes grouped queries through [`evaluate_grouped`].
pub fn evaluate(expr: &Expr, row: Option<RowContext<'_>>, ctx: &mut EvalContext) -> Result<Value> {
    match expr {
        Expr::Literal(lit) => Ok(literal_value(lit)),
        Expr::Column(name) => match row {
            Some(row) => row.column(name),
            None => Err(SqlError::Analysis(format!(
                "column '{name}' referenced in a query without a FROM clause"
            ))),
        },
        Expr::Wildcard => Err(SqlError::Analysis(
            "'*' is only valid inside COUNT(*)".to_string(),
        )),
        Expr::Unary { op, expr } => {
            let v = evaluate(expr, row, ctx)?;
            apply_unary(*op, v)
        }
        Expr::Binary { left, op, right } => {
            let l = evaluate(left, row, ctx)?;
            let r = evaluate(right, row, ctx)?;
            apply_binary(*op, l, r)
        }
        Expr::IsNull { expr, negated } => {
            let v = evaluate(expr, row, ctx)?;
            let is_null = v.is_null();
            Ok(bool_value(if *negated { !is_null } else { is_null }))
        }
        Expr::Function { name, args } => {
            if is_aggregate_function(name) {
                return Err(SqlError::Analysis(format!(
                    "aggregate {name}() is not allowed in this context"
                )));
            }
            let mut values = Vec::with_capacity(args.len());
            for arg in args {
                values.push(evaluate(arg, row, ctx)?);
            }
            apply_scalar_function(name, &values, ctx)
        }
        Expr::ArrayLiteral(items) => {
            let mut data = Vec::with_capacity(items.len());
            for item in items {
                let v = evaluate(item, row, ctx)?;
                data.push(v.as_double().ok_or_else(|| {
                    SqlError::Evaluation("ARRAY elements must be numeric".to_string())
                })?);
            }
            Ok(Value::DenseVec(DenseVector::from(data)))
        }
        Expr::SparseLiteral(pairs) => {
            let mut entries = Vec::with_capacity(pairs.len());
            for (index_expr, value_expr) in pairs {
                let idx = evaluate(index_expr, row, ctx)?
                    .as_int()
                    .filter(|&i| i >= 0)
                    .ok_or_else(|| {
                        SqlError::Evaluation(
                            "sparse-vector indices must be non-negative integers".to_string(),
                        )
                    })?;
                let value = evaluate(value_expr, row, ctx)?.as_double().ok_or_else(|| {
                    SqlError::Evaluation("sparse-vector values must be numeric".to_string())
                })?;
                entries.push((idx as usize, value));
            }
            Ok(Value::SparseVec(SparseVector::from_pairs(entries)))
        }
    }
}

/// Evaluate a select-item expression over a group of rows: aggregate calls
/// reduce over the whole group, everything else is evaluated against the
/// group's first row (the usual "grouped columns only" contract).
pub fn evaluate_grouped(
    expr: &Expr,
    schema: &Schema,
    rows: &[Vec<Value>],
    ctx: &mut EvalContext,
) -> Result<Value> {
    match expr {
        Expr::Function { name, args } if is_aggregate_function(name) => {
            apply_aggregate(name, args, schema, rows, ctx)
        }
        Expr::Unary { op, expr } => {
            let v = evaluate_grouped(expr, schema, rows, ctx)?;
            apply_unary(*op, v)
        }
        Expr::Binary { left, op, right } => {
            let l = evaluate_grouped(left, schema, rows, ctx)?;
            let r = evaluate_grouped(right, schema, rows, ctx)?;
            apply_binary(*op, l, r)
        }
        Expr::IsNull { expr, negated } => {
            let v = evaluate_grouped(expr, schema, rows, ctx)?;
            let is_null = v.is_null();
            Ok(bool_value(if *negated { !is_null } else { is_null }))
        }
        other => {
            let row = rows
                .first()
                .map(|values| RowContext { schema, values })
                .ok_or_else(|| SqlError::Evaluation("aggregate over an empty group".into()))?;
            evaluate(other, Some(row), ctx)
        }
    }
}

fn apply_aggregate(
    name: &str,
    args: &[Expr],
    schema: &Schema,
    rows: &[Vec<Value>],
    ctx: &mut EvalContext,
) -> Result<Value> {
    let upper = name.to_ascii_uppercase();
    if upper == "COUNT" && matches!(args.first(), Some(Expr::Wildcard)) {
        return Ok(Value::Int(rows.len() as i64));
    }
    let arg = args.first().ok_or_else(|| {
        SqlError::Analysis(format!("{upper}() requires an argument (or * for COUNT)"))
    })?;
    // Evaluate the argument for every row, skipping NULLs like SQL does.
    let mut values = Vec::with_capacity(rows.len());
    for row in rows {
        let v = evaluate(
            arg,
            Some(RowContext {
                schema,
                values: row,
            }),
            ctx,
        )?;
        if !v.is_null() {
            values.push(v);
        }
    }
    match upper.as_str() {
        "COUNT" => Ok(Value::Int(values.len() as i64)),
        "SUM" => {
            let sum: f64 = numeric_values(&values, "SUM")?.into_iter().sum();
            if values.is_empty() {
                Ok(Value::Null)
            } else {
                Ok(Value::Double(sum))
            }
        }
        "AVG" => {
            let nums = numeric_values(&values, "AVG")?;
            if nums.is_empty() {
                Ok(Value::Null)
            } else {
                Ok(Value::Double(nums.iter().sum::<f64>() / nums.len() as f64))
            }
        }
        "MIN" => Ok(values
            .into_iter()
            .min_by(compare_values)
            .unwrap_or(Value::Null)),
        "MAX" => Ok(values
            .into_iter()
            .max_by(compare_values)
            .unwrap_or(Value::Null)),
        other => Err(SqlError::Analysis(format!("unknown aggregate {other}()"))),
    }
}

fn numeric_values(values: &[Value], agg: &str) -> Result<Vec<f64>> {
    values
        .iter()
        .map(|v| {
            v.as_double()
                .ok_or_else(|| SqlError::Evaluation(format!("{agg}() argument must be numeric")))
        })
        .collect()
}

fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Null => Value::Null,
        Literal::Bool(b) => bool_value(*b),
        Literal::Int(v) => Value::Int(*v),
        Literal::Double(v) => Value::Double(*v),
        Literal::Text(s) => Value::Text(s.clone()),
    }
}

/// The boolean encoding used by predicates.
pub fn bool_value(b: bool) -> Value {
    Value::Int(if b { 1 } else { 0 })
}

/// Truthiness of a value: non-zero numerics are true, NULL and everything
/// else is false.
pub fn is_truthy(value: &Value) -> bool {
    match value {
        Value::Int(v) => *v != 0,
        Value::Double(v) => *v != 0.0,
        _ => false,
    }
}

fn apply_unary(op: UnaryOp, value: Value) -> Result<Value> {
    match op {
        UnaryOp::Neg => match value {
            Value::Int(v) => v
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| SqlError::Evaluation("integer overflow in negation".into())),
            Value::Double(v) => Ok(Value::Double(-v)),
            Value::Null => Ok(Value::Null),
            other => Err(SqlError::Evaluation(format!("cannot negate {other:?}"))),
        },
        UnaryOp::Not => {
            if value.is_null() {
                Ok(Value::Null)
            } else {
                Ok(bool_value(!is_truthy(&value)))
            }
        }
    }
}

fn apply_binary(op: BinaryOp, left: Value, right: Value) -> Result<Value> {
    use BinaryOp::*;
    match op {
        And => Ok(bool_value(is_truthy(&left) && is_truthy(&right))),
        Or => Ok(bool_value(is_truthy(&left) || is_truthy(&right))),
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            if left.is_null() || right.is_null() {
                // Comparisons against NULL are never true.
                return Ok(bool_value(false));
            }
            let ordering = compare_values(&left, &right);
            let result = match op {
                Eq => ordering == Ordering::Equal,
                NotEq => ordering != Ordering::Equal,
                Lt => ordering == Ordering::Less,
                LtEq => ordering != Ordering::Greater,
                Gt => ordering == Ordering::Greater,
                GtEq => ordering != Ordering::Less,
                _ => unreachable!(),
            };
            Ok(bool_value(result))
        }
        Add | Sub | Mul | Div => {
            if left.is_null() || right.is_null() {
                return Ok(Value::Null);
            }
            // Integer arithmetic stays integral except for division, and is
            // checked: overflow is a reportable evaluation error, not a
            // panic (or a silent wrap in release builds).
            if let (Value::Int(a), Value::Int(b)) = (&left, &right) {
                let overflow =
                    || SqlError::Evaluation(format!("integer overflow in {a} {op:?} {b}"));
                return match op {
                    Add => a.checked_add(*b).map(Value::Int).ok_or_else(overflow),
                    Sub => a.checked_sub(*b).map(Value::Int).ok_or_else(overflow),
                    Mul => a.checked_mul(*b).map(Value::Int).ok_or_else(overflow),
                    Div => {
                        if *b == 0 {
                            Err(SqlError::Evaluation("division by zero".into()))
                        } else {
                            Ok(Value::Double(*a as f64 / *b as f64))
                        }
                    }
                    _ => unreachable!(),
                };
            }
            let a = left.as_double().ok_or_else(|| {
                SqlError::Evaluation(format!("left operand of {op:?} is not numeric"))
            })?;
            let b = right.as_double().ok_or_else(|| {
                SqlError::Evaluation(format!("right operand of {op:?} is not numeric"))
            })?;
            match op {
                Add => Ok(Value::Double(a + b)),
                Sub => Ok(Value::Double(a - b)),
                Mul => Ok(Value::Double(a * b)),
                Div => {
                    if b == 0.0 {
                        Err(SqlError::Evaluation("division by zero".into()))
                    } else {
                        Ok(Value::Double(a / b))
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Total order over values used by comparisons, `ORDER BY`, `MIN` and `MAX`:
/// NULL sorts first, numerics compare numerically (integers and doubles mix),
/// text compares lexicographically, and other types compare by their debug
/// representation so ordering is at least deterministic.
pub fn compare_values(a: &Value, b: &Value) -> Ordering {
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Null, _) => Ordering::Less,
        (_, Value::Null) => Ordering::Greater,
        (Value::Text(x), Value::Text(y)) => x.cmp(y),
        _ => match (a.as_double(), b.as_double()) {
            (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
            _ => format!("{a:?}").cmp(&format!("{b:?}")),
        },
    }
}

fn apply_scalar_function(name: &str, args: &[Value], ctx: &mut EvalContext) -> Result<Value> {
    let upper = name.to_ascii_uppercase();
    let arity_error = |expected: usize| {
        SqlError::Analysis(format!(
            "{upper}() expects {expected} argument(s), got {}",
            args.len()
        ))
    };
    let numeric = |i: usize| -> Result<f64> {
        args.get(i)
            .and_then(Value::as_double)
            .ok_or_else(|| SqlError::Evaluation(format!("{upper}() argument must be numeric")))
    };
    match upper.as_str() {
        "RANDOM" => {
            if !args.is_empty() {
                return Err(arity_error(0));
            }
            Ok(Value::Double(ctx.rng.gen_range(0.0..1.0)))
        }
        "ABS" => {
            if args.len() != 1 {
                return Err(arity_error(1));
            }
            match &args[0] {
                Value::Int(v) => v
                    .checked_abs()
                    .map(Value::Int)
                    .ok_or_else(|| SqlError::Evaluation("integer overflow in ABS()".into())),
                _ => Ok(Value::Double(numeric(0)?.abs())),
            }
        }
        "SQRT" => {
            if args.len() != 1 {
                return Err(arity_error(1));
            }
            Ok(Value::Double(numeric(0)?.sqrt()))
        }
        "EXP" => {
            if args.len() != 1 {
                return Err(arity_error(1));
            }
            Ok(Value::Double(numeric(0)?.exp()))
        }
        "LN" | "LOG" => {
            if args.len() != 1 {
                return Err(arity_error(1));
            }
            Ok(Value::Double(numeric(0)?.ln()))
        }
        "FLOOR" => {
            if args.len() != 1 {
                return Err(arity_error(1));
            }
            Ok(Value::Double(numeric(0)?.floor()))
        }
        "CEIL" | "CEILING" => {
            if args.len() != 1 {
                return Err(arity_error(1));
            }
            Ok(Value::Double(numeric(0)?.ceil()))
        }
        "POWER" | "POW" => {
            if args.len() != 2 {
                return Err(arity_error(2));
            }
            Ok(Value::Double(numeric(0)?.powf(numeric(1)?)))
        }
        "SIGMOID" => {
            if args.len() != 1 {
                return Err(arity_error(1));
            }
            Ok(Value::Double(bismarck_linalg::sigmoid(numeric(0)?)))
        }
        "LENGTH" => {
            if args.len() != 1 {
                return Err(arity_error(1));
            }
            match &args[0] {
                Value::Text(s) => Ok(Value::Int(s.chars().count() as i64)),
                other => Err(SqlError::Evaluation(format!(
                    "LENGTH() expects text, got {other:?}"
                ))),
            }
        }
        "DIM" => {
            if args.len() != 1 {
                return Err(arity_error(1));
            }
            args[0]
                .feature_view()
                .map(|fv| Value::Int(fv.dimension() as i64))
                .ok_or_else(|| SqlError::Evaluation("DIM() expects a vector".into()))
        }
        "NNZ" => {
            if args.len() != 1 {
                return Err(arity_error(1));
            }
            args[0]
                .feature_view()
                .map(|fv| Value::Int(fv.nnz() as i64))
                .ok_or_else(|| SqlError::Evaluation("NNZ() expects a vector".into()))
        }
        "DOT" => {
            if args.len() != 2 {
                return Err(arity_error(2));
            }
            let a = args[0]
                .feature_view()
                .ok_or_else(|| SqlError::Evaluation("DOT() expects vectors".into()))?;
            let b = args[1]
                .feature_view()
                .ok_or_else(|| SqlError::Evaluation("DOT() expects vectors".into()))?;
            let dim = a.dimension().max(b.dimension());
            let dense_b = b.to_dense(dim);
            Ok(Value::Double(a.dot(dense_b.as_slice())))
        }
        // PREDICT('model', features) | PREDICT('model', x1, x2, ...):
        // score features against a model resolved once per statement (a live
        // serving handle's latest snapshot, or a persisted model table).
        "PREDICT" => {
            if args.len() < 2 {
                return Err(SqlError::Analysis(format!(
                    "PREDICT() expects a model name and features, got {} argument(s)",
                    args.len()
                )));
            }
            let Value::Text(model_name) = &args[0] else {
                return Err(SqlError::Analysis(
                    "the first argument of PREDICT() must be a model name literal".into(),
                ));
            };
            let snapshot = ctx.models.get(model_name).cloned().ok_or_else(|| {
                SqlError::Evaluation(format!(
                    "unknown model '{model_name}': PREDICT() needs a registered \
                     serving handle or a persisted model table of that name"
                ))
            })?;
            let score = if args.len() == 2 {
                let x = args[1].feature_view().ok_or_else(|| {
                    SqlError::Evaluation(
                        "the second argument of PREDICT() must be a feature vector \
                         (or pass the features as individual numbers)"
                            .into(),
                    )
                })?;
                snapshot.predict(x)
            } else {
                let mut dense = Vec::with_capacity(args.len() - 1);
                for (i, value) in args[1..].iter().enumerate() {
                    dense.push(value.as_double().ok_or_else(|| {
                        SqlError::Evaluation(format!("PREDICT() feature {} is not numeric", i + 1))
                    })?);
                }
                snapshot.predict(bismarck_linalg::FeatureVectorRef::Dense(&dense))
            };
            Ok(Value::Double(score))
        }
        other => Err(SqlError::Analysis(format!("unknown function {other}()"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{SelectItem, Statement};
    use crate::parser::parse_statement;
    use bismarck_storage::{Column, DataType};

    fn ctx() -> EvalContext {
        EvalContext::with_seed(7)
    }

    /// Parse `SELECT <expr>` and return the expression.
    fn expr(text: &str) -> Expr {
        let stmt = parse_statement(&format!("SELECT {text}")).unwrap();
        let Statement::Select(select) = stmt else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = select.items.into_iter().next().unwrap() else {
            panic!()
        };
        expr
    }

    fn eval_text(text: &str) -> Value {
        evaluate(&expr(text), None, &mut ctx()).unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval_text("1 + 2 * 3"), Value::Int(7));
        assert_eq!(eval_text("(1 + 2) * 3"), Value::Int(9));
        assert_eq!(eval_text("7 / 2"), Value::Double(3.5));
        assert_eq!(eval_text("1.5 + 1"), Value::Double(2.5));
        assert_eq!(eval_text("-3 + 1"), Value::Int(-2));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let err = evaluate(&expr("1 / 0"), None, &mut ctx()).unwrap_err();
        assert!(err.to_string().contains("division by zero"));
    }

    #[test]
    fn integer_overflow_is_an_error_not_a_panic() {
        // `0 - MAX - 1` builds i64::MIN without needing a MIN literal (the
        // lexer reads `-9223372036854775808` as unary minus of an
        // out-of-range magnitude).
        let max = i64::MAX;
        for text in [
            format!("{max} + 1"),
            format!("0 - {max} - 2"),
            format!("{max} * 2"),
            format!("ABS(0 - {max} - 1)"),
        ] {
            let err = evaluate(&expr(&text), None, &mut ctx()).unwrap_err();
            assert!(
                matches!(&err, SqlError::Evaluation(msg) if msg.contains("overflow")),
                "`{text}` should report overflow, got: {err}"
            );
        }
        // The boundary cases themselves still evaluate.
        assert_eq!(eval_text(&format!("{max} + 0")), Value::Int(i64::MAX));
        assert_eq!(eval_text(&format!("ABS(0 - {max})")), Value::Int(i64::MAX));
    }

    #[test]
    fn comparisons_and_boolean_logic() {
        assert_eq!(eval_text("1 < 2"), Value::Int(1));
        assert_eq!(eval_text("2 <= 1"), Value::Int(0));
        assert_eq!(eval_text("'abc' = 'abc'"), Value::Int(1));
        assert_eq!(eval_text("'abc' < 'abd'"), Value::Int(1));
        assert_eq!(eval_text("1 < 2 AND 3 > 4"), Value::Int(0));
        assert_eq!(eval_text("1 < 2 OR 3 > 4"), Value::Int(1));
        assert_eq!(eval_text("NOT (1 = 1)"), Value::Int(0));
    }

    #[test]
    fn null_semantics() {
        assert_eq!(eval_text("NULL + 1"), Value::Null);
        assert_eq!(eval_text("NULL = NULL"), Value::Int(0));
        assert_eq!(eval_text("NULL IS NULL"), Value::Int(1));
        assert_eq!(eval_text("1 IS NOT NULL"), Value::Int(1));
        assert!(!is_truthy(&Value::Null));
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(eval_text("ABS(-4)"), Value::Int(4));
        assert_eq!(eval_text("SQRT(9.0)"), Value::Double(3.0));
        assert_eq!(eval_text("POWER(2, 10)"), Value::Double(1024.0));
        assert_eq!(eval_text("LENGTH('hello')"), Value::Int(5));
        let Value::Double(p) = eval_text("SIGMOID(0)") else {
            panic!()
        };
        assert!((p - 0.5).abs() < 1e-12);
        let Value::Double(r) = eval_text("RANDOM()") else {
            panic!()
        };
        assert!((0.0..1.0).contains(&r));
    }

    #[test]
    fn predict_scores_through_the_cached_snapshot() {
        use bismarck_core::serving::ServingTask;
        let mut ctx = ctx();
        ctx.models.insert(
            "m".into(),
            Arc::new(ModelSnapshot::detached(
                ServingTask::LeastSquares,
                vec![2.0, -1.0],
            )),
        );
        assert_eq!(
            evaluate(&expr("PREDICT('m', ARRAY[3.0, 4.0])"), None, &mut ctx).unwrap(),
            Value::Double(2.0)
        );
        // Variadic dense form and sparse features both work.
        assert_eq!(
            evaluate(&expr("PREDICT('m', 3.0, 4.0)"), None, &mut ctx).unwrap(),
            Value::Double(2.0)
        );
        assert_eq!(
            evaluate(&expr("PREDICT('m', {0: 1.0})"), None, &mut ctx).unwrap(),
            Value::Double(2.0)
        );
        let err = evaluate(&expr("PREDICT('missing', 1.0)"), None, &mut ctx).unwrap_err();
        assert!(err.to_string().contains("unknown model"), "{err}");
        let err = evaluate(&expr("PREDICT('m')"), None, &mut ctx).unwrap_err();
        assert!(err.to_string().contains("model name and features"), "{err}");
        let err = evaluate(&expr("PREDICT(1, 2.0)"), None, &mut ctx).unwrap_err();
        assert!(err.to_string().contains("model name literal"), "{err}");
    }

    #[test]
    fn unknown_function_is_an_analysis_error() {
        let err = evaluate(&expr("FROBNICATE(1)"), None, &mut ctx()).unwrap_err();
        assert!(matches!(err, SqlError::Analysis(_)));
    }

    #[test]
    fn vector_literals_and_vector_functions() {
        assert_eq!(
            eval_text("ARRAY[1.0, 2.0, 3.0]"),
            Value::DenseVec(DenseVector::from(vec![1.0, 2.0, 3.0]))
        );
        assert_eq!(eval_text("DIM(ARRAY[1.0, 2.0, 3.0])"), Value::Int(3));
        assert_eq!(eval_text("NNZ({1: 2.0, 40: 1.0})"), Value::Int(2));
        assert_eq!(eval_text("DIM({40: 1.0})"), Value::Int(41));
        assert_eq!(
            eval_text("DOT(ARRAY[1.0, 2.0], ARRAY[3.0, 4.0])"),
            Value::Double(11.0)
        );
        assert_eq!(
            eval_text("DOT({1: 2.0}, ARRAY[5.0, 7.0])"),
            Value::Double(14.0)
        );
    }

    #[test]
    fn column_references_resolve_through_the_schema() {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        let values = vec![Value::Int(3), Value::Double(-1.0)];
        let row = RowContext {
            schema: &schema,
            values: &values,
        };
        assert_eq!(
            evaluate(&expr("label * 2"), Some(row), &mut ctx()).unwrap(),
            Value::Double(-2.0)
        );
        let err = evaluate(&expr("missing"), Some(row), &mut ctx()).unwrap_err();
        assert!(err.to_string().contains("unknown column"));
    }

    #[test]
    fn column_reference_without_from_is_rejected() {
        let err = evaluate(&expr("label"), None, &mut ctx()).unwrap_err();
        assert!(err.to_string().contains("without a FROM"));
    }

    #[test]
    fn aggregates_reduce_over_groups() {
        let schema = Schema::new(vec![
            Column::new("label", DataType::Double),
            Column::nullable("score", DataType::Double),
        ])
        .unwrap();
        let rows = vec![
            vec![Value::Double(1.0), Value::Double(2.0)],
            vec![Value::Double(1.0), Value::Double(4.0)],
            vec![Value::Double(1.0), Value::Null],
        ];
        let mut ctx = ctx();
        assert_eq!(
            evaluate_grouped(&expr("COUNT(*)"), &schema, &rows, &mut ctx).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            evaluate_grouped(&expr("COUNT(score)"), &schema, &rows, &mut ctx).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            evaluate_grouped(&expr("SUM(score)"), &schema, &rows, &mut ctx).unwrap(),
            Value::Double(6.0)
        );
        assert_eq!(
            evaluate_grouped(&expr("AVG(score)"), &schema, &rows, &mut ctx).unwrap(),
            Value::Double(3.0)
        );
        assert_eq!(
            evaluate_grouped(&expr("MIN(score)"), &schema, &rows, &mut ctx).unwrap(),
            Value::Double(2.0)
        );
        assert_eq!(
            evaluate_grouped(&expr("MAX(score) - MIN(score)"), &schema, &rows, &mut ctx).unwrap(),
            Value::Double(2.0)
        );
        // Non-aggregate parts bind to the group's first row.
        assert_eq!(
            evaluate_grouped(&expr("label"), &schema, &rows, &mut ctx).unwrap(),
            Value::Double(1.0)
        );
    }

    #[test]
    fn aggregate_in_scalar_context_is_rejected() {
        let err = evaluate(&expr("AVG(x)"), None, &mut ctx()).unwrap_err();
        assert!(err.to_string().contains("not allowed"));
    }

    #[test]
    fn value_ordering_is_total_and_null_first() {
        assert_eq!(compare_values(&Value::Null, &Value::Int(0)), Ordering::Less);
        assert_eq!(
            compare_values(&Value::Int(2), &Value::Double(2.0)),
            Ordering::Equal
        );
        assert_eq!(
            compare_values(&Value::Double(3.5), &Value::Int(3)),
            Ordering::Greater
        );
        assert_eq!(
            compare_values(&Value::Text("a".into()), &Value::Text("b".into())),
            Ordering::Less
        );
    }
}
