//! Recursive-descent parser producing [`Statement`]s from token streams.

use bismarck_storage::DataType;

use crate::ast::{
    BinaryOp, ColumnDef, CopyDirection, Expr, Literal, OrderKey, SelectItem, SelectStatement,
    Statement, TableStorage, UnaryOp,
};
use crate::error::{Result, SqlError};
use crate::token::{tokenize, Token, TokenKind};

/// Parse a single statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut statements = parse_script(sql)?;
    match statements.len() {
        1 => Ok(statements.remove(0)),
        0 => Err(SqlError::Parse {
            position: 0,
            message: "empty statement".into(),
        }),
        n => Err(SqlError::Parse {
            position: 0,
            message: format!("expected a single statement, found {n}"),
        }),
    }
}

/// Parse a `;`-separated script into its statements.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let mut statements = Vec::new();
    loop {
        // Skip empty statements (stray semicolons).
        while parser.eat(&TokenKind::Semicolon) {}
        if parser.at_end() {
            break;
        }
        statements.push(parser.parse_statement()?);
        if !parser.at_end() && !parser.eat(&TokenKind::Semicolon) {
            return Err(parser.error("expected ';' between statements"));
        }
    }
    Ok(statements)
}

/// Hard cap on expression nesting. The parser is recursive-descent, so each
/// nesting level (parenthesis, unary minus, `NOT`, ...) consumes native
/// stack; past this depth parsing fails with a [`SqlError::Parse`] instead
/// of risking a stack overflow on adversarial input.
const MAX_EXPR_DEPTH: usize = 128;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current expression-nesting depth, bounded by [`MAX_EXPR_DEPTH`].
    depth: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn advance(&mut self) -> Option<TokenKind> {
        let kind = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if kind.is_some() {
            self.pos += 1;
        }
        kind
    }

    fn error(&self, message: impl Into<String>) -> SqlError {
        let mut message = message.into();
        if let Some(tok) = self.tokens.get(self.pos) {
            message = format!("{message} (found {})", tok.kind.describe());
        } else {
            message = format!("{message} (found end of input)");
        }
        SqlError::Parse {
            position: self.pos,
            message,
        }
    }

    /// Consume the next token if it equals `kind`.
    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consume the next token if it is the given keyword.
    fn eat_keyword(&mut self, keyword: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Keyword(k)) if k == keyword) && {
            self.pos += 1;
            true
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.error(format!("expected {}", kind.describe())))
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<()> {
        if self.eat_keyword(keyword) {
            Ok(())
        } else {
            Err(self.error(format!("expected {keyword}")))
        }
    }

    /// An identifier, or a keyword used in an identifier position (column
    /// names such as `values` are accepted).
    fn expect_identifier(&mut self) -> Result<String> {
        match self.advance() {
            Some(TokenKind::Identifier(name)) => Ok(name),
            Some(other) => {
                self.pos -= 1;
                Err(self.error(format!("expected identifier, found {}", other.describe())))
            }
            None => Err(self.error("expected identifier")),
        }
    }

    fn parse_statement(&mut self) -> Result<Statement> {
        match self.peek() {
            Some(TokenKind::Keyword(k)) if k == "CREATE" => self.parse_create_table(),
            Some(TokenKind::Keyword(k)) if k == "DROP" => self.parse_drop_table(),
            Some(TokenKind::Keyword(k)) if k == "INSERT" => self.parse_insert(),
            Some(TokenKind::Keyword(k)) if k == "SELECT" => {
                Ok(Statement::Select(self.parse_select()?))
            }
            Some(TokenKind::Keyword(k)) if k == "COPY" => self.parse_copy(),
            Some(TokenKind::Keyword(k)) if k == "SHUFFLE" => self.parse_shuffle(),
            Some(TokenKind::Keyword(k)) if k == "CLUSTER" => self.parse_cluster(),
            Some(TokenKind::Keyword(k)) if k == "SHOW" => {
                self.expect_keyword("SHOW")?;
                self.expect_keyword("TABLES")?;
                Ok(Statement::ShowTables)
            }
            Some(TokenKind::Keyword(k)) if k == "DESCRIBE" => {
                self.expect_keyword("DESCRIBE")?;
                let name = self.expect_identifier()?;
                Ok(Statement::Describe { name })
            }
            _ => Err(self.error("expected CREATE, DROP, INSERT, SELECT, COPY, SHUFFLE or CLUSTER")),
        }
    }

    fn parse_copy(&mut self) -> Result<Statement> {
        self.expect_keyword("COPY")?;
        let table = self.expect_identifier()?;
        let direction = if self.eat_keyword("FROM") {
            CopyDirection::FromFile
        } else if self.eat_keyword("TO") {
            CopyDirection::ToFile
        } else {
            return Err(self.error("expected FROM or TO after the table name in COPY"));
        };
        let path = match self.advance() {
            Some(TokenKind::StringLiteral(path)) => path,
            _ => {
                self.pos -= 1;
                return Err(self.error("expected a quoted file path in COPY"));
            }
        };
        Ok(Statement::Copy {
            table,
            direction,
            path,
        })
    }

    fn parse_shuffle(&mut self) -> Result<Statement> {
        self.expect_keyword("SHUFFLE")?;
        self.expect_keyword("TABLE")?;
        let table = self.expect_identifier()?;
        let seed = if self.eat_keyword("SEED") {
            match self.advance() {
                Some(TokenKind::Integer(n)) if n >= 0 => Some(n as u64),
                _ => {
                    self.pos -= 1;
                    return Err(self.error("expected a non-negative integer after SEED"));
                }
            }
        } else {
            None
        };
        Ok(Statement::Shuffle { table, seed })
    }

    fn parse_cluster(&mut self) -> Result<Statement> {
        self.expect_keyword("CLUSTER")?;
        self.expect_keyword("TABLE")?;
        let table = self.expect_identifier()?;
        self.expect_keyword("BY")?;
        let column = self.expect_identifier()?;
        let ascending = if self.eat_keyword("DESC") {
            false
        } else {
            self.eat_keyword("ASC");
            true
        };
        Ok(Statement::Cluster {
            table,
            column,
            ascending,
        })
    }

    /// Consume the next token if it is an identifier equal (ASCII
    /// case-insensitively) to `word`. `STORAGE`, `COLUMNAR` and `ROW` are
    /// soft keywords: they lex as identifiers so they stay usable as column
    /// and table names.
    fn eat_soft_keyword(&mut self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Identifier(id)) if id.eq_ignore_ascii_case(word)) && {
            self.pos += 1;
            true
        }
    }

    /// Parse an optional `STORAGE = ROW | COLUMNAR` clause; absent means the
    /// row-store default.
    fn parse_storage_clause(&mut self) -> Result<TableStorage> {
        if !self.eat_soft_keyword("STORAGE") {
            return Ok(TableStorage::Row);
        }
        self.expect(&TokenKind::Eq)?;
        if self.eat_soft_keyword("COLUMNAR") {
            Ok(TableStorage::Columnar)
        } else if self.eat_soft_keyword("ROW") {
            Ok(TableStorage::Row)
        } else {
            Err(self.error("expected COLUMNAR or ROW after STORAGE ="))
        }
    }

    fn parse_create_table(&mut self) -> Result<Statement> {
        self.expect_keyword("CREATE")?;
        self.expect_keyword("TABLE")?;
        let name = self.expect_identifier()?;
        let storage = self.parse_storage_clause()?;
        if self.eat_keyword("AS") {
            let query = self.parse_select()?;
            return Ok(Statement::CreateTableAs {
                name,
                query,
                storage,
            });
        }
        self.expect(&TokenKind::LeftParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.expect_identifier()?;
            let data_type = self.parse_data_type()?;
            columns.push(ColumnDef {
                name: col_name,
                data_type,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RightParen)?;
        let storage = if storage == TableStorage::Row {
            self.parse_storage_clause()?
        } else {
            storage
        };
        Ok(Statement::CreateTable {
            name,
            columns,
            storage,
        })
    }

    fn parse_data_type(&mut self) -> Result<DataType> {
        let name = self.expect_identifier()?;
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" => Ok(DataType::Int),
            "DOUBLE" | "FLOAT" | "FLOAT8" | "REAL" => Ok(DataType::Double),
            "TEXT" | "VARCHAR" | "STRING" => Ok(DataType::Text),
            "DENSE_VEC" | "VECTOR" => Ok(DataType::DenseVec),
            "SPARSE_VEC" => Ok(DataType::SparseVec),
            "SEQUENCE" => Ok(DataType::Sequence),
            other => {
                self.pos -= 1;
                Err(self.error(format!("unknown column type '{other}'")))
            }
        }
    }

    fn parse_drop_table(&mut self) -> Result<Statement> {
        self.expect_keyword("DROP")?;
        self.expect_keyword("TABLE")?;
        let name = self.expect_identifier()?;
        Ok(Statement::DropTable { name })
    }

    fn parse_insert(&mut self) -> Result<Statement> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.expect_identifier()?;
        let columns = if self.eat(&TokenKind::LeftParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.expect_identifier()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RightParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LeftParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RightParen)?;
            rows.push(row);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn parse_select(&mut self) -> Result<SelectStatement> {
        self.expect_keyword("SELECT")?;
        let mut items = Vec::new();
        loop {
            if self.eat(&TokenKind::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.parse_expr()?;
                let alias = if self.eat_keyword("AS") {
                    Some(self.expect_identifier()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }

        let from = if self.eat_keyword("FROM") {
            Some(self.expect_identifier()?)
        } else {
            None
        };
        let filter = if self.eat_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let ascending = if self.eat_keyword("DESC") {
                    false
                } else {
                    // ASC is the default and may be written explicitly.
                    self.eat_keyword("ASC");
                    true
                };
                order_by.push(OrderKey { expr, ascending });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_keyword("LIMIT") {
            match self.advance() {
                Some(TokenKind::Integer(n)) if n >= 0 => Some(n as usize),
                _ => {
                    self.pos -= 1;
                    return Err(self.error("expected a non-negative integer after LIMIT"));
                }
            }
        } else {
            None
        };

        Ok(SelectStatement {
            items,
            from,
            filter,
            group_by,
            order_by,
            limit,
        })
    }

    // Expression grammar, lowest precedence first:
    //   or_expr   := and_expr (OR and_expr)*
    //   and_expr  := not_expr (AND not_expr)*
    //   not_expr  := NOT not_expr | cmp_expr
    //   cmp_expr  := add_expr ((= | <> | < | <= | > | >=) add_expr)?
    //              | add_expr IS [NOT] NULL
    //   add_expr  := mul_expr ((+ | -) mul_expr)*
    //   mul_expr  := unary ((* | /) unary)*
    //   unary     := - unary | primary
    //   primary   := literal | column | function(args) | ARRAY[...] | {i: v, ...} | ( or_expr )
    fn parse_expr(&mut self) -> Result<Expr> {
        self.enter_nested()?;
        let result = self.parse_or();
        self.depth -= 1;
        result
    }

    /// Count one level of expression nesting, rejecting the statement once
    /// [`MAX_EXPR_DEPTH`] is exceeded. Called by every self-recursive parse
    /// production (`parse_expr` for parenthesized subexpressions and
    /// arguments, `parse_not` and `parse_unary` for prefix-operator chains).
    fn enter_nested(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            return Err(self.error("expression too deeply nested"));
        }
        Ok(())
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            self.enter_nested()?;
            let expr = self.parse_not();
            self.depth -= 1;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(expr?),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let op = match self.peek() {
            Some(TokenKind::Eq) => Some(BinaryOp::Eq),
            Some(TokenKind::NotEq) => Some(BinaryOp::NotEq),
            Some(TokenKind::Lt) => Some(BinaryOp::Lt),
            Some(TokenKind::LtEq) => Some(BinaryOp::LtEq),
            Some(TokenKind::Gt) => Some(BinaryOp::Gt),
            Some(TokenKind::GtEq) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            return Ok(Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => BinaryOp::Add,
                Some(TokenKind::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Star) => BinaryOp::Mul,
                Some(TokenKind::Slash) => BinaryOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            self.enter_nested()?;
            let expr = self.parse_unary();
            self.depth -= 1;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(expr?),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.advance() {
            Some(TokenKind::Integer(v)) => Ok(Expr::Literal(Literal::Int(v))),
            Some(TokenKind::Float(v)) => Ok(Expr::Literal(Literal::Double(v))),
            Some(TokenKind::StringLiteral(s)) => Ok(Expr::Literal(Literal::Text(s))),
            Some(TokenKind::Keyword(k)) if k == "NULL" => Ok(Expr::Literal(Literal::Null)),
            Some(TokenKind::Keyword(k)) if k == "TRUE" => Ok(Expr::Literal(Literal::Bool(true))),
            Some(TokenKind::Keyword(k)) if k == "FALSE" => Ok(Expr::Literal(Literal::Bool(false))),
            Some(TokenKind::Keyword(k)) if k == "ARRAY" => {
                self.expect(&TokenKind::LeftBracket)?;
                let mut items = Vec::new();
                if self.peek() != Some(&TokenKind::RightBracket) {
                    loop {
                        items.push(self.parse_expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RightBracket)?;
                Ok(Expr::ArrayLiteral(items))
            }
            Some(TokenKind::LeftBrace) => {
                let mut pairs = Vec::new();
                if self.peek() != Some(&TokenKind::RightBrace) {
                    loop {
                        let index = self.parse_expr()?;
                        self.expect(&TokenKind::Colon)?;
                        let value = self.parse_expr()?;
                        pairs.push((index, value));
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RightBrace)?;
                Ok(Expr::SparseLiteral(pairs))
            }
            Some(TokenKind::LeftParen) => {
                let expr = self.parse_expr()?;
                self.expect(&TokenKind::RightParen)?;
                Ok(expr)
            }
            Some(TokenKind::Identifier(name)) => {
                if self.eat(&TokenKind::LeftParen) {
                    let mut args = Vec::new();
                    if self.peek() != Some(&TokenKind::RightParen) {
                        loop {
                            if self.eat(&TokenKind::Star) {
                                args.push(Expr::Wildcard);
                            } else {
                                args.push(self.parse_expr()?);
                            }
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RightParen)?;
                    Ok(Expr::Function { name, args })
                } else {
                    Ok(Expr::Column(name))
                }
            }
            Some(other) => {
                self.pos -= 1;
                Err(self.error(format!("unexpected {} in expression", other.describe())))
            }
            None => Err(self.error("unexpected end of input in expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_training_query() {
        let stmt = parse_statement("SELECT SVMTrain('myModel', 'LabeledPapers', 'vec', 'label');")
            .unwrap();
        let Statement::Select(select) = stmt else {
            panic!("expected SELECT")
        };
        assert_eq!(select.items.len(), 1);
        assert!(select.from.is_none());
        let SelectItem::Expr {
            expr: Expr::Function { name, args },
            ..
        } = &select.items[0]
        else {
            panic!("expected function item")
        };
        assert_eq!(name, "SVMTrain");
        assert_eq!(args.len(), 4);
    }

    #[test]
    fn parses_create_table_with_all_types() {
        let stmt = parse_statement(
            "CREATE TABLE LabeledPapers (id INT, vec DENSE_VEC, sv SPARSE_VEC, \
             label DOUBLE, title TEXT, seq SEQUENCE)",
        )
        .unwrap();
        let Statement::CreateTable {
            name,
            columns,
            storage,
        } = stmt
        else {
            panic!()
        };
        assert_eq!(name, "LabeledPapers");
        assert_eq!(storage, TableStorage::Row);
        assert_eq!(columns.len(), 6);
        assert_eq!(columns[1].data_type, DataType::DenseVec);
        assert_eq!(columns[2].data_type, DataType::SparseVec);
        assert_eq!(columns[5].data_type, DataType::Sequence);
    }

    #[test]
    fn rejects_unknown_column_type() {
        let err = parse_statement("CREATE TABLE t (x BLOB)").unwrap_err();
        assert!(err.to_string().contains("unknown column type"));
    }

    #[test]
    fn parses_insert_with_vector_literals() {
        let stmt = parse_statement(
            "INSERT INTO t (id, vec, label) VALUES (1, ARRAY[1.0, 2.0], 1.0), \
             (2, ARRAY[0.5, -0.25], -1.0)",
        )
        .unwrap();
        let Statement::Insert {
            table,
            columns,
            rows,
        } = stmt
        else {
            panic!()
        };
        assert_eq!(table, "t");
        assert_eq!(columns.as_deref().unwrap().len(), 3);
        assert_eq!(rows.len(), 2);
        assert!(matches!(rows[0][1], Expr::ArrayLiteral(ref items) if items.len() == 2));
    }

    #[test]
    fn parses_sparse_vector_literal() {
        let stmt = parse_statement("INSERT INTO t VALUES ({0: 1.5, 41000: 2.0})").unwrap();
        let Statement::Insert { rows, .. } = stmt else {
            panic!()
        };
        assert!(matches!(rows[0][0], Expr::SparseLiteral(ref pairs) if pairs.len() == 2));
    }

    #[test]
    fn parses_select_with_all_clauses() {
        let stmt = parse_statement(
            "SELECT label, COUNT(*) AS n FROM points WHERE label > 0 AND id <> 3 \
             GROUP BY label ORDER BY n DESC LIMIT 10",
        )
        .unwrap();
        let Statement::Select(select) = stmt else {
            panic!()
        };
        assert_eq!(select.items.len(), 2);
        assert_eq!(select.from.as_deref(), Some("points"));
        assert!(select.filter.is_some());
        assert_eq!(select.group_by.len(), 1);
        assert_eq!(select.order_by.len(), 1);
        assert!(!select.order_by[0].ascending);
        assert_eq!(select.limit, Some(10));
    }

    #[test]
    fn parses_order_by_random() {
        let stmt = parse_statement("SELECT * FROM data ORDER BY RANDOM()").unwrap();
        let Statement::Select(select) = stmt else {
            panic!()
        };
        assert!(matches!(
            &select.order_by[0].expr,
            Expr::Function { name, args } if name.eq_ignore_ascii_case("random") && args.is_empty()
        ));
    }

    #[test]
    fn operator_precedence_binds_mul_tighter_than_add_and_cmp() {
        let stmt = parse_statement("SELECT 1 + 2 * 3 < 10").unwrap();
        let Statement::Select(select) = stmt else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &select.items[0] else {
            panic!()
        };
        // Shape: (1 + (2 * 3)) < 10
        let Expr::Binary {
            op: BinaryOp::Lt,
            left,
            ..
        } = expr
        else {
            panic!("expected <")
        };
        let Expr::Binary {
            op: BinaryOp::Add,
            right,
            ..
        } = left.as_ref()
        else {
            panic!("expected + on the left of <")
        };
        assert!(matches!(
            right.as_ref(),
            Expr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn parses_is_null_and_is_not_null() {
        let stmt = parse_statement("SELECT * FROM t WHERE a IS NULL OR b IS NOT NULL").unwrap();
        let Statement::Select(select) = stmt else {
            panic!()
        };
        let Some(Expr::Binary {
            op: BinaryOp::Or,
            left,
            right,
        }) = select.filter
        else {
            panic!()
        };
        assert!(matches!(*left, Expr::IsNull { negated: false, .. }));
        assert!(matches!(*right, Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn parses_script_with_multiple_statements() {
        let stmts = parse_script(
            "CREATE TABLE t (x INT); INSERT INTO t VALUES (1); SELECT COUNT(*) FROM t;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(matches!(stmts[0], Statement::CreateTable { .. }));
        assert!(matches!(stmts[1], Statement::Insert { .. }));
        assert!(matches!(stmts[2], Statement::Select(_)));
    }

    #[test]
    fn missing_semicolon_between_statements_is_an_error() {
        let err = parse_script("SELECT 1 SELECT 2").unwrap_err();
        assert!(err.to_string().contains("';'"));
    }

    #[test]
    fn single_statement_parse_rejects_scripts() {
        let err = parse_statement("SELECT 1; SELECT 2").unwrap_err();
        assert!(err.to_string().contains("single statement"));
    }

    #[test]
    fn drop_table_parses() {
        assert_eq!(
            parse_statement("DROP TABLE myModel").unwrap(),
            Statement::DropTable {
                name: "myModel".into()
            }
        );
    }

    #[test]
    fn count_star_is_a_wildcard_argument() {
        let stmt = parse_statement("SELECT COUNT(*) FROM t").unwrap();
        let Statement::Select(select) = stmt else {
            panic!()
        };
        let SelectItem::Expr {
            expr: Expr::Function { args, .. },
            ..
        } = &select.items[0]
        else {
            panic!()
        };
        assert_eq!(args, &vec![Expr::Wildcard]);
    }

    #[test]
    fn reports_error_position_for_garbage() {
        let err = parse_statement("SELECT FROM").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }));
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(parse_statement("   ").is_err());
        assert!(parse_script("  ;;  ").unwrap().is_empty());
    }

    #[test]
    fn copy_shuffle_and_cluster_statements_parse() {
        assert_eq!(
            parse_statement("COPY forest FROM '/tmp/forest.csv'").unwrap(),
            Statement::Copy {
                table: "forest".into(),
                direction: CopyDirection::FromFile,
                path: "/tmp/forest.csv".into()
            }
        );
        assert_eq!(
            parse_statement("COPY myModel TO 'model.csv'").unwrap(),
            Statement::Copy {
                table: "myModel".into(),
                direction: CopyDirection::ToFile,
                path: "model.csv".into()
            }
        );
        assert_eq!(
            parse_statement("SHUFFLE TABLE forest SEED 42").unwrap(),
            Statement::Shuffle {
                table: "forest".into(),
                seed: Some(42)
            }
        );
        assert_eq!(
            parse_statement("SHUFFLE TABLE forest").unwrap(),
            Statement::Shuffle {
                table: "forest".into(),
                seed: None
            }
        );
        assert_eq!(
            parse_statement("CLUSTER TABLE forest BY label DESC").unwrap(),
            Statement::Cluster {
                table: "forest".into(),
                column: "label".into(),
                ascending: false
            }
        );
        assert_eq!(
            parse_statement("CLUSTER TABLE forest BY label").unwrap(),
            Statement::Cluster {
                table: "forest".into(),
                column: "label".into(),
                ascending: true
            }
        );
    }

    #[test]
    fn create_table_as_select_parses() {
        let stmt = parse_statement("CREATE TABLE shuffled AS SELECT * FROM data ORDER BY RANDOM()")
            .unwrap();
        let Statement::CreateTableAs {
            name,
            query,
            storage,
        } = stmt
        else {
            panic!("expected CTAS")
        };
        assert_eq!(name, "shuffled");
        assert_eq!(storage, TableStorage::Row);
        assert_eq!(query.from.as_deref(), Some("data"));
        assert_eq!(query.order_by.len(), 1);
    }

    #[test]
    fn storage_clause_parses_in_both_create_forms() {
        let stmt = parse_statement("CREATE TABLE t (x INT) STORAGE = COLUMNAR").unwrap();
        assert!(matches!(
            stmt,
            Statement::CreateTable {
                storage: TableStorage::Columnar,
                ..
            }
        ));
        let stmt = parse_statement("CREATE TABLE t (x INT) storage = row").unwrap();
        assert!(matches!(
            stmt,
            Statement::CreateTable {
                storage: TableStorage::Row,
                ..
            }
        ));
        let stmt =
            parse_statement("CREATE TABLE t STORAGE = COLUMNAR AS SELECT * FROM data").unwrap();
        assert!(matches!(
            stmt,
            Statement::CreateTableAs {
                storage: TableStorage::Columnar,
                ..
            }
        ));
        // STORAGE stays usable as an ordinary identifier.
        let stmt = parse_statement("CREATE TABLE t (storage INT, row TEXT)").unwrap();
        let Statement::CreateTable { columns, .. } = stmt else {
            panic!()
        };
        assert_eq!(columns[0].name, "storage");
        assert_eq!(columns[1].name, "row");

        let err = parse_statement("CREATE TABLE t (x INT) STORAGE = HEAP").unwrap_err();
        assert!(err.to_string().contains("COLUMNAR or ROW"), "{err}");
    }

    #[test]
    fn show_tables_and_describe_parse() {
        assert_eq!(
            parse_statement("SHOW TABLES").unwrap(),
            Statement::ShowTables
        );
        assert_eq!(
            parse_statement("DESCRIBE forest").unwrap(),
            Statement::Describe {
                name: "forest".into()
            }
        );
        assert!(parse_statement("SHOW forest").is_err());
        assert!(parse_statement("DESCRIBE").is_err());
    }

    #[test]
    fn copy_without_direction_or_path_is_rejected() {
        assert!(parse_statement("COPY forest").is_err());
        assert!(parse_statement("COPY forest FROM 42").is_err());
        assert!(parse_statement("SHUFFLE forest").is_err());
        assert!(parse_statement("CLUSTER TABLE forest").is_err());
    }

    #[test]
    fn negative_numbers_and_not_parse() {
        let stmt = parse_statement("SELECT -3.5, NOT TRUE").unwrap();
        let Statement::Select(select) = stmt else {
            panic!()
        };
        assert!(matches!(
            select.items[0],
            SelectItem::Expr {
                expr: Expr::Unary {
                    op: UnaryOp::Neg,
                    ..
                },
                ..
            }
        ));
        assert!(matches!(
            select.items[1],
            SelectItem::Expr {
                expr: Expr::Unary {
                    op: UnaryOp::Not,
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn deeply_nested_expression_is_rejected_not_a_stack_overflow() {
        let sql = format!("SELECT {}1{}", "(".repeat(500), ")".repeat(500));
        let err = parse_statement(&sql).unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }), "got: {err:?}");
        assert!(err.to_string().contains("too deeply nested"), "got: {err}");

        // Prefix-operator chains recurse through their own productions and
        // hit the same limit.
        let err = parse_statement(&format!("SELECT {}1", "NOT ".repeat(500))).unwrap_err();
        assert!(err.to_string().contains("too deeply nested"), "got: {err}");
        // Spaced out so the token stream is 500 unary minuses, not a `--`
        // line comment.
        let err = parse_statement(&format!("SELECT {}1", "- ".repeat(500))).unwrap_err();
        assert!(err.to_string().contains("too deeply nested"), "got: {err}");

        // Reasonable nesting still parses, and the depth counter unwinds so
        // later statements in the same script are unaffected.
        let ok = format!(
            "SELECT {}1{}; SELECT {}2{}",
            "(".repeat(40),
            ")".repeat(40),
            "(".repeat(40),
            ")".repeat(40)
        );
        assert_eq!(parse_script(&ok).unwrap().len(), 2);
    }
}
