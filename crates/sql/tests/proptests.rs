//! Property-based tests for the SQL front-end: the lexer and parser are
//! total (no panics), evaluation agrees with a Rust reference computation on
//! arbitrary arithmetic, and the data-movement statements preserve the
//! multiset of stored rows.

use bismarck_sql::{parse_statement, SqlSession};
use bismarck_storage::Value;
use proptest::prelude::*;

/// A small arithmetic expression AST used as the generation source; it is
/// rendered to SQL and also evaluated directly in Rust.
#[derive(Debug, Clone)]
enum Arith {
    Lit(i32),
    Add(Box<Arith>, Box<Arith>),
    Sub(Box<Arith>, Box<Arith>),
    Mul(Box<Arith>, Box<Arith>),
}

impl Arith {
    fn to_sql(&self) -> String {
        match self {
            // Negative literals are parenthesized so `1 - -2` stays parseable.
            Arith::Lit(v) if *v < 0 => format!("({v})"),
            Arith::Lit(v) => v.to_string(),
            Arith::Add(a, b) => format!("({} + {})", a.to_sql(), b.to_sql()),
            Arith::Sub(a, b) => format!("({} - {})", a.to_sql(), b.to_sql()),
            Arith::Mul(a, b) => format!("({} * {})", a.to_sql(), b.to_sql()),
        }
    }

    fn eval(&self) -> i64 {
        match self {
            Arith::Lit(v) => *v as i64,
            Arith::Add(a, b) => a.eval() + b.eval(),
            Arith::Sub(a, b) => a.eval() - b.eval(),
            Arith::Mul(a, b) => a.eval() * b.eval(),
        }
    }
}

fn arith_strategy() -> impl Strategy<Value = Arith> {
    let leaf = (-50i32..50).prop_map(Arith::Lit);
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Arith::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    /// The lexer + parser never panic, whatever bytes they are fed.
    #[test]
    fn parser_is_total_on_arbitrary_input(input in ".{0,120}") {
        let _ = parse_statement(&input);
    }

    /// Statements assembled from plausible SQL-ish fragments also never panic.
    #[test]
    fn parser_is_total_on_sqlish_input(
        head in prop::sample::select(vec![
            "SELECT", "SELECT *", "INSERT INTO t VALUES", "CREATE TABLE t", "COPY t FROM",
            "SHUFFLE TABLE", "CLUSTER TABLE t BY",
        ]),
        tail in "[ a-zA-Z0-9_'(),*;=<>.+-]{0,60}",
    ) {
        let _ = parse_statement(&format!("{head} {tail}"));
    }

    /// SELECT of a generated arithmetic expression equals the reference value.
    #[test]
    fn integer_arithmetic_matches_reference(expr in arith_strategy()) {
        let mut session = SqlSession::new();
        let result = session.execute(&format!("SELECT {}", expr.to_sql())).unwrap();
        prop_assert_eq!(result.single_value(), Some(&Value::Int(expr.eval())));
    }

    /// COUNT(*) equals the number of inserted rows and SUM equals the Rust sum.
    #[test]
    fn count_and_sum_match_inserted_rows(values in prop::collection::vec(-1000i64..1000, 1..40)) {
        let mut session = SqlSession::new();
        session.execute("CREATE TABLE t (x INT)").unwrap();
        for v in &values {
            session.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let count = session.execute("SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(count.single_value(), Some(&Value::Int(values.len() as i64)));
        let sum = session.execute("SELECT SUM(x) FROM t").unwrap();
        let expected: f64 = values.iter().map(|&v| v as f64).sum();
        let got = sum.single_value().unwrap().as_double().unwrap();
        prop_assert!((got - expected).abs() < 1e-9);
    }

    /// ORDER BY RANDOM() and SHUFFLE TABLE both return a permutation of the
    /// stored rows, never dropping or duplicating values.
    #[test]
    fn shuffles_preserve_the_multiset_of_rows(
        values in prop::collection::vec(0i64..500, 1..60),
        seed in 0u64..1_000,
    ) {
        let mut session = SqlSession::with_seed(seed);
        session.execute("CREATE TABLE t (x INT)").unwrap();
        for v in &values {
            session.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let mut expected: Vec<i64> = values.clone();
        expected.sort_unstable();

        let mut via_order_by: Vec<i64> = session
            .execute("SELECT x FROM t ORDER BY RANDOM()")
            .unwrap()
            .rows
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        via_order_by.sort_unstable();
        prop_assert_eq!(&via_order_by, &expected);

        session.execute(&format!("SHUFFLE TABLE t SEED {seed}")).unwrap();
        let mut after_shuffle: Vec<i64> = session
            .execute("SELECT x FROM t")
            .unwrap()
            .rows
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        after_shuffle.sort_unstable();
        prop_assert_eq!(&after_shuffle, &expected);
    }

    /// CLUSTER TABLE ... BY sorts the stored rows and keeps the multiset.
    #[test]
    fn cluster_sorts_and_preserves_rows(values in prop::collection::vec(-100i64..100, 1..50)) {
        let mut session = SqlSession::new();
        session.execute("CREATE TABLE t (x INT)").unwrap();
        for v in &values {
            session.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        session.execute("CLUSTER TABLE t BY x").unwrap();
        let stored: Vec<i64> = session
            .execute("SELECT x FROM t")
            .unwrap()
            .rows
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        let mut expected = values.clone();
        expected.sort_unstable();
        prop_assert_eq!(stored, expected);
    }

    /// WHERE filters exactly the rows whose predicate holds.
    #[test]
    fn where_clause_matches_rust_filter(
        values in prop::collection::vec(-100i64..100, 0..50),
        threshold in -100i64..100,
    ) {
        let mut session = SqlSession::new();
        session.execute("CREATE TABLE t (x INT)").unwrap();
        for v in &values {
            session.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let result = session
            .execute(&format!("SELECT COUNT(*) FROM t WHERE x > ({threshold})"))
            .unwrap();
        let expected = values.iter().filter(|&&v| v > threshold).count() as i64;
        prop_assert_eq!(result.single_value(), Some(&Value::Int(expected)));
    }
}
