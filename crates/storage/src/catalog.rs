//! The database catalog: a named collection of tables.

use std::collections::BTreeMap;

use crate::error::StorageError;
use crate::schema::Schema;
use crate::table::Table;

/// An in-process database: a catalog of heap tables.
///
/// This is the object the Bismarck front-ends (`LogisticRegressionTrain`,
/// `SvmTrain`, ...) operate on: they read a training table from the catalog
/// and persist the learned model back into it as a new table, mirroring the
/// paper's `SELECT SVMTrain('myModel', 'LabeledPapers', 'vec', 'label')`.
#[derive(Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Create a table with the given schema; fails if the name is taken.
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
    ) -> Result<&mut Table, StorageError> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(StorageError::TableExists(name));
        }
        let table = Table::new(name.clone(), schema);
        Ok(self.tables.entry(name).or_insert(table))
    }

    /// Register an already-built table (e.g. from a dataset generator);
    /// replaces any table of the same name, mirroring `CREATE OR REPLACE`.
    pub fn register_table(&mut self, table: Table) {
        self.tables.insert(table.name().to_string(), table);
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<&Table, StorageError> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Mutable lookup by name.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StorageError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Remove a table; returns it if present.
    pub fn drop_table(&mut self, name: &str) -> Result<Table, StorageError> {
        self.tables
            .remove(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Whether a table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};
    use crate::value::Value;

    fn schema() -> Schema {
        Schema::new(vec![Column::new("id", DataType::Int)]).unwrap()
    }

    #[test]
    fn create_and_lookup() {
        let mut db = Database::new();
        db.create_table("t", schema()).unwrap();
        assert!(db.contains("t"));
        assert_eq!(db.table("t").unwrap().len(), 0);
        assert!(db.table("missing").is_err());
        assert_eq!(db.len(), 1);
        assert!(!db.is_empty());
    }

    #[test]
    fn create_duplicate_fails() {
        let mut db = Database::new();
        db.create_table("t", schema()).unwrap();
        assert!(matches!(
            db.create_table("t", schema()),
            Err(StorageError::TableExists(_))
        ));
    }

    #[test]
    fn register_replaces() {
        let mut db = Database::new();
        db.create_table("t", schema()).unwrap();
        db.table_mut("t")
            .unwrap()
            .insert(vec![Value::Int(1)])
            .unwrap();
        let replacement = Table::new("t", schema());
        db.register_table(replacement);
        assert_eq!(db.table("t").unwrap().len(), 0);
    }

    #[test]
    fn drop_table_removes() {
        let mut db = Database::new();
        db.create_table("t", schema()).unwrap();
        let t = db.drop_table("t").unwrap();
        assert_eq!(t.name(), "t");
        assert!(!db.contains("t"));
        assert!(db.drop_table("t").is_err());
    }

    #[test]
    fn table_names_sorted() {
        let mut db = Database::new();
        db.create_table("b", schema()).unwrap();
        db.create_table("a", schema()).unwrap();
        assert_eq!(db.table_names(), vec!["a".to_string(), "b".to_string()]);
    }
}
