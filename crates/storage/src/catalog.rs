//! The database catalog: a named collection of tables, optionally durable.
//!
//! A catalog created with [`Database::new`] is purely in-memory, exactly as
//! before. A catalog created with [`Database::open`] is bound to a directory
//! and **write-ahead logged**: every `CREATE TABLE`, `DROP TABLE`, row batch
//! insert and table registration is appended (and fsynced) to
//! `catalog.wal` *before* it is applied in memory, and a size-triggered
//! compaction periodically folds the log into an atomically-written
//! `catalog.snap` snapshot. Reopening the directory replays snapshot + log
//! and reconstructs the exact catalog the last successful operation left —
//! including persisted model tables, which is what lets a training session
//! survive a process restart.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::codec::{push_row, push_schema, push_string, read_row, read_schema, Reader};
use crate::durable;
use crate::error::StorageError;
use crate::schema::Schema;
use crate::snapshot;
use crate::table::Table;
use crate::value::Value;
use crate::wal::{self, WalWriter};

/// File name of the write-ahead log inside a durable catalog directory.
pub const WAL_FILE: &str = "catalog.wal";

/// File name of the catalog snapshot inside a durable catalog directory.
pub const SNAPSHOT_FILE: &str = "catalog.snap";

/// Default WAL size (bytes) that triggers a compaction into a snapshot.
pub const DEFAULT_COMPACT_THRESHOLD: u64 = 1 << 20;

const OP_CREATE: u8 = 1;
const OP_DROP: u8 = 2;
const OP_INSERT: u8 = 3;
const OP_REGISTER: u8 = 4;

/// What [`Database::open`] reconstructed from disk — surfaced up through
/// `SqlSession::open` so operators can see what a restart recovered.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Number of tables in the catalog after recovery.
    pub tables_restored: usize,
    /// WAL records applied on top of the snapshot (0 on a fresh directory
    /// or when the snapshot already covered the whole log).
    pub records_replayed: usize,
    /// Bytes dropped from the log's torn tail (non-zero only after a crash
    /// mid-append; the interrupted operation was never acknowledged).
    pub bytes_truncated: u64,
    /// Whether a snapshot file was loaded as the replay base.
    pub snapshot_loaded: bool,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovered {} table(s): {} WAL record(s) replayed on top of {}, \
             {} byte(s) of torn tail discarded",
            self.tables_restored,
            self.records_replayed,
            if self.snapshot_loaded {
                "a snapshot"
            } else {
                "an empty catalog"
            },
            self.bytes_truncated,
        )
    }
}

#[derive(Debug)]
struct DurabilityState {
    wal: WalWriter,
    snapshot_path: PathBuf,
    compact_threshold: u64,
}

/// An in-process database: a catalog of heap tables.
///
/// This is the object the Bismarck front-ends (`LogisticRegressionTrain`,
/// `SvmTrain`, ...) operate on: they read a training table from the catalog
/// and persist the learned model back into it as a new table, mirroring the
/// paper's `SELECT SVMTrain('myModel', 'LabeledPapers', 'vec', 'label')`.
#[derive(Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    durability: Option<DurabilityState>,
}

impl Database {
    /// An empty, purely in-memory database (nothing is persisted).
    pub fn new() -> Self {
        Database::default()
    }

    /// Open (or create) a durable database in `dir`.
    ///
    /// Recovery order: load `catalog.snap` if present, then replay
    /// `catalog.wal` records with LSNs above the snapshot's, truncating a
    /// torn tail left by a crash mid-append. Damage that no crash can
    /// explain — a checksum-corrupt record *followed by* valid data, a
    /// corrupt snapshot, replayed operations that contradict the catalog —
    /// is a hard [`StorageError::Corrupt`], never silently repaired.
    pub fn open(dir: impl AsRef<Path>) -> Result<(Database, RecoveryReport), StorageError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| StorageError::Io(format!("create {}: {e}", dir.display())))?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let wal_path = dir.join(WAL_FILE);

        let mut tables = BTreeMap::new();
        let mut snap_lsn = 0;
        let mut snapshot_loaded = false;
        if let Some(snap) = snapshot::read(&snapshot_path)? {
            snap_lsn = snap.last_lsn;
            snapshot_loaded = true;
            for table in snap.tables {
                tables.insert(table.name().to_string(), table);
            }
        }

        let mut records_replayed = 0;
        let mut bytes_truncated = 0;
        let wal = match durable::read_file(&wal_path) {
            Ok(bytes) => {
                let replayed = wal::replay(&bytes)?;
                bytes_truncated = replayed.truncated_bytes;
                let next_lsn = replayed.next_lsn().max(snap_lsn + 1);
                for record in &replayed.records {
                    if record.lsn <= snap_lsn {
                        continue; // already folded into the snapshot
                    }
                    apply_op(&mut tables, &record.op)?;
                    records_replayed += 1;
                }
                WalWriter::open(&wal_path, replayed.valid_len, next_lsn)?
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // Fresh directory, or a snapshot whose post-compaction state
                // never got a new log (both are consistent states).
                let mut writer = WalWriter::create(&wal_path)?;
                if snap_lsn > 0 {
                    writer = WalWriter::open(&wal_path, wal::WAL_HEADER_LEN, snap_lsn + 1)?;
                }
                writer
            }
            Err(e) => {
                return Err(StorageError::Io(format!(
                    "read WAL {}: {e}",
                    wal_path.display()
                )))
            }
        };

        let report = RecoveryReport {
            tables_restored: tables.len(),
            records_replayed,
            bytes_truncated,
            snapshot_loaded,
        };
        Ok((
            Database {
                tables,
                durability: Some(DurabilityState {
                    wal,
                    snapshot_path,
                    compact_threshold: DEFAULT_COMPACT_THRESHOLD,
                }),
            },
            report,
        ))
    }

    /// Whether this catalog is backed by a durable directory.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Override the WAL size at which a compaction is attempted (durable
    /// catalogs only; no-op otherwise). Mainly for tests.
    pub fn set_compact_threshold(&mut self, bytes: u64) {
        if let Some(d) = self.durability.as_mut() {
            d.compact_threshold = bytes;
        }
    }

    /// Append one operation to the WAL (fsynced) before it is applied.
    fn log_op(&mut self, op: &[u8]) -> Result<(), StorageError> {
        match self.durability.as_mut() {
            Some(d) => d.wal.append(op).map(|_lsn| ()),
            None => Ok(()),
        }
    }

    /// Compact if the log has outgrown its threshold. Best-effort: a failed
    /// compaction leaves both the log and the snapshot in their previous
    /// consistent states, so the error is not worth failing the (already
    /// durable) triggering operation for.
    fn maybe_compact(&mut self) {
        let Some(d) = self.durability.as_mut() else {
            return;
        };
        if d.wal.size_bytes() >= d.compact_threshold {
            let _ = compact_state(d, &self.tables);
        }
    }

    /// Fold the current catalog into a fresh snapshot and truncate the WAL.
    ///
    /// Crash-safe in both directions: the snapshot is written atomically, and
    /// because it records the last LSN it incorporates, a crash *between* the
    /// snapshot rename and the log truncation only leaves stale records that
    /// the next [`Database::open`] skips by LSN.
    pub fn compact(&mut self) -> Result<(), StorageError> {
        match self.durability.as_mut() {
            Some(d) => compact_state(d, &self.tables),
            None => Ok(()),
        }
    }

    /// Create a table with the given schema; fails if the name is taken.
    ///
    /// On a durable catalog, note that mutating the returned `&mut Table`
    /// directly bypasses the log — use [`Database::insert_rows`] for logged
    /// row ingest.
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
    ) -> Result<&mut Table, StorageError> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(StorageError::TableExists(name));
        }
        self.log_op(&encode_create(&name, &schema))?;
        let table = Table::new(name.clone(), schema);
        self.tables.insert(name.clone(), table);
        self.maybe_compact();
        Ok(self.tables.get_mut(&name).expect("table was just inserted"))
    }

    /// Register an already-built table (e.g. from a dataset generator or a
    /// trained model); replaces any table of the same name, mirroring
    /// `CREATE OR REPLACE`. On a durable catalog the full table contents are
    /// logged, which is how trained models survive restarts.
    pub fn register_table(&mut self, table: Table) -> Result<(), StorageError> {
        self.log_op(&encode_register(&table))?;
        self.tables.insert(table.name().to_string(), table);
        self.maybe_compact();
        Ok(())
    }

    /// Validate and append a batch of rows to a table, write-ahead logging
    /// the batch as one record. Either every row is accepted or none is.
    pub fn insert_rows(
        &mut self,
        name: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<usize, StorageError> {
        let table = self
            .tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        for row in &rows {
            table.schema().validate(row)?;
        }
        if rows.is_empty() {
            return Ok(0);
        }
        self.log_op(&encode_insert(name, &rows))?;
        let table = self.tables.get_mut(name).expect("existence checked above");
        let count = rows.len();
        for row in rows {
            table.insert(row).expect("row was validated above");
        }
        self.maybe_compact();
        Ok(count)
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<&Table, StorageError> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Mutable lookup by name. On a durable catalog, mutations made through
    /// this reference bypass the log; prefer [`Database::insert_rows`] /
    /// [`Database::register_table`] for changes that must survive a restart.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StorageError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Remove a table; returns it if present.
    pub fn drop_table(&mut self, name: &str) -> Result<Table, StorageError> {
        if !self.tables.contains_key(name) {
            return Err(StorageError::UnknownTable(name.to_string()));
        }
        self.log_op(&encode_drop(name))?;
        let table = self.tables.remove(name).expect("existence checked above");
        self.maybe_compact();
        Ok(table)
    }

    /// Whether a table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

fn compact_state(
    d: &mut DurabilityState,
    tables: &BTreeMap<String, Table>,
) -> Result<(), StorageError> {
    let last_lsn = d.wal.next_lsn() - 1;
    snapshot::write(&d.snapshot_path, last_lsn, tables.values())?;
    d.wal.reset()
}

fn encode_create(name: &str, schema: &Schema) -> Vec<u8> {
    let mut op = vec![OP_CREATE];
    push_string(&mut op, name);
    push_schema(&mut op, schema);
    op
}

fn encode_drop(name: &str) -> Vec<u8> {
    let mut op = vec![OP_DROP];
    push_string(&mut op, name);
    op
}

fn encode_insert(name: &str, rows: &[Vec<Value>]) -> Vec<u8> {
    let mut op = vec![OP_INSERT];
    push_string(&mut op, name);
    op.extend_from_slice(&(rows.len() as u64).to_le_bytes());
    for row in rows {
        push_row(&mut op, row);
    }
    op
}

fn encode_register(table: &Table) -> Vec<u8> {
    let mut op = vec![OP_REGISTER];
    push_string(&mut op, table.name());
    push_schema(&mut op, table.schema());
    op.extend_from_slice(&(table.len() as u64).to_le_bytes());
    for tuple in table.scan() {
        push_row(&mut op, tuple.values());
    }
    op
}

/// Apply one replayed WAL operation. Inconsistencies (creating a table that
/// exists, dropping or inserting into one that does not) mean the log and
/// the catalog disagree — hard corruption, since the log was the only writer.
fn apply_op(tables: &mut BTreeMap<String, Table>, op: &[u8]) -> Result<(), StorageError> {
    let corrupt = |msg: String| StorageError::Corrupt(msg);
    let mut r = Reader::new(op);
    match r.u8()? {
        OP_CREATE => {
            let name = r.string()?;
            let schema = read_schema(&mut r)?;
            r.finish()?;
            if tables.contains_key(&name) {
                return Err(corrupt(format!(
                    "replayed CREATE TABLE for already-existing table '{name}'"
                )));
            }
            tables.insert(name.clone(), Table::new(name, schema));
        }
        OP_DROP => {
            let name = r.string()?;
            r.finish()?;
            if tables.remove(&name).is_none() {
                return Err(corrupt(format!(
                    "replayed DROP TABLE for unknown table '{name}'"
                )));
            }
        }
        OP_INSERT => {
            let name = r.string()?;
            let count = r.len_prefix(8)?;
            let mut rows = Vec::with_capacity(count);
            for _ in 0..count {
                rows.push(read_row(&mut r)?);
            }
            r.finish()?;
            let table = tables
                .get_mut(&name)
                .ok_or_else(|| corrupt(format!("replayed INSERT into unknown table '{name}'")))?;
            for row in rows {
                table.insert(row).map_err(|e| {
                    corrupt(format!("replayed row violates schema of '{name}': {e}"))
                })?;
            }
        }
        OP_REGISTER => {
            let name = r.string()?;
            let schema = read_schema(&mut r)?;
            let count = r.len_prefix(8)?;
            let mut table = Table::new(name.clone(), schema);
            for _ in 0..count {
                let row = read_row(&mut r)?;
                table.insert(row).map_err(|e| {
                    corrupt(format!("replayed row violates schema of '{name}': {e}"))
                })?;
            }
            r.finish()?;
            tables.insert(name, table);
        }
        tag => return Err(corrupt(format!("unknown WAL operation tag {tag}"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};
    use crate::value::Value;

    fn schema() -> Schema {
        Schema::new(vec![Column::new("id", DataType::Int)]).unwrap()
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bismarck-catalog-test-{}-{name}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn create_and_lookup() {
        let mut db = Database::new();
        db.create_table("t", schema()).unwrap();
        assert!(db.contains("t"));
        assert_eq!(db.table("t").unwrap().len(), 0);
        assert!(db.table("missing").is_err());
        assert_eq!(db.len(), 1);
        assert!(!db.is_empty());
        assert!(!db.is_durable());
    }

    #[test]
    fn create_duplicate_fails() {
        let mut db = Database::new();
        db.create_table("t", schema()).unwrap();
        assert!(matches!(
            db.create_table("t", schema()),
            Err(StorageError::TableExists(_))
        ));
    }

    #[test]
    fn register_replaces() {
        let mut db = Database::new();
        db.create_table("t", schema()).unwrap();
        db.table_mut("t")
            .unwrap()
            .insert(vec![Value::Int(1)])
            .unwrap();
        let replacement = Table::new("t", schema());
        db.register_table(replacement).unwrap();
        assert_eq!(db.table("t").unwrap().len(), 0);
    }

    #[test]
    fn drop_table_removes() {
        let mut db = Database::new();
        db.create_table("t", schema()).unwrap();
        let t = db.drop_table("t").unwrap();
        assert_eq!(t.name(), "t");
        assert!(!db.contains("t"));
        assert!(db.drop_table("t").is_err());
    }

    #[test]
    fn table_names_sorted() {
        let mut db = Database::new();
        db.create_table("b", schema()).unwrap();
        db.create_table("a", schema()).unwrap();
        assert_eq!(db.table_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn insert_rows_is_all_or_nothing() {
        let mut db = Database::new();
        db.create_table("t", schema()).unwrap();
        let err = db
            .insert_rows("t", vec![vec![Value::Int(1)], vec![Value::Double(2.0)]])
            .unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
        assert!(db.table("t").unwrap().is_empty());
        assert_eq!(
            db.insert_rows("t", vec![vec![Value::Int(1)], vec![Value::Int(2)]])
                .unwrap(),
            2
        );
        assert_eq!(db.table("t").unwrap().len(), 2);
    }

    #[test]
    fn durable_catalog_survives_reopen() {
        let dir = temp_dir("reopen");
        {
            let (mut db, report) = Database::open(&dir).unwrap();
            assert!(db.is_durable());
            assert_eq!(report, RecoveryReport::default());
            db.create_table("t", schema()).unwrap();
            db.insert_rows("t", vec![vec![Value::Int(7)], vec![Value::Int(8)]])
                .unwrap();
            db.create_table("gone", schema()).unwrap();
            db.drop_table("gone").unwrap();
        }
        let (db, report) = Database::open(&dir).unwrap();
        assert_eq!(report.tables_restored, 1);
        assert_eq!(report.records_replayed, 4);
        assert_eq!(report.bytes_truncated, 0);
        assert!(!report.snapshot_loaded);
        let t = db.table("t").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1).unwrap().get_int(0), Some(8));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_snapshots_and_truncates_then_reopens() {
        let dir = temp_dir("compact");
        {
            let (mut db, _) = Database::open(&dir).unwrap();
            db.set_compact_threshold(1); // compact after every operation
            db.create_table("t", schema()).unwrap();
            for i in 0..10 {
                db.insert_rows("t", vec![vec![Value::Int(i)]]).unwrap();
            }
        }
        let (db, report) = Database::open(&dir).unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.records_replayed, 0);
        assert_eq!(db.table("t").unwrap().len(), 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn register_table_is_replayed_with_contents() {
        let dir = temp_dir("register");
        {
            let (mut db, _) = Database::open(&dir).unwrap();
            let mut t = Table::new("model", schema());
            t.insert(vec![Value::Int(41)]).unwrap();
            db.register_table(t).unwrap();
        }
        let (db, _) = Database::open(&dir).unwrap();
        assert_eq!(
            db.table("model").unwrap().get(0).unwrap().get_int(0),
            Some(41)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_report_display_is_readable() {
        let report = RecoveryReport {
            tables_restored: 2,
            records_replayed: 5,
            bytes_truncated: 17,
            snapshot_loaded: true,
        };
        let text = report.to_string();
        assert!(text.contains("2 table(s)"));
        assert!(text.contains("5 WAL record(s)"));
        assert!(text.contains("17 byte(s)"));
    }
}
