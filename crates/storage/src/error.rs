//! Error type for the storage substrate.

use crate::schema::DataType;

/// Errors raised by catalog, schema and table operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// A table with this name already exists in the catalog.
    TableExists(String),
    /// No table with this name exists in the catalog.
    UnknownTable(String),
    /// No column with this name exists in the schema.
    UnknownColumn(String),
    /// A schema declared the same column name twice.
    DuplicateColumn(String),
    /// A row had the wrong number of values for the schema.
    ArityMismatch {
        /// Number of columns declared by the schema.
        expected: usize,
        /// Number of values supplied.
        actual: usize,
    },
    /// A value's type did not match the column's declared type.
    TypeMismatch {
        /// Offending column.
        column: String,
        /// Declared type.
        expected: DataType,
        /// Supplied type.
        actual: DataType,
    },
    /// A NULL value was supplied for a non-nullable column.
    NullViolation(String),
    /// A row index was out of range.
    RowOutOfRange {
        /// Requested row.
        row: usize,
        /// Number of rows in the table.
        len: usize,
    },
    /// CSV or other external data could not be parsed.
    Parse(String),
    /// An underlying filesystem operation failed (message includes the path).
    Io(String),
    /// On-disk durability state (WAL or snapshot) is damaged beyond what
    /// crash recovery is allowed to repair silently.
    Corrupt(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::TableExists(name) => write!(f, "table '{name}' already exists"),
            StorageError::UnknownTable(name) => write!(f, "unknown table '{name}'"),
            StorageError::UnknownColumn(name) => write!(f, "unknown column '{name}'"),
            StorageError::DuplicateColumn(name) => {
                write!(f, "column '{name}' declared more than once")
            }
            StorageError::ArityMismatch { expected, actual } => {
                write!(f, "expected {expected} values, got {actual}")
            }
            StorageError::TypeMismatch {
                column,
                expected,
                actual,
            } => {
                write!(f, "column '{column}' expects {expected}, got {actual}")
            }
            StorageError::NullViolation(column) => {
                write!(f, "column '{column}' is not nullable")
            }
            StorageError::RowOutOfRange { row, len } => {
                write!(f, "row {row} out of range for table with {len} rows")
            }
            StorageError::Parse(msg) => write!(f, "parse error: {msg}"),
            StorageError::Io(msg) => write!(f, "storage I/O error: {msg}"),
            StorageError::Corrupt(msg) => write!(f, "storage corruption: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::TypeMismatch {
            column: "label".into(),
            expected: DataType::Double,
            actual: DataType::Text,
        };
        let msg = e.to_string();
        assert!(msg.contains("label"));
        assert!(msg.contains("DOUBLE"));
        assert!(msg.contains("TEXT"));
        assert!(StorageError::UnknownTable("t".into())
            .to_string()
            .contains("t"));
        assert!(StorageError::RowOutOfRange { row: 5, len: 2 }
            .to_string()
            .contains('5'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&StorageError::Parse("bad".into()));
    }
}
