//! Plain-text import/export for tables.
//!
//! The paper loads public datasets (Forest, DBLife, MovieLens, CoNLL) into
//! database tables before training. We support a simple delimited text
//! format so the examples can load data from disk and so generated datasets
//! can be inspected:
//!
//! * `INT` and `DOUBLE` columns hold their literal value;
//! * `TEXT` columns are rendered **quoted** (`"alice"`) with `\"`, `\\`,
//!   `\n` and `\r` escapes, so text containing the `,` field delimiter, the
//!   `;` vector separator, quotes, or newlines round-trips exactly.
//!   Unquoted text is still accepted on import for hand-written files;
//! * `DENSE_VEC` columns hold semicolon-separated floats (`1.0;0.5;2.0`);
//! * `SPARSE_VEC` columns hold semicolon-separated `index:value` pairs.
//!
//! NULL is rendered as an *unquoted* empty field, and an unquoted `null`
//! (any case) also parses as NULL. The quoted literals `""` and `"null"`
//! are ordinary text values — quoting is what disambiguates them from the
//! NULL sentinel, so export → import is the identity.
//!
//! A line whose first non-blank character is an **unquoted** `#` is a
//! comment. Rendered text always starts with its opening quote, so a text
//! value beginning with `#` in the first column can never be mistaken for
//! a comment on re-import.
//!
//! Fields are separated by commas; `SEQUENCE` columns are not supported in
//! the text format (CRF data is generated programmatically).

use bismarck_linalg::{DenseVector, SparseVector};

use crate::error::StorageError;
use crate::scan::TupleScan;
use crate::schema::{DataType, Schema};
use crate::table::Table;
use crate::value::Value;

/// One field split out of a line, with quoting preserved so NULL detection
/// can distinguish the unquoted sentinel from quoted literals.
struct RawField {
    text: String,
    quoted: bool,
}

/// Split a line into fields on unquoted commas, unescaping quoted fields.
fn split_line(line: &str, line_no: usize) -> Result<Vec<RawField>, StorageError> {
    let err = |msg: String| StorageError::Parse(format!("line {line_no}: {msg}"));
    let mut fields = Vec::new();
    let mut chars = line.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        if chars.peek() == Some(&'"') {
            chars.next();
            let mut text = String::new();
            loop {
                match chars.next() {
                    None => return Err(err("unterminated quoted field".to_string())),
                    Some('"') => break,
                    Some('\\') => match chars.next() {
                        Some('\\') => text.push('\\'),
                        Some('"') => text.push('"'),
                        Some('n') => text.push('\n'),
                        Some('r') => text.push('\r'),
                        Some(c) => return Err(err(format!("unknown escape '\\{c}'"))),
                        None => return Err(err("dangling escape at end of line".to_string())),
                    },
                    Some(c) => text.push(c),
                }
            }
            while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
                chars.next();
            }
            fields.push(RawField { text, quoted: true });
            match chars.next() {
                None => break,
                Some(',') => continue,
                Some(c) => {
                    return Err(err(format!("unexpected '{c}' after closing quote")));
                }
            }
        } else {
            let mut text = String::new();
            let mut at_end = false;
            loop {
                match chars.next() {
                    None => {
                        at_end = true;
                        break;
                    }
                    Some(',') => break,
                    Some(c) => text.push(c),
                }
            }
            fields.push(RawField {
                text: text.trim().to_string(),
                quoted: false,
            });
            if at_end {
                break;
            }
        }
    }
    Ok(fields)
}

/// Parse one field according to its declared type.
fn parse_field(field: &RawField, dtype: DataType) -> Result<Value, StorageError> {
    // Only the *unquoted* sentinels mean NULL; `""` and `"null"` are text.
    if !field.quoted && (field.text.is_empty() || field.text.eq_ignore_ascii_case("null")) {
        return Ok(Value::Null);
    }
    let text = field.text.as_str();
    match dtype {
        DataType::Int => text
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| StorageError::Parse(format!("bad int '{text}': {e}"))),
        DataType::Double => text
            .parse::<f64>()
            .map(Value::Double)
            .map_err(|e| StorageError::Parse(format!("bad double '{text}': {e}"))),
        DataType::Text => Ok(Value::Text(text.to_string())),
        DataType::DenseVec => {
            let mut values = Vec::new();
            for part in text.split(';').filter(|p| !p.trim().is_empty()) {
                let v: f64 = part
                    .trim()
                    .parse()
                    .map_err(|e| StorageError::Parse(format!("bad dense entry '{part}': {e}")))?;
                values.push(v);
            }
            Ok(Value::DenseVec(DenseVector::from(values)))
        }
        DataType::SparseVec => {
            let mut indices: Vec<u32> = Vec::new();
            let mut values: Vec<f64> = Vec::new();
            for part in text.split(';').filter(|p| !p.trim().is_empty()) {
                let (idx, val) = part.split_once(':').ok_or_else(|| {
                    StorageError::Parse(format!("sparse entry '{part}' is not index:value"))
                })?;
                let idx: u32 = idx
                    .trim()
                    .parse()
                    .map_err(|e| StorageError::Parse(format!("bad sparse index '{idx}': {e}")))?;
                let val: f64 = val
                    .trim()
                    .parse()
                    .map_err(|e| StorageError::Parse(format!("bad sparse value '{val}': {e}")))?;
                indices.push(idx);
                values.push(val);
            }
            // The checked constructor rejects unsorted or duplicate indices
            // outright — dot products and binary-search lookups assume a
            // strictly increasing layout, and a malformed input row must not
            // silently corrupt them.
            SparseVector::try_from_sorted(indices, values)
                .map(Value::SparseVec)
                .map_err(|e| StorageError::Parse(format!("bad sparse field '{text}': {e}")))
        }
        DataType::Sequence => Err(StorageError::Parse(
            "SEQUENCE columns are not supported by the text format".to_string(),
        )),
    }
}

/// Quote and escape a text value so it survives a round-trip unchanged.
fn render_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            // The parser is line-based, so literal newlines must travel
            // as escapes.
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render one value in the text format.
fn render_field(value: &Value) -> String {
    match value {
        Value::Null => String::new(),
        Value::Int(v) => v.to_string(),
        Value::Double(v) => format!("{v}"),
        Value::Text(s) => render_text(s),
        Value::DenseVec(v) => v
            .as_slice()
            .iter()
            .map(|x| format!("{x}"))
            .collect::<Vec<_>>()
            .join(";"),
        Value::SparseVec(v) => v
            .iter()
            .map(|(i, x)| format!("{i}:{x}"))
            .collect::<Vec<_>>()
            .join(";"),
        Value::Sequence(_) => "<sequence>".to_string(),
    }
}

/// Parse delimited text into rows matching `schema`. A line whose first
/// non-blank character is an unquoted `#` is skipped as a comment.
pub fn rows_from_str(schema: &Schema, text: &str) -> Result<Vec<Vec<Value>>, StorageError> {
    let mut rows = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        let line = line.trim();
        // An unquoted leading `#` marks a comment; rendered text always
        // starts with `"`, so exported rows can never be skipped here.
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields = split_line(line, line_no + 1)?;
        if fields.len() != schema.arity() {
            return Err(StorageError::Parse(format!(
                "line {}: expected {} fields, got {}",
                line_no + 1,
                schema.arity(),
                fields.len()
            )));
        }
        let mut row = Vec::with_capacity(fields.len());
        for (field, col) in fields.iter().zip(schema.columns().iter()) {
            row.push(parse_field(field, col.dtype)?);
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Parse delimited text into a new table with the given name and schema.
pub fn table_from_str(name: &str, schema: Schema, text: &str) -> Result<Table, StorageError> {
    let rows = rows_from_str(&schema, text)?;
    let mut table = Table::new(name, schema);
    table.insert_all(rows)?;
    Ok(table)
}

/// Render any tuple source (row-store or columnar) to the delimited text
/// format (no header).
pub fn tuples_to_string<S: TupleScan + ?Sized>(source: &S) -> String {
    let mut out = String::new();
    source.scan_tuples(&mut |tuple| {
        let line: Vec<String> = tuple.values().iter().map(render_field).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    });
    out
}

/// Render a table to the delimited text format (no header).
pub fn table_to_string(table: &Table) -> String {
    tuples_to_string(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("vec", DataType::DenseVec),
            Column::new("svec", DataType::SparseVec),
            Column::nullable("label", DataType::Double),
            Column::new("name", DataType::Text),
        ])
        .unwrap()
    }

    fn text_schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::nullable("note", DataType::Text),
        ])
        .unwrap()
    }

    fn roundtrip(t: &Table) -> Table {
        table_from_str("back", t.schema().clone(), &table_to_string(t)).unwrap()
    }

    #[test]
    fn parse_roundtrip() {
        let text = "1,1.0;2.0,0:1.5;3:2.0,-1,alice\n2,0.5;0.5,1:1.0,,bob\n";
        let t = table_from_str("t", schema(), text).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(0).unwrap().get_int(0), Some(1));
        assert_eq!(t.get(0).unwrap().feature_view(1).unwrap().dimension(), 2);
        assert_eq!(t.get(0).unwrap().feature_view(2).unwrap().nnz(), 2);
        assert!(t.get(1).unwrap().get(3).unwrap().is_null());
        assert_eq!(t.get(1).unwrap().get_text(4), Some("bob"));

        let rendered = table_to_string(&t);
        let t2 = table_from_str("t2", schema(), &rendered).unwrap();
        assert_eq!(t2.len(), 2);
        assert_eq!(
            t2.get(0)
                .unwrap()
                .feature_view(2)
                .unwrap()
                .dot(&[1.0, 0.0, 0.0, 1.0]),
            1.5 + 2.0
        );
    }

    #[test]
    fn adversarial_text_roundtrips() {
        // Regression: rendering used to emit text raw, so a `,` shifted
        // every later field on re-import and a `;` corrupted vector parsing.
        let mut t = Table::new("t", schema());
        let adversarial = [
            "a,b;c",
            "comma, inside",
            "semi;colons;galore",
            "quote\"and\\backslash",
            "line\nbreak\r\nboth",
            "  padded  ",
            "#looks-like-comment",
            "trailing,",
        ];
        for (i, s) in adversarial.iter().enumerate() {
            t.insert(vec![
                Value::Int(i as i64),
                Value::from(vec![1.0, -2.5]),
                Value::SparseVec(SparseVector::from_pairs(vec![(1, 0.5)])),
                Value::Double(0.25),
                Value::Text(s.to_string()),
            ])
            .unwrap();
        }
        let back = roundtrip(&t);
        assert_eq!(back.len(), t.len());
        for (i, s) in adversarial.iter().enumerate() {
            assert_eq!(back.get(i).unwrap().get_text(4), Some(*s), "row {i}");
            assert_eq!(back.get(i).unwrap().get_int(0), Some(i as i64));
            assert_eq!(
                back.get(i).unwrap().feature_view(1).unwrap().dimension(),
                2,
                "row {i} dense vector survived"
            );
        }
    }

    #[test]
    fn empty_and_null_text_survive_roundtrip() {
        // Regression: `""` and `"null"` used to decode as Value::Null
        // because the null check ran before type dispatch.
        let mut t = Table::new("t", text_schema());
        t.insert(vec![Value::Int(0), Value::Text("null".into())])
            .unwrap();
        t.insert(vec![Value::Int(1), Value::Text(String::new())])
            .unwrap();
        t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        t.insert(vec![Value::Int(3), Value::Text("NULL".into())])
            .unwrap();
        let back = roundtrip(&t);
        assert_eq!(back.get(0).unwrap().get_text(1), Some("null"));
        assert_eq!(back.get(1).unwrap().get_text(1), Some(""));
        assert!(back.get(2).unwrap().get(1).unwrap().is_null());
        assert_eq!(back.get(3).unwrap().get_text(1), Some("NULL"));
    }

    #[test]
    fn leading_hash_text_is_not_a_comment() {
        // Regression: a first-column text value starting with `#` used to be
        // dropped as a comment by table_from_str.
        let schema = Schema::new(vec![
            Column::new("tag", DataType::Text),
            Column::new("id", DataType::Int),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        t.insert(vec![Value::Text("#hashtag".into()), Value::Int(1)])
            .unwrap();
        let rendered = table_to_string(&t);
        let back = table_from_str("back", t.schema().clone(), &rendered).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.get(0).unwrap().get_text(0), Some("#hashtag"));
        // Unquoted `#` still starts a comment.
        let mixed = format!("# a real comment\n{rendered}");
        let back2 = table_from_str("b2", t.schema().clone(), &mixed).unwrap();
        assert_eq!(back2.len(), 1);
    }

    #[test]
    fn quoted_fields_parse_for_all_scalar_types() {
        let text = "\"alice\",7\n";
        let schema = Schema::new(vec![
            Column::new("name", DataType::Text),
            Column::new("id", DataType::Int),
        ])
        .unwrap();
        let t = table_from_str("t", schema, text).unwrap();
        assert_eq!(t.get(0).unwrap().get_text(0), Some("alice"));
        assert_eq!(t.get(0).unwrap().get_int(1), Some(7));
    }

    #[test]
    fn malformed_quoting_is_rejected() {
        let s = text_schema();
        for bad in [
            "1,\"unterminated\n",
            "1,\"bad escape \\q\"\n",
            "1,\"trailing\" junk\n",
            "1,\"dangling\\",
        ] {
            let err = table_from_str("t", s.clone(), bad).unwrap_err();
            assert!(
                matches!(err, StorageError::Parse(_)),
                "input {bad:?} should fail to parse"
            );
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\n1,1.0,0:1.0,0.0,x\n";
        let t = table_from_str("t", schema(), text).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn arity_mismatch_reports_line() {
        let err = table_from_str("t", schema(), "1,2.0\n").unwrap_err();
        assert!(matches!(err, StorageError::Parse(msg) if msg.contains("line 1")));
    }

    #[test]
    fn bad_numbers_rejected() {
        let text = "x,1.0,0:1.0,0.0,n\n";
        assert!(table_from_str("t", schema(), text).is_err());
        let text2 = "1,abc,0:1.0,0.0,n\n";
        assert!(table_from_str("t", schema(), text2).is_err());
        let text3 = "1,1.0,zz,0.0,n\n";
        assert!(table_from_str("t", schema(), text3).is_err());
    }

    #[test]
    fn unsorted_or_duplicate_sparse_entries_rejected() {
        // Out-of-order indices would corrupt binary-search lookups; the
        // checked constructor turns them into a parse error.
        let unsorted = "1,1.0,3:1.0;0:2.0,0.0,n\n";
        let err = table_from_str("t", schema(), unsorted).unwrap_err();
        assert!(matches!(err, StorageError::Parse(msg) if msg.contains("strictly increasing")));
        let duplicated = "1,1.0,2:1.0;2:2.0,0.0,n\n";
        assert!(table_from_str("t", schema(), duplicated).is_err());
    }

    #[test]
    fn columnar_renders_identically_to_row_store() {
        let mut t = Table::new("t", schema());
        for i in 0..10 {
            t.insert(vec![
                Value::Int(i),
                Value::from(vec![i as f64]),
                Value::SparseVec(SparseVector::from_pairs(vec![(0, 1.0)])),
                if i % 2 == 0 {
                    Value::Null
                } else {
                    Value::Double(i as f64)
                },
                Value::Text(format!("row {i}; \"quoted\"")),
            ])
            .unwrap();
        }
        let ct = crate::columnar::ColumnarTable::from_table(&t).unwrap();
        assert_eq!(tuples_to_string(&ct), table_to_string(&t));
    }
}
