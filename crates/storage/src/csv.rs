//! Plain-text import/export for tables.
//!
//! The paper loads public datasets (Forest, DBLife, MovieLens, CoNLL) into
//! database tables before training. We support a simple delimited text
//! format so the examples can load data from disk and so generated datasets
//! can be inspected:
//!
//! * `INT`, `DOUBLE`, `TEXT` columns hold their literal value;
//! * `DENSE_VEC` columns hold semicolon-separated floats (`1.0;0.5;2.0`);
//! * `SPARSE_VEC` columns hold semicolon-separated `index:value` pairs.
//!
//! Fields are separated by commas; `SEQUENCE` columns are not supported in
//! the text format (CRF data is generated programmatically).

use bismarck_linalg::{DenseVector, SparseVector};

use crate::error::StorageError;
use crate::schema::{DataType, Schema};
use crate::table::Table;
use crate::value::Value;

/// Parse one field according to its declared type.
fn parse_field(field: &str, dtype: DataType) -> Result<Value, StorageError> {
    let field = field.trim();
    if field.is_empty() || field.eq_ignore_ascii_case("null") {
        return Ok(Value::Null);
    }
    match dtype {
        DataType::Int => field
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| StorageError::Parse(format!("bad int '{field}': {e}"))),
        DataType::Double => field
            .parse::<f64>()
            .map(Value::Double)
            .map_err(|e| StorageError::Parse(format!("bad double '{field}': {e}"))),
        DataType::Text => Ok(Value::Text(field.to_string())),
        DataType::DenseVec => {
            let mut values = Vec::new();
            for part in field.split(';').filter(|p| !p.trim().is_empty()) {
                let v: f64 = part
                    .trim()
                    .parse()
                    .map_err(|e| StorageError::Parse(format!("bad dense entry '{part}': {e}")))?;
                values.push(v);
            }
            Ok(Value::DenseVec(DenseVector::from(values)))
        }
        DataType::SparseVec => {
            let mut indices: Vec<u32> = Vec::new();
            let mut values: Vec<f64> = Vec::new();
            for part in field.split(';').filter(|p| !p.trim().is_empty()) {
                let (idx, val) = part.split_once(':').ok_or_else(|| {
                    StorageError::Parse(format!("sparse entry '{part}' is not index:value"))
                })?;
                let idx: u32 = idx
                    .trim()
                    .parse()
                    .map_err(|e| StorageError::Parse(format!("bad sparse index '{idx}': {e}")))?;
                let val: f64 = val
                    .trim()
                    .parse()
                    .map_err(|e| StorageError::Parse(format!("bad sparse value '{val}': {e}")))?;
                indices.push(idx);
                values.push(val);
            }
            // The checked constructor rejects unsorted or duplicate indices
            // outright — dot products and binary-search lookups assume a
            // strictly increasing layout, and a malformed input row must not
            // silently corrupt them.
            SparseVector::try_from_sorted(indices, values)
                .map(Value::SparseVec)
                .map_err(|e| StorageError::Parse(format!("bad sparse field '{field}': {e}")))
        }
        DataType::Sequence => Err(StorageError::Parse(
            "SEQUENCE columns are not supported by the text format".to_string(),
        )),
    }
}

/// Render one value in the text format.
fn render_field(value: &Value) -> String {
    match value {
        Value::Null => String::new(),
        Value::Int(v) => v.to_string(),
        Value::Double(v) => format!("{v}"),
        Value::Text(s) => s.clone(),
        Value::DenseVec(v) => v
            .as_slice()
            .iter()
            .map(|x| format!("{x}"))
            .collect::<Vec<_>>()
            .join(";"),
        Value::SparseVec(v) => v
            .iter()
            .map(|(i, x)| format!("{i}:{x}"))
            .collect::<Vec<_>>()
            .join(";"),
        Value::Sequence(_) => "<sequence>".to_string(),
    }
}

/// Parse delimited text into a new table with the given name and schema.
pub fn table_from_str(name: &str, schema: Schema, text: &str) -> Result<Table, StorageError> {
    let mut table = Table::new(name, schema);
    for (line_no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != table.schema().arity() {
            return Err(StorageError::Parse(format!(
                "line {}: expected {} fields, got {}",
                line_no + 1,
                table.schema().arity(),
                fields.len()
            )));
        }
        let mut row = Vec::with_capacity(fields.len());
        for (field, col) in fields.iter().zip(table.schema().columns().iter().cloned()) {
            row.push(parse_field(field, col.dtype)?);
        }
        table.insert(row)?;
    }
    Ok(table)
}

/// Render a table to the delimited text format (no header).
pub fn table_to_string(table: &Table) -> String {
    let mut out = String::new();
    for tuple in table.scan() {
        let line: Vec<String> = tuple.values().iter().map(render_field).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("vec", DataType::DenseVec),
            Column::new("svec", DataType::SparseVec),
            Column::nullable("label", DataType::Double),
            Column::new("name", DataType::Text),
        ])
        .unwrap()
    }

    #[test]
    fn parse_roundtrip() {
        let text = "1,1.0;2.0,0:1.5;3:2.0,-1,alice\n2,0.5;0.5,1:1.0,,bob\n";
        let t = table_from_str("t", schema(), text).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(0).unwrap().get_int(0), Some(1));
        assert_eq!(t.get(0).unwrap().feature_view(1).unwrap().dimension(), 2);
        assert_eq!(t.get(0).unwrap().feature_view(2).unwrap().nnz(), 2);
        assert!(t.get(1).unwrap().get(3).unwrap().is_null());
        assert_eq!(t.get(1).unwrap().get_text(4), Some("bob"));

        let rendered = table_to_string(&t);
        let t2 = table_from_str("t2", schema(), &rendered).unwrap();
        assert_eq!(t2.len(), 2);
        assert_eq!(
            t2.get(0)
                .unwrap()
                .feature_view(2)
                .unwrap()
                .dot(&[1.0, 0.0, 0.0, 1.0]),
            1.5 + 2.0
        );
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\n1,1.0,0:1.0,0.0,x\n";
        let t = table_from_str("t", schema(), text).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn arity_mismatch_reports_line() {
        let err = table_from_str("t", schema(), "1,2.0\n").unwrap_err();
        assert!(matches!(err, StorageError::Parse(msg) if msg.contains("line 1")));
    }

    #[test]
    fn bad_numbers_rejected() {
        let text = "x,1.0,0:1.0,0.0,n\n";
        assert!(table_from_str("t", schema(), text).is_err());
        let text2 = "1,abc,0:1.0,0.0,n\n";
        assert!(table_from_str("t", schema(), text2).is_err());
        let text3 = "1,1.0,zz,0.0,n\n";
        assert!(table_from_str("t", schema(), text3).is_err());
    }

    #[test]
    fn unsorted_or_duplicate_sparse_entries_rejected() {
        // Out-of-order indices would corrupt binary-search lookups; the
        // checked constructor turns them into a parse error.
        let unsorted = "1,1.0,3:1.0;0:2.0,0.0,n\n";
        let err = table_from_str("t", schema(), unsorted).unwrap_err();
        assert!(matches!(err, StorageError::Parse(msg) if msg.contains("strictly increasing")));
        let duplicated = "1,1.0,2:1.0;2:2.0,0.0,n\n";
        assert!(table_from_str("t", schema(), duplicated).is_err());
    }
}
