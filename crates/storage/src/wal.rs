//! Append-only write-ahead log with checksummed records and torn-tail
//! recovery.
//!
//! The catalog logs every mutation here *before* applying it in memory, so a
//! restart can replay the log and land in exactly the state the last
//! successful operation left behind. On-disk layout, all integers
//! little-endian:
//!
//! ```text
//! [0..4)  magic b"BWAL"
//! [4..8)  format version (u32), currently 1
//! then zero or more records:
//!   [u32]  payload length n
//!   [n]    payload = [u64 LSN] + operation bytes
//!   [u64]  FNV-1a 64-bit checksum of the payload
//! ```
//!
//! Every record carries a monotonically increasing **log sequence number**.
//! The catalog snapshot stores the LSN it incorporates, so replay after a
//! crash between "snapshot renamed" and "log truncated" simply skips records
//! the snapshot already contains instead of re-applying them.
//!
//! Recovery distinguishes two kinds of damage:
//!
//! - a **torn tail** — the file ends inside a record, exactly what a crash
//!   mid-append leaves behind. The tail is dropped and replay succeeds; the
//!   byte count is surfaced in the recovery report.
//! - a **corrupt interior** — a record whose checksum fails but which is
//!   *followed by more log data*. No crash produces that shape (appends only
//!   tear the end), so it means bit rot or tampering and replay refuses with
//!   a hard error rather than silently dropping committed operations.

use std::io::{Seek as _, SeekFrom};
use std::path::{Path, PathBuf};

use crate::checkpoint::fnv1a64;
use crate::durable;
use crate::error::StorageError;

/// Magic bytes identifying a Bismarck WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"BWAL";

/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;

/// Size of the file header preceding the first record.
pub const WAL_HEADER_LEN: u64 = 8;

/// Bytes of fixed framing around each record payload (length prefix +
/// checksum).
const RECORD_OVERHEAD: usize = 4 + 8;

fn io_err(op: &str, path: &Path, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("{op} {}: {e}", path.display()))
}

fn header_bytes() -> [u8; WAL_HEADER_LEN as usize] {
    let mut h = [0u8; WAL_HEADER_LEN as usize];
    h[..4].copy_from_slice(&WAL_MAGIC);
    h[4..].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h
}

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The record's log sequence number.
    pub lsn: u64,
    /// Opaque operation payload (decoded by the catalog layer).
    pub op: Vec<u8>,
}

/// The outcome of scanning a WAL file during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReplay {
    /// Records recovered, in log order.
    pub records: Vec<WalRecord>,
    /// Length of the valid prefix of the file; the writer reopens at this
    /// offset, physically dropping anything beyond it.
    pub valid_len: u64,
    /// Bytes discarded from the torn tail (0 for a clean shutdown).
    pub truncated_bytes: u64,
}

impl WalReplay {
    /// The LSN the next append should use, considering only the log itself
    /// (the caller takes the max with the snapshot's LSN).
    pub fn next_lsn(&self) -> u64 {
        self.records.last().map_or(1, |r| r.lsn + 1)
    }
}

/// Scan the raw bytes of a WAL file, validating framing and checksums.
///
/// Returns the decoded records plus the valid prefix length. A file shorter
/// than the header (a crash during creation) recovers as empty with
/// `valid_len == 0`; a full header with the wrong magic or version is a hard
/// error — that file is not ours to truncate.
pub fn replay(bytes: &[u8]) -> Result<WalReplay, StorageError> {
    if (bytes.len() as u64) < WAL_HEADER_LEN {
        return Ok(WalReplay {
            records: Vec::new(),
            valid_len: 0,
            truncated_bytes: bytes.len() as u64,
        });
    }
    if bytes[..4] != WAL_MAGIC {
        return Err(StorageError::Corrupt(
            "not a WAL file (bad magic)".to_string(),
        ));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4B"));
    if version != WAL_VERSION {
        return Err(StorageError::Corrupt(format!(
            "unsupported WAL format version {version}"
        )));
    }

    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < 4 {
            break; // torn length prefix
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4B")) as usize;
        if len < 8 {
            // An append writes the (correct) length prefix before the
            // payload, and payloads always start with an 8-byte LSN, so no
            // crash produces a complete prefix claiming less than 8 bytes.
            return Err(StorageError::Corrupt(format!(
                "WAL record at byte {pos} claims impossible payload length {len}"
            )));
        }
        let Some(total) = len.checked_add(RECORD_OVERHEAD) else {
            return Err(StorageError::Corrupt(format!(
                "WAL record at byte {pos} claims overflowing payload length {len}"
            )));
        };
        if total > remaining {
            break; // torn payload or checksum
        }
        let payload = &bytes[pos + 4..pos + 4 + len];
        let stored = u64::from_le_bytes(bytes[pos + 4 + len..pos + total].try_into().expect("8B"));
        if fnv1a64(payload) != stored {
            if pos + total == bytes.len() {
                break; // checksum-bad final record: torn tail
            }
            return Err(StorageError::Corrupt(format!(
                "WAL record at byte {pos} fails its checksum but is not the \
                 last record — the log interior is corrupt"
            )));
        }
        let lsn = u64::from_le_bytes(payload[..8].try_into().expect("8B"));
        if let Some(last) = records.last() {
            let last: &WalRecord = last;
            if lsn <= last.lsn {
                return Err(StorageError::Corrupt(format!(
                    "WAL LSNs are not increasing ({} then {lsn})",
                    last.lsn
                )));
            }
        }
        records.push(WalRecord {
            lsn,
            op: payload[8..].to_vec(),
        });
        pos += total;
    }

    Ok(WalReplay {
        records,
        valid_len: pos as u64,
        truncated_bytes: (bytes.len() - pos) as u64,
    })
}

/// Appends records to the log, fsyncing each one before the caller applies
/// the operation in memory.
#[derive(Debug)]
pub struct WalWriter {
    file: std::fs::File,
    path: PathBuf,
    len: u64,
    next_lsn: u64,
    poisoned: bool,
}

impl WalWriter {
    /// Create a fresh, empty log at `path` (header only, durably synced).
    pub fn create(path: &Path) -> Result<WalWriter, StorageError> {
        let mut file = durable::create_file(path).map_err(|e| io_err("create", path, e))?;
        durable::write_all(&mut file, &header_bytes()).map_err(|e| io_err("write", path, e))?;
        durable::sync_file(&file).map_err(|e| io_err("sync", path, e))?;
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            durable::sync_dir(parent).map_err(|e| io_err("sync dir", path, e))?;
        }
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            len: WAL_HEADER_LEN,
            next_lsn: 1,
            poisoned: false,
        })
    }

    /// Reopen an existing log after [`replay`], dropping anything beyond the
    /// valid prefix so new appends extend good data. A `valid_len` below the
    /// header length (crash during creation) rewrites the header.
    pub fn open(path: &Path, valid_len: u64, next_lsn: u64) -> Result<WalWriter, StorageError> {
        if valid_len < WAL_HEADER_LEN {
            let mut writer = WalWriter::create(path)?;
            writer.next_lsn = next_lsn;
            return Ok(writer);
        }
        let mut file = durable::open_append(path).map_err(|e| io_err("open", path, e))?;
        let actual = file.metadata().map_err(|e| io_err("stat", path, e))?.len();
        if actual != valid_len {
            durable::truncate_file(&file, valid_len).map_err(|e| io_err("truncate", path, e))?;
            durable::sync_file(&file).map_err(|e| io_err("sync", path, e))?;
        }
        // `set_len` and `open` leave the cursor wherever it was; appends must
        // start exactly at the valid prefix's end.
        file.seek(SeekFrom::Start(valid_len))
            .map_err(|e| io_err("seek", path, e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            len: valid_len,
            next_lsn,
            poisoned: false,
        })
    }

    /// Current file length in bytes (the compaction trigger input).
    pub fn size_bytes(&self) -> u64 {
        self.len
    }

    /// The LSN the next append will stamp.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Append one operation record and fsync it. Returns the record's LSN.
    ///
    /// On failure the writer first tries to truncate the file back to its
    /// pre-append length so the log stays clean; if even that fails (e.g. the
    /// injected fault models a process crash) the writer is *poisoned* — all
    /// further appends fail — because the on-disk tail is no longer known to
    /// be well-formed. Reopening the database recovers via torn-tail
    /// truncation.
    pub fn append(&mut self, op: &[u8]) -> Result<u64, StorageError> {
        if self.poisoned {
            return Err(StorageError::Io(format!(
                "WAL writer for {} is poisoned by an earlier failed append; \
                 reopen the database to recover",
                self.path.display()
            )));
        }
        let lsn = self.next_lsn;
        let mut payload = Vec::with_capacity(8 + op.len());
        payload.extend_from_slice(&lsn.to_le_bytes());
        payload.extend_from_slice(op);
        let mut record = Vec::with_capacity(payload.len() + RECORD_OVERHEAD);
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&payload);
        record.extend_from_slice(&fnv1a64(&payload).to_le_bytes());

        let result = durable::write_all(&mut self.file, &record)
            .map_err(|e| io_err("append", &self.path, e))
            .and_then(|()| {
                durable::sync_file(&self.file).map_err(|e| io_err("sync", &self.path, e))
            });
        match result {
            Ok(()) => {
                self.len += record.len() as u64;
                self.next_lsn += 1;
                Ok(lsn)
            }
            Err(e) => {
                // Scrub the possibly-torn record so the log stays appendable.
                let cleaned = durable::truncate_file(&self.file, self.len)
                    .and_then(|()| durable::sync_file(&self.file))
                    .and_then(|()| self.file.seek(SeekFrom::Start(self.len)).map(|_| ()));
                if cleaned.is_err() {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }

    /// Truncate the log back to its header after a snapshot has durably
    /// captured everything up to the current LSN. LSNs keep increasing across
    /// the reset so snapshot/log consistency checks stay monotone.
    pub fn reset(&mut self) -> Result<(), StorageError> {
        durable::truncate_file(&self.file, WAL_HEADER_LEN)
            .map_err(|e| io_err("truncate", &self.path, e))?;
        durable::sync_file(&self.file).map_err(|e| io_err("sync", &self.path, e))?;
        self.file
            .seek(SeekFrom::Start(WAL_HEADER_LEN))
            .map_err(|e| io_err("seek", &self.path, e))?;
        self.len = WAL_HEADER_LEN;
        self.poisoned = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bismarck-wal-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}.wal"))
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let path = temp_wal("roundtrip");
        let mut w = WalWriter::create(&path).unwrap();
        assert_eq!(w.append(b"first op").unwrap(), 1);
        assert_eq!(w.append(b"second, longer operation").unwrap(), 2);
        let replayed = replay(&fs::read(&path).unwrap()).unwrap();
        assert_eq!(replayed.truncated_bytes, 0);
        assert_eq!(replayed.valid_len, w.size_bytes());
        assert_eq!(replayed.next_lsn(), 3);
        assert_eq!(
            replayed.records,
            vec![
                WalRecord {
                    lsn: 1,
                    op: b"first op".to_vec()
                },
                WalRecord {
                    lsn: 2,
                    op: b"second, longer operation".to_vec()
                },
            ]
        );
        fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = temp_wal("torn");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"kept").unwrap();
        let good_len = w.size_bytes();
        w.append(b"this record will be torn").unwrap();
        drop(w);
        let bytes = fs::read(&path).unwrap();
        // Cut the second record mid-payload, as a crash mid-append would.
        let torn = &bytes[..good_len as usize + 7];
        let replayed = replay(torn).unwrap();
        assert_eq!(replayed.records.len(), 1);
        assert_eq!(replayed.records[0].op, b"kept");
        assert_eq!(replayed.valid_len, good_len);
        assert_eq!(replayed.truncated_bytes, 7);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn interior_corruption_is_a_hard_error() {
        let path = temp_wal("interior");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"first").unwrap();
        let first_end = w.size_bytes() as usize;
        w.append(b"second").unwrap();
        drop(w);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload bit inside the *first* record.
        bytes[first_end - 10] ^= 0x01;
        match replay(&bytes) {
            Err(StorageError::Corrupt(msg)) => assert!(msg.contains("checksum")),
            other => panic!("expected hard corruption error, got {other:?}"),
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_bad_final_record_is_torn_tail() {
        let path = temp_wal("final-bad");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"kept").unwrap();
        let good_len = w.size_bytes();
        w.append(b"damaged").unwrap();
        drop(w);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 10;
        bytes[last] ^= 0x01; // corrupt the final record's checksum region
        let replayed = replay(&bytes).unwrap();
        assert_eq!(replayed.records.len(), 1);
        assert_eq!(replayed.valid_len, good_len);
        assert!(replayed.truncated_bytes > 0);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_drops_tail_and_continues_lsns() {
        let path = temp_wal("reopen");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"one").unwrap();
        w.append(b"two").unwrap();
        drop(w);
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xAB; 5]); // torn garbage after the records
        fs::write(&path, &bytes).unwrap();
        let replayed = replay(&fs::read(&path).unwrap()).unwrap();
        assert_eq!(replayed.truncated_bytes, 5);
        let mut w = WalWriter::open(&path, replayed.valid_len, replayed.next_lsn()).unwrap();
        assert_eq!(w.append(b"three").unwrap(), 3);
        let clean = replay(&fs::read(&path).unwrap()).unwrap();
        assert_eq!(clean.truncated_bytes, 0);
        assert_eq!(clean.records.len(), 3);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn short_file_recovers_as_empty() {
        let replayed = replay(b"BW").unwrap();
        assert!(replayed.records.is_empty());
        assert_eq!(replayed.valid_len, 0);
        assert_eq!(replayed.truncated_bytes, 2);
    }

    #[test]
    fn foreign_file_is_rejected() {
        assert!(matches!(
            replay(b"NOTAWALFILE!"),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn reset_truncates_to_header() {
        let path = temp_wal("reset");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"compacted away").unwrap();
        w.reset().unwrap();
        assert_eq!(w.size_bytes(), WAL_HEADER_LEN);
        assert_eq!(w.append(b"after").unwrap(), 2);
        let replayed = replay(&fs::read(&path).unwrap()).unwrap();
        assert_eq!(replayed.records.len(), 1);
        assert_eq!(replayed.records[0].lsn, 2);
        fs::remove_file(&path).ok();
    }
}
