//! Column values.
//!
//! The training tables of the paper (e.g. `LabeledPapers(id, vec, label)`)
//! store a key, a feature vector column and a label column. We model that
//! directly: values are NULL, 64-bit integers, doubles, text, or a dense /
//! sparse array of doubles — the "array of floats" column type the MADlib
//! interface expects.

use bismarck_linalg::{DenseVector, FeatureVectorRef, SparseVector};

use crate::schema::DataType;

/// A single column value inside a [`crate::Tuple`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Double(f64),
    /// UTF-8 text.
    Text(String),
    /// Dense array of doubles (feature vector).
    DenseVec(DenseVector),
    /// Sparse array of doubles (feature vector in index:value form).
    SparseVec(SparseVector),
    /// A sequence of (token-feature, label) pairs for structured-prediction
    /// tasks; each element stores the per-position sparse feature vector and
    /// its integer label. This is how CoNLL-style chunking rows are stored.
    Sequence(Vec<(SparseVector, u32)>),
}

impl Value {
    /// The declared [`DataType`] this value inhabits, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Text(_) => Some(DataType::Text),
            Value::DenseVec(_) => Some(DataType::DenseVec),
            Value::SparseVec(_) => Some(DataType::SparseVec),
            Value::Sequence(_) => Some(DataType::Sequence),
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as `f64`, coercing integers; `None` otherwise.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Interpret as `i64`, truncating doubles; `None` otherwise.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Double(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// Borrow as text, `None` otherwise.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a zero-copy feature-vector view (dense or sparse).
    ///
    /// This replaced a `FeatureVector`-cloning accessor: the training hot
    /// path reads every feature column once per tuple per epoch, so the view
    /// must not heap-allocate. Call `.to_owned()` on the view at the few
    /// call sites that need the vector to outlive the tuple.
    #[inline]
    pub fn feature_view(&self) -> Option<FeatureVectorRef<'_>> {
        match self {
            Value::DenseVec(v) => Some(FeatureVectorRef::Dense(v.as_slice())),
            Value::SparseVec(v) => Some(FeatureVectorRef::from(v)),
            _ => None,
        }
    }

    /// Borrow as a label sequence, `None` otherwise.
    pub fn as_sequence(&self) -> Option<&[(SparseVector, u32)]> {
        match self {
            Value::Sequence(s) => Some(s),
            _ => None,
        }
    }

    /// Approximate in-memory footprint in bytes, used for Table 1 style
    /// dataset statistics.
    pub fn approx_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Double(_) => 8,
            Value::Text(s) => s.len() + 8,
            Value::DenseVec(v) => v.len() * 8 + 16,
            Value::SparseVec(v) => v.nnz() * 12 + 16,
            Value::Sequence(s) => s.iter().map(|(f, _)| f.nnz() * 12 + 20).sum::<usize>() + 16,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<DenseVector> for Value {
    fn from(v: DenseVector) -> Self {
        Value::DenseVec(v)
    }
}

impl From<SparseVector> for Value {
    fn from(v: SparseVector) -> Self {
        Value::SparseVec(v)
    }
}

impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::DenseVec(DenseVector::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_mapping() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Double(1.0).data_type(), Some(DataType::Double));
        assert_eq!(Value::from("x").data_type(), Some(DataType::Text));
        assert_eq!(Value::Null.data_type(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::Int(3).as_double(), Some(3.0));
        assert_eq!(Value::Double(2.7).as_int(), Some(2));
        assert_eq!(Value::from("x").as_double(), None);
    }

    #[test]
    fn feature_view_borrows_both_layouts() {
        let v = Value::from(vec![1.0, 2.0]);
        let fv = v.feature_view().unwrap();
        assert_eq!(fv.dimension(), 2);
        assert!((fv.dot(&[1.0, 1.0]) - 3.0).abs() < 1e-12);
        let sv = Value::from(SparseVector::from_pairs(vec![(7, 1.0)]));
        assert_eq!(sv.feature_view().unwrap().dimension(), 8);
        assert!(Value::Int(3).feature_view().is_none());
        // The view borrows: converting to owned reproduces the payload.
        let owned = sv.feature_view().unwrap().to_owned();
        assert_eq!(owned.nnz(), 1);
    }

    #[test]
    fn sequence_access() {
        let seq = Value::Sequence(vec![(SparseVector::from_pairs(vec![(0, 1.0)]), 2)]);
        assert_eq!(seq.as_sequence().unwrap().len(), 1);
        assert!(Value::Int(1).as_sequence().is_none());
    }

    #[test]
    fn approx_bytes_monotone_in_payload() {
        let small = Value::from(vec![1.0; 2]);
        let big = Value::from(vec![1.0; 100]);
        assert!(big.approx_bytes() > small.approx_bytes());
        assert!(Value::from("hello").approx_bytes() > Value::Null.approx_bytes());
    }
}
