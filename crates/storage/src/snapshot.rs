//! Full-catalog snapshots: the compaction target of the WAL.
//!
//! A snapshot is a single file holding every table in the catalog plus the
//! **LSN of the last WAL record it incorporates**. Recovery loads the
//! snapshot first and then replays only WAL records with a higher LSN, which
//! makes the compaction sequence crash-safe: if the process dies after the
//! snapshot is renamed into place but before the log is truncated, the stale
//! log records are simply skipped on the next open instead of being applied
//! twice.
//!
//! On-disk layout, all integers little-endian:
//!
//! ```text
//! [0..4)   magic b"BSNP"
//! [4..8)   format version (u32), currently 1
//! [8..n-8) payload:
//!            u64 last LSN incorporated
//!            u64 table count, then per table:
//!              name (length-prefixed UTF-8), schema, u64 row count, rows
//! [n-8..n) FNV-1a 64-bit checksum of the payload
//! ```
//!
//! Snapshots are written exclusively through [`crate::durable::atomic_write`],
//! so the file under the snapshot path is always a complete generation.

use std::path::Path;

use crate::checkpoint::fnv1a64;
use crate::codec::{push_row, push_schema, push_string, read_row, read_schema, Reader};
use crate::durable;
use crate::error::StorageError;
use crate::table::Table;

/// Magic bytes identifying a Bismarck catalog snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"BSNP";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A decoded snapshot: the catalog state as of `last_lsn`.
#[derive(Debug)]
pub(crate) struct Snapshot {
    /// LSN of the last WAL record this snapshot incorporates (0 = none).
    pub(crate) last_lsn: u64,
    /// The tables, in encoding order.
    pub(crate) tables: Vec<Table>,
}

/// Serialize the catalog (`last_lsn` plus every table) into snapshot bytes.
pub(crate) fn encode<'a>(last_lsn: u64, tables: impl Iterator<Item = &'a Table>) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&last_lsn.to_le_bytes());
    let count_at = payload.len();
    payload.extend_from_slice(&0u64.to_le_bytes());
    let mut count: u64 = 0;
    for table in tables {
        push_string(&mut payload, table.name());
        push_schema(&mut payload, table.schema());
        payload.extend_from_slice(&(table.len() as u64).to_le_bytes());
        for tuple in table.scan() {
            push_row(&mut payload, tuple.values());
        }
        count += 1;
    }
    payload[count_at..count_at + 8].copy_from_slice(&count.to_le_bytes());

    let mut bytes = Vec::with_capacity(16 + payload.len());
    bytes.extend_from_slice(&SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&payload);
    bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    bytes
}

/// Decode and validate snapshot bytes. Any damage — bad magic, version,
/// checksum, or rows that no longer satisfy their schema — is a hard
/// [`StorageError::Corrupt`]: a snapshot is written atomically, so unlike a
/// WAL tail there is no benign way for it to be partial.
pub(crate) fn decode(bytes: &[u8]) -> Result<Snapshot, StorageError> {
    let corrupt = |msg: &str| StorageError::Corrupt(format!("snapshot: {msg}"));
    if bytes.len() < 16 {
        return Err(corrupt("file is shorter than its fixed framing"));
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4B"));
    if version != SNAPSHOT_VERSION {
        return Err(StorageError::Corrupt(format!(
            "snapshot: unsupported format version {version}"
        )));
    }
    let payload = &bytes[8..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8B"));
    if fnv1a64(payload) != stored {
        return Err(corrupt("checksum mismatch"));
    }

    let mut r = Reader::new(payload);
    let last_lsn = r.u64()?;
    let table_count = r.len_prefix(1)?;
    let mut tables = Vec::with_capacity(table_count);
    for _ in 0..table_count {
        let name = r.string()?;
        let schema = read_schema(&mut r)?;
        let row_count = r.len_prefix(1)?;
        let mut table = Table::new(name, schema);
        for _ in 0..row_count {
            let row = read_row(&mut r)?;
            table.insert(row).map_err(|e| {
                StorageError::Corrupt(format!("snapshot row violates its schema: {e}"))
            })?;
        }
        tables.push(table);
    }
    r.finish()?;
    Ok(Snapshot { last_lsn, tables })
}

/// Atomically write a snapshot file.
pub(crate) fn write<'a>(
    path: &Path,
    last_lsn: u64,
    tables: impl Iterator<Item = &'a Table>,
) -> Result<(), StorageError> {
    durable::atomic_write(path, &encode(last_lsn, tables))
        .map_err(|e| StorageError::Io(format!("write snapshot {}: {e}", path.display())))
}

/// Read a snapshot file if it exists; `Ok(None)` when there is none yet.
pub(crate) fn read(path: &Path) -> Result<Option<Snapshot>, StorageError> {
    match durable::read_file(path) {
        Ok(bytes) => decode(&bytes).map(Some),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(StorageError::Io(format!(
            "read snapshot {}: {e}",
            path.display()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType, Schema};
    use crate::value::Value;

    fn sample_table(name: &str, rows: usize) -> Table {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::nullable("w", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new(name, schema);
        for i in 0..rows {
            t.insert(vec![Value::Int(i as i64), Value::Double(i as f64 * 0.5)])
                .unwrap();
        }
        t
    }

    #[test]
    fn encode_decode_roundtrip() {
        let a = sample_table("alpha", 3);
        let b = sample_table("beta", 0);
        let bytes = encode(42, [&a, &b].into_iter());
        let snap = decode(&bytes).unwrap();
        assert_eq!(snap.last_lsn, 42);
        assert_eq!(snap.tables.len(), 2);
        assert_eq!(snap.tables[0].name(), "alpha");
        assert_eq!(snap.tables[0].len(), 3);
        assert_eq!(snap.tables[0].get(2).unwrap().get_double(1), Some(1.0));
        assert_eq!(snap.tables[1].name(), "beta");
        assert!(snap.tables[1].is_empty());
    }

    #[test]
    fn empty_catalog_roundtrips() {
        let snap = decode(&encode(0, std::iter::empty())).unwrap();
        assert_eq!(snap.last_lsn, 0);
        assert!(snap.tables.is_empty());
    }

    #[test]
    fn any_bit_flip_is_detected() {
        let t = sample_table("t", 2);
        let good = encode(7, std::iter::once(&t));
        for pos in [0usize, 5, 9, 20, good.len() - 1] {
            let mut bad = good.clone();
            bad[pos] ^= 0x10;
            assert!(
                decode(&bad).is_err(),
                "flip at byte {pos} should be detected"
            );
        }
    }

    #[test]
    fn truncated_snapshot_is_corrupt() {
        let t = sample_table("t", 2);
        let good = encode(7, std::iter::once(&t));
        assert!(decode(&good[..good.len() - 3]).is_err());
        assert!(decode(&good[..10]).is_err());
        assert!(decode(&[]).is_err());
    }

    #[test]
    fn file_roundtrip_and_missing_file() {
        let dir =
            std::env::temp_dir().join(format!("bismarck-snapshot-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.snap");
        assert!(read(&path).unwrap().is_none());
        let t = sample_table("t", 4);
        write(&path, 11, std::iter::once(&t)).unwrap();
        let snap = read(&path).unwrap().unwrap();
        assert_eq!(snap.last_lsn, 11);
        assert_eq!(snap.tables[0].len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}
