//! Scan orders and segmentation.
//!
//! Section 3.2 of the paper studies three ways to order the tuples an IGD
//! epoch visits:
//!
//! * **Clustered** — the order the data is stored on disk (often pathological,
//!   e.g. sorted by class label);
//! * **ShuffleOnce** — one random permutation drawn before the first epoch and
//!   reused for every epoch (the paper's recommended policy);
//! * **ShuffleAlways** — a fresh random permutation before every epoch (best
//!   per-epoch convergence, but the reshuffle dominates runtime).
//!
//! [`segment_ranges`] splits a table into contiguous segments for the
//! shared-nothing ("pure UDA") parallelism of Section 3.3, mirroring how a
//! parallel database assigns tuples to segments.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::tuple::Tuple;

/// A tuple source an epoch can stream, independent of physical layout.
///
/// Both the row-store [`crate::Table`] and the chunked
/// [`crate::ColumnarTable`] implement this, so trainers, executors, and the
/// NULL-aggregate baseline are written once against it. The interface is
/// callback-based (rather than returning iterators of `&Tuple`) because a
/// paged columnar table materializes tuples into a scratch row whose
/// borrow cannot outlive one callback invocation.
///
/// # Semantics shared by all implementations
///
/// * `scan_tuples_permuted` silently skips out-of-range row ids, matching
///   `Table::scan_permuted`'s historical behaviour.
/// * `scan_tuples_range` clamps `end` to the row count and `start` to `end`.
///
/// # Panics
///
/// Paged implementations **panic** if a segment read fails mid-scan (I/O
/// error or checksum mismatch) — the trait has no error channel by design,
/// keeping the per-tuple hot path free of `Result` plumbing. The training
/// runtime already wraps epoch bodies in `catch_unwind`, so a torn page
/// surfaces as a worker fault with the last good model preserved.
pub trait TupleScan: Sync {
    /// Number of rows the scan will visit.
    fn tuple_count(&self) -> usize;

    /// Visit rows in storage order until `f` returns `false` or rows run out.
    fn scan_tuples_while(&self, f: &mut dyn FnMut(&Tuple) -> bool);

    /// Visit every row in storage order.
    fn scan_tuples(&self, f: &mut dyn FnMut(&Tuple)) {
        self.scan_tuples_while(&mut |t| {
            f(t);
            true
        });
    }

    /// Visit rows in the order given by `order`, skipping invalid ids.
    fn scan_tuples_permuted(&self, order: &[usize], f: &mut dyn FnMut(&Tuple));

    /// Visit rows in `start..end` (clamped) in storage order.
    fn scan_tuples_range(&self, start: usize, end: usize, f: &mut dyn FnMut(&Tuple));
}

/// The order in which an epoch visits the rows of a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanOrder {
    /// Visit rows in storage (clustered / insertion) order.
    Clustered,
    /// Shuffle the rows once with the given seed and reuse that permutation
    /// for every epoch.
    ShuffleOnce {
        /// RNG seed so experiments are reproducible.
        seed: u64,
    },
    /// Draw a fresh permutation before every epoch, seeded from `seed` and
    /// the epoch number.
    ShuffleAlways {
        /// Base RNG seed; epoch `e` uses `seed + e`.
        seed: u64,
    },
}

impl ScanOrder {
    /// Produce the row-visit order for `epoch` over a table of `len` rows.
    ///
    /// Returns `None` for [`ScanOrder::Clustered`], signalling that callers
    /// should use the table's native scan (which avoids materializing a
    /// permutation); otherwise returns the explicit permutation.
    pub fn permutation(&self, len: usize, epoch: usize) -> Option<Vec<usize>> {
        match self {
            ScanOrder::Clustered => None,
            ScanOrder::ShuffleOnce { seed } => Some(shuffled_indices(len, *seed)),
            ScanOrder::ShuffleAlways { seed } => {
                Some(shuffled_indices(len, seed.wrapping_add(epoch as u64)))
            }
        }
    }

    /// Whether this order requires a shuffle before the given epoch (used to
    /// account for shuffle cost in the runtime experiments).
    pub fn shuffles_at(&self, epoch: usize) -> bool {
        match self {
            ScanOrder::Clustered => false,
            ScanOrder::ShuffleOnce { .. } => epoch == 0,
            ScanOrder::ShuffleAlways { .. } => true,
        }
    }

    /// Human-readable name used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            ScanOrder::Clustered => "Clustered",
            ScanOrder::ShuffleOnce { .. } => "ShuffleOnce",
            ScanOrder::ShuffleAlways { .. } => "ShuffleAlways",
        }
    }
}

/// A uniformly random permutation of `0..len` produced with a seeded RNG.
pub fn shuffled_indices(len: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..len).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    order
}

/// Split `len` rows into `segments` contiguous `[start, end)` ranges whose
/// sizes differ by at most one; empty ranges are produced when there are more
/// segments than rows. Zero segments yields an empty vector.
pub fn segment_ranges(len: usize, segments: usize) -> Vec<(usize, usize)> {
    if segments == 0 {
        return Vec::new();
    }
    let base = len / segments;
    let extra = len % segments;
    let mut ranges = Vec::with_capacity(segments);
    let mut start = 0;
    for s in 0..segments {
        let size = base + usize::from(s < extra);
        ranges.push((start, start + size));
        start += size;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn clustered_has_no_permutation_and_never_shuffles() {
        let order = ScanOrder::Clustered;
        assert!(order.permutation(10, 0).is_none());
        assert!(!order.shuffles_at(0));
        assert_eq!(order.label(), "Clustered");
    }

    #[test]
    fn shuffle_once_is_stable_across_epochs() {
        let order = ScanOrder::ShuffleOnce { seed: 7 };
        let p0 = order.permutation(100, 0).unwrap();
        let p5 = order.permutation(100, 5).unwrap();
        assert_eq!(p0, p5);
        assert!(order.shuffles_at(0));
        assert!(!order.shuffles_at(1));
    }

    #[test]
    fn shuffle_always_differs_across_epochs() {
        let order = ScanOrder::ShuffleAlways { seed: 7 };
        let p0 = order.permutation(100, 0).unwrap();
        let p1 = order.permutation(100, 1).unwrap();
        assert_ne!(p0, p1);
        assert!(order.shuffles_at(0) && order.shuffles_at(9));
    }

    #[test]
    fn permutations_are_valid() {
        for seed in 0..5u64 {
            let p = shuffled_indices(50, seed);
            let set: BTreeSet<usize> = p.iter().copied().collect();
            assert_eq!(set.len(), 50);
            assert_eq!(*set.iter().next().unwrap(), 0);
            assert_eq!(*set.iter().last().unwrap(), 49);
        }
    }

    #[test]
    fn same_seed_same_permutation() {
        assert_eq!(shuffled_indices(32, 3), shuffled_indices(32, 3));
        assert_ne!(shuffled_indices(32, 3), shuffled_indices(32, 4));
    }

    #[test]
    fn segments_cover_and_balance() {
        let ranges = segment_ranges(10, 3);
        assert_eq!(ranges, vec![(0, 4), (4, 7), (7, 10)]);
        let total: usize = ranges.iter().map(|(s, e)| e - s).sum();
        assert_eq!(total, 10);
        let sizes: Vec<usize> = ranges.iter().map(|(s, e)| e - s).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn segments_edge_cases() {
        assert!(segment_ranges(10, 0).is_empty());
        let ranges = segment_ranges(2, 4);
        assert_eq!(ranges.len(), 4);
        let nonempty: usize = ranges.iter().filter(|(s, e)| e > s).count();
        assert_eq!(nonempty, 2);
        assert_eq!(segment_ranges(0, 3), vec![(0, 0), (0, 0), (0, 0)]);
    }
}
