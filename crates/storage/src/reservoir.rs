//! Reservoir sampling (Vitter's Algorithm R), as described in Section 3.4.
//!
//! Given an in-memory buffer of size `m`, one pass over `N ≥ m` items yields
//! a uniform without-replacement sample of size `m`. The multiplexed
//! reservoir sampling (MRS) scheme additionally needs to know, for every
//! offered item, whether it was *kept* (displacing a previous occupant) or
//! *dropped*, because the I/O worker performs a gradient step on exactly the
//! tuples that do not enter the buffer.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Outcome of offering one item to the reservoir.
#[derive(Debug, Clone, PartialEq)]
pub enum ReservoirOutcome<T> {
    /// The item was stored in the (not yet full) reservoir.
    StoredInEmptySlot,
    /// The item replaced a previous occupant, which is returned.
    Replaced(T),
    /// The item was not admitted to the reservoir and is returned.
    Rejected(T),
}

/// A fixed-capacity uniform without-replacement sampler.
#[derive(Debug, Clone)]
pub struct ReservoirSampler<T> {
    capacity: usize,
    seen: usize,
    items: Vec<T>,
    rng: StdRng,
}

impl<T> ReservoirSampler<T> {
    /// Create a sampler holding at most `capacity` items, using a seeded RNG
    /// so experiments are reproducible.
    pub fn new(capacity: usize, seed: u64) -> Self {
        ReservoirSampler {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Buffer capacity `m`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items offered so far (`N` after a full pass).
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Number of items currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the reservoir currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The current sample.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consume the sampler and return the sample.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }

    /// Offer one item. Follows the paper's description: read the first `m`
    /// items into the reservoir; for the `k`-th additional item pick a random
    /// integer `s` in `[0, m + k)` and keep the item at slot `s` if `s < m`.
    pub fn offer(&mut self, item: T) -> ReservoirOutcome<T> {
        self.seen += 1;
        if self.capacity == 0 {
            return ReservoirOutcome::Rejected(item);
        }
        if self.items.len() < self.capacity {
            self.items.push(item);
            return ReservoirOutcome::StoredInEmptySlot;
        }
        let s = self.rng.gen_range(0..self.seen);
        if s < self.capacity {
            let old = std::mem::replace(&mut self.items[s], item);
            ReservoirOutcome::Replaced(old)
        } else {
            ReservoirOutcome::Rejected(item)
        }
    }

    /// Reset the pass statistics but keep the buffer contents; used when the
    /// same reservoir is reused across epochs.
    pub fn reset_counts(&mut self) {
        self.seen = self.items.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_samples() {
        let mut r = ReservoirSampler::new(3, 42);
        for i in 0..3 {
            assert_eq!(r.offer(i), ReservoirOutcome::StoredInEmptySlot);
        }
        assert_eq!(r.len(), 3);
        let outcome = r.offer(99);
        match outcome {
            ReservoirOutcome::Replaced(_) | ReservoirOutcome::Rejected(99) => {}
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(r.seen(), 4);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut r = ReservoirSampler::new(0, 1);
        assert_eq!(r.offer(5), ReservoirOutcome::Rejected(5));
        assert!(r.is_empty());
    }

    #[test]
    fn sample_size_never_exceeds_capacity() {
        let mut r = ReservoirSampler::new(10, 7);
        for i in 0..1000 {
            r.offer(i);
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.seen(), 1000);
        // All retained items are from the offered universe.
        assert!(r.items().iter().all(|&i| i < 1000));
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        // Offer 0..100 into a reservoir of 10 many times and check that both
        // halves of the stream are retained at comparable rates: a biased
        // sampler (e.g. one that always keeps the head) fails this test.
        let mut first_half = 0usize;
        let mut second_half = 0usize;
        for seed in 0..200u64 {
            let mut r = ReservoirSampler::new(10, seed);
            for i in 0..100 {
                r.offer(i);
            }
            for &item in r.items() {
                if item < 50 {
                    first_half += 1;
                } else {
                    second_half += 1;
                }
            }
        }
        let total = (first_half + second_half) as f64;
        let frac = first_half as f64 / total;
        assert!((0.42..=0.58).contains(&frac), "first-half fraction {frac}");
    }

    #[test]
    fn outcomes_partition_the_stream() {
        let mut r = ReservoirSampler::new(5, 3);
        let mut kept_elsewhere = Vec::new();
        for i in 0..50 {
            match r.offer(i) {
                ReservoirOutcome::StoredInEmptySlot => {}
                ReservoirOutcome::Replaced(old) => kept_elsewhere.push(old),
                ReservoirOutcome::Rejected(item) => kept_elsewhere.push(item),
            }
        }
        // Every offered item is either in the reservoir or was handed back.
        let mut all: Vec<i32> = r.items().to_vec();
        all.extend(kept_elsewhere);
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn reset_counts_keeps_items() {
        let mut r = ReservoirSampler::new(2, 9);
        r.offer(1);
        r.offer(2);
        r.offer(3);
        r.reset_counts();
        assert_eq!(r.seen(), 2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn into_items_returns_buffer() {
        let mut r = ReservoirSampler::new(2, 11);
        r.offer("a");
        r.offer("b");
        let items = r.into_items();
        assert_eq!(items.len(), 2);
    }
}
