//! The atomic write protocol and its fault-injection hooks.
//!
//! Everything the durability subsystem puts on disk — catalog snapshots,
//! training checkpoints, WAL resets — goes through one protocol:
//!
//! 1. write the full payload to `<path>.tmp` in the same directory,
//! 2. `fsync` the temp file so the *data* is durable,
//! 3. `rename` the temp file over `path` (atomic on POSIX filesystems),
//! 4. `fsync` the parent directory so the *rename* is durable.
//!
//! A crash at any point leaves either the previous complete file or the new
//! complete one under `path` — never a torn or half-renamed file. Step 4 is
//! the one naive implementations skip: without it, a power loss can undo the
//! rename even though the data bytes made it to the platter.
//!
//! Every byte and every syscall in this module is routed through the
//! `fault` hooks (compiled only under the `fault-injection` feature), so a
//! test can fail, short-write, or "crash" the process at any byte boundary
//! and then prove that recovery restores a consistent state.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::Path;

/// Fault-injection hooks for the durability layer.
///
/// Compiled only with the `fault-injection` feature. The injector is a
/// process-global step counter: every *byte* written through the durable
/// layer consumes one fault point, and every metadata operation (create,
/// sync, rename, truncate, directory sync) consumes one more. A test arms
/// the injector at point `k` and runs a scenario; when the counter reaches
/// `k`, the in-flight operation fails — short-writing its buffer if it was a
/// write — and, in [`fault::Mode::Crash`], every later operation fails too,
/// which is exactly what a process that died at that instant would have done
/// to the filesystem. Re-opening the database afterwards simulates the
/// post-crash restart.
///
/// The injector is global state: tests that arm it must serialize themselves
/// (e.g. behind a `Mutex`) and disarm it when done.
#[cfg(feature = "fault-injection")]
pub mod fault {
    use std::io;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

    /// What happens once the armed fault point is reached.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Mode {
        /// The operation at the fault point fails and **every subsequent
        /// operation fails too** — the filesystem is frozen in the state a
        /// process crash would have left it in.
        Crash,
        /// The operation at the fault point fails once (short-writing if it
        /// was a write); later operations succeed. Models a transient I/O
        /// error the caller is expected to surface and survive.
        FailOnce,
    }

    static ARMED: AtomicBool = AtomicBool::new(false);
    static MODE_CRASH: AtomicU8 = AtomicU8::new(0);
    static FAULT_AT: AtomicU64 = AtomicU64::new(u64::MAX);
    static CONSUMED: AtomicU64 = AtomicU64::new(0);
    static FIRED: AtomicBool = AtomicBool::new(false);

    /// Arm the injector: the fault fires once `at_point` fault points have
    /// been consumed. Arming with `at_point == u64::MAX` never fires and is
    /// the idiom for *counting* how many fault points a scenario has.
    pub fn arm(mode: Mode, at_point: u64) {
        CONSUMED.store(0, Ordering::SeqCst);
        FIRED.store(false, Ordering::SeqCst);
        FAULT_AT.store(at_point, Ordering::SeqCst);
        MODE_CRASH.store(matches!(mode, Mode::Crash) as u8, Ordering::SeqCst);
        ARMED.store(true, Ordering::SeqCst);
    }

    /// Disarm the injector and return the number of fault points consumed
    /// since [`arm`].
    pub fn disarm() -> u64 {
        ARMED.store(false, Ordering::SeqCst);
        CONSUMED.load(Ordering::SeqCst)
    }

    /// Whether the armed fault has fired at least once.
    pub fn fired() -> bool {
        FIRED.load(Ordering::SeqCst)
    }

    fn injected() -> io::Error {
        io::Error::other("injected I/O fault")
    }

    fn should_fail_now() -> bool {
        if !ARMED.load(Ordering::SeqCst) {
            return false;
        }
        if FIRED.load(Ordering::SeqCst) {
            // After the first failure: Crash keeps failing, FailOnce heals.
            return MODE_CRASH.load(Ordering::SeqCst) == 1;
        }
        false
    }

    /// Consume one fault point for a metadata operation (create, sync,
    /// rename, truncate, directory sync).
    pub(crate) fn metadata_op() -> io::Result<()> {
        if should_fail_now() {
            return Err(injected());
        }
        if !ARMED.load(Ordering::SeqCst) || FIRED.load(Ordering::SeqCst) {
            // Unarmed, or FailOnce already fired and healed.
            return Ok(());
        }
        let point = CONSUMED.fetch_add(1, Ordering::SeqCst);
        if point >= FAULT_AT.load(Ordering::SeqCst) {
            FIRED.store(true, Ordering::SeqCst);
            return Err(injected());
        }
        Ok(())
    }

    /// Ask how many bytes of an `len`-byte write may proceed. Returns
    /// `Ok(len)` for a full write, or `Err((prefix, error))` when the fault
    /// point lands inside the buffer: the caller must write exactly `prefix`
    /// bytes (the torn write) and then report the error.
    #[allow(clippy::result_large_err)]
    pub(crate) fn admit_write(len: usize) -> Result<usize, (usize, io::Error)> {
        if should_fail_now() {
            return Err((0, injected()));
        }
        if !ARMED.load(Ordering::SeqCst) || FIRED.load(Ordering::SeqCst) {
            // Unarmed, or FailOnce already fired and healed.
            return Ok(len);
        }
        let start = CONSUMED.fetch_add(len as u64, Ordering::SeqCst);
        let at = FAULT_AT.load(Ordering::SeqCst);
        if start.saturating_add(len as u64) <= at {
            return Ok(len);
        }
        FIRED.store(true, Ordering::SeqCst);
        Err(((at.saturating_sub(start)) as usize, injected()))
    }
}

/// Write `buf` to `file`, honouring the fault injector's byte-granular
/// short-write decisions.
pub(crate) fn write_all(file: &mut File, buf: &[u8]) -> io::Result<()> {
    #[cfg(feature = "fault-injection")]
    {
        match fault::admit_write(buf.len()) {
            Ok(_) => {}
            Err((prefix, err)) => {
                // The torn write: the prefix reaches the file, the rest — and
                // every fsync that would have made it durable — does not.
                let _ = file.write_all(&buf[..prefix]);
                let _ = file.flush();
                return Err(err);
            }
        }
    }
    file.write_all(buf)
}

/// `fsync` a file's data and metadata.
pub(crate) fn sync_file(file: &File) -> io::Result<()> {
    #[cfg(feature = "fault-injection")]
    fault::metadata_op()?;
    file.sync_all()
}

/// Create (truncating) a file for writing.
pub(crate) fn create_file(path: &Path) -> io::Result<File> {
    #[cfg(feature = "fault-injection")]
    fault::metadata_op()?;
    File::create(path)
}

/// Open a file for appending without truncating it.
pub(crate) fn open_append(path: &Path) -> io::Result<File> {
    #[cfg(feature = "fault-injection")]
    fault::metadata_op()?;
    OpenOptions::new().read(true).write(true).open(path)
}

/// Atomically rename `from` over `to`.
pub(crate) fn rename(from: &Path, to: &Path) -> io::Result<()> {
    #[cfg(feature = "fault-injection")]
    fault::metadata_op()?;
    fs::rename(from, to)
}

/// Truncate an open file to `len` bytes.
pub(crate) fn truncate_file(file: &File, len: u64) -> io::Result<()> {
    #[cfg(feature = "fault-injection")]
    fault::metadata_op()?;
    file.set_len(len)
}

/// `fsync` a directory so a rename or create inside it is durable. On
/// platforms where directories cannot be opened for syncing this degrades to
/// a no-op, matching what portable databases do.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(feature = "fault-injection")]
    fault::metadata_op()?;
    match File::open(dir) {
        Ok(d) => d.sync_all(),
        // Windows cannot open directories this way; accept the weaker
        // guarantee there rather than failing every write.
        Err(e) if e.kind() == io::ErrorKind::PermissionDenied => Ok(()),
        Err(e) => Err(e),
    }
}

/// Atomically and durably replace the file at `path` with `bytes`.
///
/// This is the four-step protocol described at module level: temp file →
/// fsync file → rename → fsync parent directory. After it returns, the new
/// contents survive a crash; if it errors (or the process dies inside it),
/// `path` still holds its previous complete contents — the temp file may be
/// left behind and is ignored/overwritten by the next write.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = create_file(&tmp)?;
        write_all(&mut file, bytes)?;
        sync_file(&file)?;
    }
    rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        // An empty parent means a bare relative filename: the CWD.
        let parent = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        sync_dir(parent)?;
    }
    Ok(())
}

/// Read a whole file, routed through the durable layer for symmetry (reads
/// are not fault points: recovery code must see whatever is on disk).
pub fn read_file(path: &Path) -> io::Result<Vec<u8>> {
    let mut file = File::open(path)?;
    let mut bytes = Vec::new();
    file.seek(SeekFrom::Start(0))?;
    file.read_to_end(&mut bytes)?;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bismarck-durable-test-{}-{name}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let dir = temp_dir("replace");
        let path = dir.join("file.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(read_file(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer payload").unwrap();
        assert_eq!(read_file(&path).unwrap(), b"second, longer payload");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_into_missing_directory_errors() {
        let path = std::env::temp_dir()
            .join("bismarck-definitely-missing-dir")
            .join("file.bin");
        assert!(atomic_write(&path, b"x").is_err());
    }

    #[test]
    fn temp_file_is_ignored_by_reads_of_the_target() {
        let dir = temp_dir("tmpfile");
        let path = dir.join("file.bin");
        atomic_write(&path, b"durable").unwrap();
        // A stale temp file (as a crash between steps 1 and 3 would leave)
        // does not affect the committed contents.
        fs::write(path.with_extension("tmp"), b"torn garbage").unwrap();
        assert_eq!(read_file(&path).unwrap(), b"durable");
        atomic_write(&path, b"next").unwrap();
        assert_eq!(read_file(&path).unwrap(), b"next");
        fs::remove_dir_all(&dir).ok();
    }
}
