//! Out-of-core paging for columnar segments.
//!
//! Each sealed segment of a paged [`crate::columnar::ColumnarTable`] lives
//! in its own file under the table directory:
//!
//! ```text
//! <dir>/columnar.meta   manifest: name, schema, chunk capacity, row count
//! <dir>/seg-000000.col  segment 0
//! <dir>/seg-000001.col  segment 1
//! ...
//! ```
//!
//! Both file kinds share one frame (see `docs/disk-format.md`):
//!
//! ```text
//! [0..4)   magic  (`BSEG` / `BCOL`)
//! [4..5)   format version (1)
//! [5..13)  payload length (u64 LE)
//! [13..n)  payload
//! [n..n+8) FNV-1a 64-bit checksum of the payload
//! ```
//!
//! and every write goes through [`crate::durable::atomic_write`], so a crash
//! leaves the previous complete file, never a torn one.
//!
//! Reads go through a small **pinned-segment LRU cache**: fetching returns
//! an `Arc<Segment>`, so a segment a scan is mid-way through stays alive
//! (pinned by the outstanding `Arc`) even if the cache evicts it — eviction
//! only drops the cache's own reference. Sequential fetch patterns trigger
//! read-ahead of the next segment, the access shape every clustered epoch
//! scan produces.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::checkpoint::fnv1a64;
use crate::codec::{push_schema, push_string, read_schema, Reader};
use crate::columnar::Segment;
use crate::durable::{atomic_write, read_file};
use crate::error::StorageError;
use crate::schema::Schema;

const SEGMENT_MAGIC: &[u8; 4] = b"BSEG";
const MANIFEST_MAGIC: &[u8; 4] = b"BCOL";
const FORMAT_VERSION: u8 = 1;

/// Manifest file name inside a paged table directory.
pub const MANIFEST_FILE: &str = "columnar.meta";

fn corrupt(msg: impl Into<String>) -> StorageError {
    StorageError::Corrupt(msg.into())
}

fn io_err(path: &Path, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("{}: {e}", path.display()))
}

/// Frame `payload` with magic, version, length and checksum.
fn frame(magic: &[u8; 4], payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(payload.len() + 21);
    bytes.extend_from_slice(magic);
    bytes.push(FORMAT_VERSION);
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    bytes
}

/// Validate a frame and return the payload slice.
fn unframe<'a>(magic: &[u8; 4], bytes: &'a [u8], what: &str) -> Result<&'a [u8], StorageError> {
    if bytes.len() < 21 || &bytes[0..4] != magic {
        return Err(corrupt(format!("{what}: bad or missing header")));
    }
    if bytes[4] != FORMAT_VERSION {
        return Err(corrupt(format!(
            "{what}: unsupported format version {}",
            bytes[4]
        )));
    }
    let len = u64::from_le_bytes(bytes[5..13].try_into().expect("8B")) as usize;
    if bytes.len() != 13 + len + 8 {
        return Err(corrupt(format!(
            "{what}: payload length {len} does not match file size {}",
            bytes.len()
        )));
    }
    let payload = &bytes[13..13 + len];
    let stored = u64::from_le_bytes(bytes[13 + len..].try_into().expect("8B"));
    if fnv1a64(payload) != stored {
        return Err(corrupt(format!("{what}: checksum mismatch")));
    }
    Ok(payload)
}

/// The manifest of a paged columnar table.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Manifest {
    /// Table name.
    pub name: String,
    /// Table schema.
    pub schema: Schema,
    /// Rows per segment.
    pub chunk_capacity: u64,
    /// Total rows (the last segment may be partial).
    pub row_count: u64,
}

impl Manifest {
    /// Atomically write the manifest into `dir`.
    pub fn write(&self, dir: &Path) -> Result<(), StorageError> {
        let mut payload = Vec::new();
        push_string(&mut payload, &self.name);
        push_schema(&mut payload, &self.schema);
        payload.extend_from_slice(&self.chunk_capacity.to_le_bytes());
        payload.extend_from_slice(&self.row_count.to_le_bytes());
        let path = dir.join(MANIFEST_FILE);
        atomic_write(&path, &frame(MANIFEST_MAGIC, &payload)).map_err(|e| io_err(&path, e))
    }

    /// Read and validate the manifest from `dir`.
    pub fn read(dir: &Path) -> Result<Self, StorageError> {
        let path = dir.join(MANIFEST_FILE);
        let bytes = read_file(&path).map_err(|e| io_err(&path, e))?;
        let payload = unframe(MANIFEST_MAGIC, &bytes, "columnar manifest")?;
        let mut r = Reader::new(payload);
        let name = r.string()?;
        let schema = read_schema(&mut r)?;
        let chunk_capacity = r.u64()?;
        let row_count = r.u64()?;
        r.finish()?;
        if chunk_capacity == 0 {
            return Err(corrupt("columnar manifest: zero chunk capacity"));
        }
        Ok(Manifest {
            name,
            schema,
            chunk_capacity,
            row_count,
        })
    }
}

/// Cache and I/O counters of a pager. All counters are cumulative since
/// the pager was created.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Fetches served from the cache.
    pub hits: u64,
    /// Fetches that had to read a segment file.
    pub misses: u64,
    /// Segments dropped from the cache to respect its capacity.
    pub evictions: u64,
    /// Segments loaded by sequential read-ahead before being requested.
    pub prefetches: u64,
    /// Total bytes read from segment files (including read-ahead).
    pub bytes_read: u64,
}

struct CacheEntry {
    segment: Arc<Segment>,
    last_used: u64,
}

struct PagerInner {
    cache: HashMap<usize, CacheEntry>,
    tick: u64,
    last_fetch: Option<usize>,
}

/// Segment file store with a pinned-segment LRU cache.
#[derive(Debug)]
pub(crate) struct Pager {
    dir: PathBuf,
    capacity: usize,
    inner: Mutex<PagerInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    prefetches: AtomicU64,
    bytes_read: AtomicU64,
}

impl std::fmt::Debug for PagerInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagerInner")
            .field("cached", &self.cache.len())
            .finish()
    }
}

impl Pager {
    /// Create a pager over `dir` (created if missing) holding at most
    /// `capacity` segments in memory (clamped to at least 1).
    pub fn create(dir: &Path, capacity: usize) -> Result<Self, StorageError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        Ok(Pager {
            dir: dir.to_path_buf(),
            capacity: capacity.max(1),
            inner: Mutex::new(PagerInner {
                cache: HashMap::new(),
                tick: 0,
                last_fetch: None,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            prefetches: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
        })
    }

    /// The table directory this pager serves.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn seg_path(&self, idx: usize) -> PathBuf {
        self.dir.join(format!("seg-{idx:06}.col"))
    }

    /// Durably write segment `idx` and (re)cache it.
    pub fn write_segment(&self, idx: usize, segment: &Segment) -> Result<(), StorageError> {
        let mut payload = Vec::new();
        segment.encode(&mut payload);
        let path = self.seg_path(idx);
        atomic_write(&path, &frame(SEGMENT_MAGIC, &payload)).map_err(|e| io_err(&path, e))?;
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.cache.insert(
            idx,
            CacheEntry {
                segment: Arc::new(segment.clone()),
                last_used: tick,
            },
        );
        self.enforce_capacity(&mut inner);
        Ok(())
    }

    fn load(&self, idx: usize) -> Result<Arc<Segment>, StorageError> {
        let path = self.seg_path(idx);
        let bytes = read_file(&path).map_err(|e| io_err(&path, e))?;
        self.bytes_read
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        let payload = unframe(SEGMENT_MAGIC, &bytes, "columnar segment")?;
        let mut r = Reader::new(payload);
        let segment = Segment::decode(&mut r)?;
        r.finish()?;
        Ok(Arc::new(segment))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PagerInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn enforce_capacity(&self, inner: &mut PagerInner) {
        while inner.cache.len() > self.capacity {
            let Some((&victim, _)) = inner.cache.iter().min_by_key(|(_, entry)| entry.last_used)
            else {
                return;
            };
            // Eviction drops only the cache's Arc: a scan holding the
            // segment keeps it alive (that outstanding clone is the "pin").
            inner.cache.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fetch segment `idx`, from cache or disk. `sealed` bounds the
    /// sequential read-ahead (segments `>= sealed` do not exist yet).
    pub fn fetch(&self, idx: usize, sealed: usize) -> Result<Arc<Segment>, StorageError> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let sequential = inner.last_fetch.is_none_or(|prev| idx == prev + 1);
        inner.last_fetch = Some(idx);
        if let Some(entry) = inner.cache.get_mut(&idx) {
            entry.last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(entry.segment.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let segment = self.load(idx)?;
        inner.cache.insert(
            idx,
            CacheEntry {
                segment: segment.clone(),
                last_used: tick,
            },
        );
        self.enforce_capacity(&mut inner);
        // Sequential read-ahead: a clustered epoch fetches segments in
        // order, so the next one is overwhelmingly likely to be needed;
        // pull it in while the cache still has this access pattern hot.
        let next = idx + 1;
        if sequential && next < sealed && self.capacity > 1 && !inner.cache.contains_key(&next) {
            if let Ok(ahead) = self.load(next) {
                self.prefetches.fetch_add(1, Ordering::Relaxed);
                inner.cache.insert(
                    next,
                    CacheEntry {
                        segment: ahead,
                        last_used: tick,
                    },
                );
                self.enforce_capacity(&mut inner);
            }
        }
        Ok(segment)
    }

    /// Snapshot the cumulative counters.
    pub fn stats(&self) -> PagerStats {
        PagerStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            prefetches: self.prefetches.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};
    use crate::value::Value;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bismarck-pager-test-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn schema() -> Schema {
        Schema::new(vec![Column::new("x", DataType::Double)]).unwrap()
    }

    fn segment(base: f64, rows: usize) -> Segment {
        let mut seg = Segment::empty(&schema());
        for i in 0..rows {
            seg.push_row(&[Value::Double(base + i as f64)]).unwrap();
        }
        seg
    }

    #[test]
    fn manifest_roundtrips() {
        let dir = temp_dir("manifest");
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = Manifest {
            name: "events".into(),
            schema: schema(),
            chunk_capacity: 512,
            row_count: 12_345,
        };
        manifest.write(&dir).unwrap();
        assert_eq!(Manifest::read(&dir).unwrap(), manifest);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_is_detected() {
        let dir = temp_dir("manifest-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = Manifest {
            name: "t".into(),
            schema: schema(),
            chunk_capacity: 4,
            row_count: 8,
        };
        manifest.write(&dir).unwrap();
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Manifest::read(&dir),
            Err(StorageError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fetch_caches_evicts_and_prefetches() {
        let dir = temp_dir("fetch");
        let pager = Pager::create(&dir, 2).unwrap();
        for idx in 0..4 {
            pager
                .write_segment(idx, &segment(idx as f64 * 100.0, 3))
                .unwrap();
        }
        // Writing 4 segments through a 2-slot cache already evicted some.
        assert!(pager.stats().evictions >= 2);

        // A sequential pass: every fetch of 0..4 either misses (and
        // prefetches the successor) or hits the prefetched entry.
        let pager = Pager::create(&dir, 2).unwrap();
        for idx in 0..4 {
            let seg = pager.fetch(idx, 4).unwrap();
            assert_eq!(seg.len(), 3);
        }
        let stats = pager.stats();
        assert!(stats.misses > 0);
        assert!(stats.prefetches > 0, "sequential scan should read ahead");
        assert!(stats.hits > 0, "read-ahead segments should be cache hits");
        assert!(stats.bytes_read > 0);

        // Pinning: hold a segment across evictions; it stays readable.
        let pinned = pager.fetch(0, 4).unwrap();
        for idx in 1..4 {
            pager.fetch(idx, 4).unwrap();
        }
        assert_eq!(pinned.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_segment_is_detected() {
        let dir = temp_dir("seg-corrupt");
        let pager = Pager::create(&dir, 1).unwrap();
        pager.write_segment(0, &segment(0.0, 5)).unwrap();
        let path = dir.join("seg-000000.col");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let pager = Pager::create(&dir, 1).unwrap();
        assert!(matches!(pager.fetch(0, 1), Err(StorageError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
