//! Tuples: rows of values plus typed accessors used by the analytics layer.

use bismarck_linalg::{FeatureVectorRef, SparseVector};

use crate::value::Value;

/// A row of column values.
///
/// The analytics layer reads tuples through typed accessors keyed by column
/// position; the training front-ends translate column *names* to positions
/// once per query, so the per-tuple path never does string lookups.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Create a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at position `i`.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// Double at position `i` (integers are coerced).
    pub fn get_double(&self, i: usize) -> Option<f64> {
        self.values.get(i).and_then(Value::as_double)
    }

    /// Integer at position `i` (doubles are truncated).
    pub fn get_int(&self, i: usize) -> Option<i64> {
        self.values.get(i).and_then(Value::as_int)
    }

    /// Text at position `i`.
    pub fn get_text(&self, i: usize) -> Option<&str> {
        self.values.get(i).and_then(Value::as_text)
    }

    /// Zero-copy feature-vector view (dense or sparse) at position `i`.
    ///
    /// The view borrows the stored payload directly, so reading a feature
    /// column on the per-tuple training path performs no allocation.
    #[inline]
    pub fn feature_view(&self, i: usize) -> Option<FeatureVectorRef<'_>> {
        self.values.get(i).and_then(Value::feature_view)
    }

    /// Label sequence at position `i`.
    pub fn get_sequence(&self, i: usize) -> Option<&[(SparseVector, u32)]> {
        self.values.get(i).and_then(Value::as_sequence)
    }

    /// Approximate in-memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.values.iter().map(Value::approx_bytes).sum()
    }

    /// Consume into the underlying values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Mutable access for scratch-tuple reuse on the columnar scan path.
    pub(crate) fn values_mut(&mut self) -> &mut Vec<Value> {
        &mut self.values
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bismarck_linalg::SparseVector;

    fn example() -> Tuple {
        Tuple::new(vec![
            Value::Int(7),
            Value::from(vec![1.0, 2.0]),
            Value::Double(-1.0),
            Value::from("paper"),
            Value::from(SparseVector::from_pairs(vec![(3, 1.0)])),
        ])
    }

    #[test]
    fn typed_accessors() {
        let t = example();
        assert_eq!(t.arity(), 5);
        assert_eq!(t.get_int(0), Some(7));
        assert_eq!(t.get_double(2), Some(-1.0));
        assert_eq!(t.get_text(3), Some("paper"));
        assert_eq!(t.feature_view(1).unwrap().dimension(), 2);
        assert_eq!(t.feature_view(4).unwrap().nnz(), 1);
        assert!(t.get_sequence(0).is_none());
    }

    #[test]
    fn out_of_range_returns_none() {
        let t = example();
        assert!(t.get(9).is_none());
        assert!(t.get_double(9).is_none());
        assert!(t.get_text(9).is_none());
    }

    #[test]
    fn approx_bytes_sums_values() {
        let t = example();
        let total: usize = t.values().iter().map(Value::approx_bytes).sum();
        assert_eq!(t.approx_bytes(), total);
    }

    #[test]
    fn into_values_roundtrip() {
        let t = example();
        let vals = t.clone().into_values();
        assert_eq!(Tuple::from(vals), t);
    }
}
