//! Fixed-size column chunks: the unit of columnar storage.
//!
//! A chunk holds one column's values for up to a segment's worth of rows in a
//! layout chosen per [`DataType`]:
//!
//! * `INT` / `DOUBLE` — a contiguous primitive array plus a validity bitmap
//!   (NULL slots store a zero placeholder so the array stays fixed-stride);
//! * `TEXT` — raw UTF-8 bytes with `rows + 1` byte offsets;
//! * `DENSE_VEC` — one contiguous `f64` buffer holding every row's entries
//!   back to back, with `rows + 1` element offsets, so a scan streams feature
//!   data linearly instead of chasing one heap allocation per tuple;
//! * `SPARSE_VEC` — parallel index/value arrays with `rows + 1` offsets;
//! * `SEQUENCE` — an owned row fallback (structured-prediction payloads are
//!   too irregular to benefit from decomposition).
//!
//! Chunks serialize through the same little-endian primitives as the WAL
//! codec (`crate::codec`); the segment container around them adds the
//! header and checksum (see `docs/disk-format.md`).

use bismarck_linalg::{DenseVector, SparseVector};

use crate::codec::{push_value, read_value, Reader};
use crate::error::StorageError;
use crate::schema::DataType;
use crate::value::Value;

fn corrupt(msg: impl Into<String>) -> StorageError {
    StorageError::Corrupt(msg.into())
}

/// One bit per row: set when the slot holds a real value, clear for NULL.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValidityBitmap {
    words: Vec<u64>,
    len: usize,
}

impl ValidityBitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        ValidityBitmap::default()
    }

    /// Number of rows tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rows are tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one row's validity bit.
    pub fn push(&mut self, valid: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if valid {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Whether row `i` holds a real value; out-of-range rows read as NULL.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        i < self.len && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set (non-NULL) bits.
    pub fn count_valid(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        for word in &self.words {
            out.extend_from_slice(&word.to_le_bytes());
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        let len = r.u64()? as usize;
        let words_needed = len.div_ceil(64);
        if words_needed > r.remaining() / 8 {
            return Err(corrupt("validity bitmap longer than its record"));
        }
        let mut words = Vec::with_capacity(words_needed);
        for _ in 0..words_needed {
            words.push(r.u64()?);
        }
        Ok(ValidityBitmap { words, len })
    }
}

const CHUNK_TAG_INT: u8 = 0;
const CHUNK_TAG_DOUBLE: u8 = 1;
const CHUNK_TAG_TEXT: u8 = 2;
const CHUNK_TAG_DENSE: u8 = 3;
const CHUNK_TAG_SPARSE: u8 = 4;
const CHUNK_TAG_SEQUENCE: u8 = 5;

/// One column's values for one segment, in a type-specialized layout.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnChunk {
    /// `INT` column: contiguous values, NULL slots store 0.
    Int {
        /// Row values (placeholder 0 where NULL).
        data: Vec<i64>,
        /// Per-row validity.
        validity: ValidityBitmap,
    },
    /// `DOUBLE` column: contiguous values, NULL slots store 0.0.
    Double {
        /// Row values (placeholder 0.0 where NULL).
        data: Vec<f64>,
        /// Per-row validity.
        validity: ValidityBitmap,
        /// Rows whose original value was an integer (the schema accepts
        /// `INT` values in `DOUBLE` columns): `(slot, value)` pairs sorted by
        /// slot, so materialization reproduces `Value::Int` exactly even for
        /// magnitudes a `f64` cannot represent.
        int_rows: Vec<(u32, i64)>,
    },
    /// `TEXT` column: raw UTF-8 bytes + byte offsets.
    Text {
        /// Concatenated string payloads.
        bytes: Vec<u8>,
        /// `rows + 1` byte offsets into `bytes`.
        offsets: Vec<u32>,
        /// Per-row validity.
        validity: ValidityBitmap,
    },
    /// `DENSE_VEC` column: all rows' entries in one contiguous buffer.
    Dense {
        /// Concatenated `f64` entries of every row.
        data: Vec<f64>,
        /// `rows + 1` element offsets into `data`.
        offsets: Vec<u32>,
        /// Per-row validity.
        validity: ValidityBitmap,
    },
    /// `SPARSE_VEC` column: parallel index/value arrays + offsets.
    Sparse {
        /// Concatenated sorted indices of every row.
        indices: Vec<u32>,
        /// Concatenated values, parallel to `indices`.
        values: Vec<f64>,
        /// `rows + 1` entry offsets into `indices` / `values`.
        offsets: Vec<u32>,
        /// Per-row validity.
        validity: ValidityBitmap,
    },
    /// `SEQUENCE` column: owned values (no columnar decomposition).
    Sequence {
        /// Row values (`Value::Sequence` or `Value::Null`).
        rows: Vec<Value>,
    },
}

impl ColumnChunk {
    /// An empty chunk laid out for `dtype`.
    pub fn empty(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => ColumnChunk::Int {
                data: Vec::new(),
                validity: ValidityBitmap::new(),
            },
            DataType::Double => ColumnChunk::Double {
                data: Vec::new(),
                validity: ValidityBitmap::new(),
                int_rows: Vec::new(),
            },
            DataType::Text => ColumnChunk::Text {
                bytes: Vec::new(),
                offsets: vec![0],
                validity: ValidityBitmap::new(),
            },
            DataType::DenseVec => ColumnChunk::Dense {
                data: Vec::new(),
                offsets: vec![0],
                validity: ValidityBitmap::new(),
            },
            DataType::SparseVec => ColumnChunk::Sparse {
                indices: Vec::new(),
                values: Vec::new(),
                offsets: vec![0],
                validity: ValidityBitmap::new(),
            },
            DataType::Sequence => ColumnChunk::Sequence { rows: Vec::new() },
        }
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        match self {
            ColumnChunk::Int { validity, .. }
            | ColumnChunk::Double { validity, .. }
            | ColumnChunk::Text { validity, .. }
            | ColumnChunk::Dense { validity, .. }
            | ColumnChunk::Sparse { validity, .. } => validity.len(),
            ColumnChunk::Sequence { rows } => rows.len(),
        }
    }

    /// True when the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one schema-validated value. The caller guarantees the value's
    /// type matches the chunk's layout (NULLs are always accepted).
    pub(crate) fn push(&mut self, value: &Value) -> Result<(), StorageError> {
        match (self, value) {
            (ColumnChunk::Int { data, validity }, Value::Int(v)) => {
                data.push(*v);
                validity.push(true);
            }
            (ColumnChunk::Int { data, validity }, Value::Null) => {
                data.push(0);
                validity.push(false);
            }
            (ColumnChunk::Double { data, validity, .. }, Value::Double(v)) => {
                data.push(*v);
                validity.push(true);
            }
            (
                ColumnChunk::Double {
                    data,
                    validity,
                    int_rows,
                },
                Value::Int(v),
            ) => {
                int_rows.push((data.len() as u32, *v));
                data.push(*v as f64);
                validity.push(true);
            }
            (ColumnChunk::Double { data, validity, .. }, Value::Null) => {
                data.push(0.0);
                validity.push(false);
            }
            (
                ColumnChunk::Text {
                    bytes,
                    offsets,
                    validity,
                },
                Value::Text(s),
            ) => {
                bytes.extend_from_slice(s.as_bytes());
                offsets.push(
                    u32::try_from(bytes.len())
                        .map_err(|_| corrupt("text chunk exceeds the 4 GiB offset range"))?,
                );
                validity.push(true);
            }
            (
                ColumnChunk::Text {
                    bytes,
                    offsets,
                    validity,
                    ..
                },
                Value::Null,
            ) => {
                offsets.push(bytes.len() as u32);
                validity.push(false);
            }
            (
                ColumnChunk::Dense {
                    data,
                    offsets,
                    validity,
                },
                Value::DenseVec(v),
            ) => {
                data.extend_from_slice(v.as_slice());
                offsets.push(
                    u32::try_from(data.len())
                        .map_err(|_| corrupt("dense chunk exceeds the u32 offset range"))?,
                );
                validity.push(true);
            }
            (
                ColumnChunk::Dense {
                    data,
                    offsets,
                    validity,
                    ..
                },
                Value::Null,
            ) => {
                offsets.push(data.len() as u32);
                validity.push(false);
            }
            (
                ColumnChunk::Sparse {
                    indices,
                    values,
                    offsets,
                    validity,
                },
                Value::SparseVec(v),
            ) => {
                indices.extend_from_slice(v.indices());
                values.extend_from_slice(v.values());
                offsets.push(
                    u32::try_from(indices.len())
                        .map_err(|_| corrupt("sparse chunk exceeds the u32 offset range"))?,
                );
                validity.push(true);
            }
            (
                ColumnChunk::Sparse {
                    indices,
                    offsets,
                    validity,
                    ..
                },
                Value::Null,
            ) => {
                offsets.push(indices.len() as u32);
                validity.push(false);
            }
            (ColumnChunk::Sequence { rows }, v @ (Value::Sequence(_) | Value::Null)) => {
                rows.push(v.clone());
            }
            _ => return Err(corrupt("value type does not match the column chunk layout")),
        }
        Ok(())
    }

    /// Materialize row `i` into `slot`, reusing `slot`'s existing allocation
    /// where the variants line up (the scan path calls this once per row per
    /// column, so a `DENSE_VEC` read is a `memcpy` into the scratch buffer,
    /// not a fresh heap allocation).
    pub(crate) fn read_into(&self, i: usize, slot: &mut Value) {
        match self {
            ColumnChunk::Int { data, validity } => {
                *slot = if validity.is_valid(i) {
                    Value::Int(data[i])
                } else {
                    Value::Null
                };
            }
            ColumnChunk::Double {
                data,
                validity,
                int_rows,
            } => {
                *slot = if !validity.is_valid(i) {
                    Value::Null
                } else if let Ok(pos) = int_rows.binary_search_by_key(&(i as u32), |&(s, _)| s) {
                    Value::Int(int_rows[pos].1)
                } else {
                    Value::Double(data[i])
                };
            }
            ColumnChunk::Text {
                bytes,
                offsets,
                validity,
            } => {
                if !validity.is_valid(i) {
                    *slot = Value::Null;
                    return;
                }
                let piece = &bytes[offsets[i] as usize..offsets[i + 1] as usize];
                let text = std::str::from_utf8(piece).unwrap_or_default();
                if let Value::Text(s) = slot {
                    s.clear();
                    s.push_str(text);
                } else {
                    *slot = Value::Text(text.to_string());
                }
            }
            ColumnChunk::Dense {
                data,
                offsets,
                validity,
            } => {
                if !validity.is_valid(i) {
                    *slot = Value::Null;
                    return;
                }
                let entries = &data[offsets[i] as usize..offsets[i + 1] as usize];
                if let Value::DenseVec(dv) = slot {
                    dv.resize(entries.len());
                    dv.as_mut_slice().copy_from_slice(entries);
                } else {
                    *slot = Value::DenseVec(DenseVector::from(entries.to_vec()));
                }
            }
            ColumnChunk::Sparse {
                indices,
                values,
                offsets,
                validity,
            } => {
                if !validity.is_valid(i) {
                    *slot = Value::Null;
                    return;
                }
                let range = offsets[i] as usize..offsets[i + 1] as usize;
                // The entries were validated (sorted, unique) on insert, so
                // the unchecked constructor reproduces them as stored.
                *slot = Value::SparseVec(SparseVector::from_sorted(
                    indices[range.clone()].to_vec(),
                    values[range].to_vec(),
                ));
            }
            ColumnChunk::Sequence { rows } => {
                slot.clone_from(&rows[i]);
            }
        }
    }

    /// The contiguous `f64` payload of a `DENSE_VEC` chunk (all rows' entries
    /// back to back), or `None` for other layouts. This is the slice the
    /// scan-throughput bench and future SIMD kernels stream.
    pub fn dense_data(&self) -> Option<&[f64]> {
        match self {
            ColumnChunk::Dense { data, .. } => Some(data),
            _ => None,
        }
    }

    /// Approximate in-memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        let bitmap = |v: &ValidityBitmap| v.len().div_ceil(64) * 8;
        match self {
            ColumnChunk::Int { data, validity } => data.len() * 8 + bitmap(validity),
            ColumnChunk::Double {
                data,
                validity,
                int_rows,
            } => data.len() * 8 + int_rows.len() * 12 + bitmap(validity),
            ColumnChunk::Text {
                bytes,
                offsets,
                validity,
            } => bytes.len() + offsets.len() * 4 + bitmap(validity),
            ColumnChunk::Dense {
                data,
                offsets,
                validity,
            } => data.len() * 8 + offsets.len() * 4 + bitmap(validity),
            ColumnChunk::Sparse {
                indices,
                values,
                offsets,
                validity,
            } => indices.len() * 4 + values.len() * 8 + offsets.len() * 4 + bitmap(validity),
            ColumnChunk::Sequence { rows } => rows.iter().map(Value::approx_bytes).sum(),
        }
    }

    /// Append this chunk's binary encoding (tag, row count, layout payload).
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        let push_u32s = |out: &mut Vec<u8>, xs: &[u32]| {
            out.extend_from_slice(&(xs.len() as u64).to_le_bytes());
            for x in xs {
                out.extend_from_slice(&x.to_le_bytes());
            }
        };
        let push_f64s = |out: &mut Vec<u8>, xs: &[f64]| {
            out.extend_from_slice(&(xs.len() as u64).to_le_bytes());
            for x in xs {
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        };
        match self {
            ColumnChunk::Int { data, validity } => {
                out.push(CHUNK_TAG_INT);
                out.extend_from_slice(&(data.len() as u64).to_le_bytes());
                for v in data {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                validity.encode(out);
            }
            ColumnChunk::Double {
                data,
                validity,
                int_rows,
            } => {
                out.push(CHUNK_TAG_DOUBLE);
                push_f64s(out, data);
                validity.encode(out);
                out.extend_from_slice(&(int_rows.len() as u64).to_le_bytes());
                for (slot, v) in int_rows {
                    out.extend_from_slice(&slot.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            ColumnChunk::Text {
                bytes,
                offsets,
                validity,
            } => {
                out.push(CHUNK_TAG_TEXT);
                out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
                out.extend_from_slice(bytes);
                push_u32s(out, offsets);
                validity.encode(out);
            }
            ColumnChunk::Dense {
                data,
                offsets,
                validity,
            } => {
                out.push(CHUNK_TAG_DENSE);
                push_f64s(out, data);
                push_u32s(out, offsets);
                validity.encode(out);
            }
            ColumnChunk::Sparse {
                indices,
                values,
                offsets,
                validity,
            } => {
                out.push(CHUNK_TAG_SPARSE);
                push_u32s(out, indices);
                push_f64s(out, values);
                push_u32s(out, offsets);
                validity.encode(out);
            }
            ColumnChunk::Sequence { rows } => {
                out.push(CHUNK_TAG_SEQUENCE);
                out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
                for row in rows {
                    push_value(out, row);
                }
            }
        }
    }

    /// Decode one chunk (inverse of [`ColumnChunk::encode`]), validating
    /// offsets so a corrupt file can never cause out-of-bounds reads later.
    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        let read_u32s = |r: &mut Reader<'_>| -> Result<Vec<u32>, StorageError> {
            let n = r.len_prefix(4)?;
            let mut xs = Vec::with_capacity(n);
            for _ in 0..n {
                xs.push(r.u32()?);
            }
            Ok(xs)
        };
        let read_f64s = |r: &mut Reader<'_>| -> Result<Vec<f64>, StorageError> {
            let n = r.len_prefix(8)?;
            let mut xs = Vec::with_capacity(n);
            for _ in 0..n {
                xs.push(r.f64()?);
            }
            Ok(xs)
        };
        let check_offsets = |offsets: &[u32], rows: usize, payload: usize| {
            if offsets.len() != rows + 1
                || offsets.first() != Some(&0)
                || offsets.last().copied().unwrap_or(1) as usize != payload
                || offsets.windows(2).any(|w| w[0] > w[1])
            {
                return Err(corrupt("chunk offsets are inconsistent"));
            }
            Ok(())
        };
        match r.u8()? {
            CHUNK_TAG_INT => {
                let n = r.len_prefix(8)?;
                let mut data = Vec::with_capacity(n);
                for _ in 0..n {
                    data.push(r.i64()?);
                }
                let validity = ValidityBitmap::decode(r)?;
                if validity.len() != data.len() {
                    return Err(corrupt("int chunk validity length mismatch"));
                }
                Ok(ColumnChunk::Int { data, validity })
            }
            CHUNK_TAG_DOUBLE => {
                let data = read_f64s(r)?;
                let validity = ValidityBitmap::decode(r)?;
                if validity.len() != data.len() {
                    return Err(corrupt("double chunk validity length mismatch"));
                }
                let n = r.len_prefix(12)?;
                let mut int_rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let slot = r.u32()?;
                    let v = r.i64()?;
                    if slot as usize >= data.len() {
                        return Err(corrupt("double chunk int-row slot out of range"));
                    }
                    int_rows.push((slot, v));
                }
                if int_rows.windows(2).any(|w| w[0].0 >= w[1].0) {
                    return Err(corrupt("double chunk int-rows are not sorted"));
                }
                Ok(ColumnChunk::Double {
                    data,
                    validity,
                    int_rows,
                })
            }
            CHUNK_TAG_TEXT => {
                let len = r.len_prefix(1)?;
                let bytes = r.take(len)?.to_vec();
                let offsets = read_u32s(r)?;
                let validity = ValidityBitmap::decode(r)?;
                check_offsets(&offsets, validity.len(), bytes.len())?;
                Ok(ColumnChunk::Text {
                    bytes,
                    offsets,
                    validity,
                })
            }
            CHUNK_TAG_DENSE => {
                let data = read_f64s(r)?;
                let offsets = read_u32s(r)?;
                let validity = ValidityBitmap::decode(r)?;
                check_offsets(&offsets, validity.len(), data.len())?;
                Ok(ColumnChunk::Dense {
                    data,
                    offsets,
                    validity,
                })
            }
            CHUNK_TAG_SPARSE => {
                let indices = read_u32s(r)?;
                let values = read_f64s(r)?;
                let offsets = read_u32s(r)?;
                if indices.len() != values.len() {
                    return Err(corrupt("sparse chunk index/value length mismatch"));
                }
                let validity = ValidityBitmap::decode(r)?;
                check_offsets(&offsets, validity.len(), indices.len())?;
                Ok(ColumnChunk::Sparse {
                    indices,
                    values,
                    offsets,
                    validity,
                })
            }
            CHUNK_TAG_SEQUENCE => {
                let n = r.len_prefix(1)?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let v = read_value(r)?;
                    if !matches!(v, Value::Sequence(_) | Value::Null) {
                        return Err(corrupt("sequence chunk holds a non-sequence value"));
                    }
                    rows.push(v);
                }
                Ok(ColumnChunk::Sequence { rows })
            }
            tag => Err(corrupt(format!("unknown column-chunk tag {tag}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_tracks_validity_across_word_boundaries() {
        let mut v = ValidityBitmap::new();
        for i in 0..130 {
            v.push(i % 3 != 0);
        }
        assert_eq!(v.len(), 130);
        for i in 0..130 {
            assert_eq!(v.is_valid(i), i % 3 != 0, "bit {i}");
        }
        assert!(!v.is_valid(500));
        assert_eq!(v.count_valid(), (0..130).filter(|i| i % 3 != 0).count());
    }

    fn roundtrip(chunk: &ColumnChunk) {
        let mut bytes = Vec::new();
        chunk.encode(&mut bytes);
        let mut r = Reader::new(&bytes);
        let back = ColumnChunk::decode(&mut r).unwrap();
        r.finish().unwrap();
        // Compare re-encoded bytes rather than values: the encoding captures
        // f64 bit patterns, so this treats NaN == NaN (bitwise) while
        // remaining exact for everything else.
        let mut back_bytes = Vec::new();
        back.encode(&mut back_bytes);
        assert_eq!(back_bytes, bytes);
    }

    #[test]
    fn chunks_roundtrip_with_nulls() {
        for dtype in [
            DataType::Int,
            DataType::Double,
            DataType::Text,
            DataType::DenseVec,
            DataType::SparseVec,
            DataType::Sequence,
        ] {
            let mut chunk = ColumnChunk::empty(dtype);
            let values: Vec<Value> = match dtype {
                DataType::Int => vec![Value::Int(-3), Value::Null, Value::Int(7)],
                DataType::Double => vec![
                    Value::Double(1.5),
                    Value::Null,
                    Value::Int(i64::MAX - 1),
                    Value::Double(f64::NAN),
                ],
                DataType::Text => vec![Value::from("a,b;c"), Value::Null, Value::from("")],
                DataType::DenseVec => vec![
                    Value::from(vec![1.0, 2.0, 3.0]),
                    Value::Null,
                    Value::from(Vec::<f64>::new()),
                    Value::from(vec![-0.5]),
                ],
                DataType::SparseVec => vec![
                    Value::SparseVec(SparseVector::from_pairs(vec![(2, 1.0), (9, -2.0)])),
                    Value::Null,
                    Value::SparseVec(SparseVector::new()),
                ],
                DataType::Sequence => vec![
                    Value::Sequence(vec![(SparseVector::from_pairs(vec![(0, 1.0)]), 3)]),
                    Value::Null,
                ],
            };
            for v in &values {
                chunk.push(v).unwrap();
            }
            assert_eq!(chunk.len(), values.len());
            roundtrip(&chunk);
            // Materialization reproduces the inserted values exactly
            // (NaN compares unequal; check bit patterns through Debug).
            let mut slot = Value::Null;
            for (i, expected) in values.iter().enumerate() {
                chunk.read_into(i, &mut slot);
                match (expected, &slot) {
                    (Value::Double(a), Value::Double(b)) => {
                        assert_eq!(a.to_bits(), b.to_bits(), "row {i}")
                    }
                    _ => assert_eq!(expected, &slot, "row {i}"),
                }
            }
        }
    }

    #[test]
    fn double_chunk_preserves_integer_values_exactly() {
        let mut chunk = ColumnChunk::empty(DataType::Double);
        // 2^53 + 1 is not representable as f64: the side table must keep it.
        let big = (1i64 << 53) + 1;
        chunk.push(&Value::Int(big)).unwrap();
        chunk.push(&Value::Double(0.5)).unwrap();
        let mut slot = Value::Null;
        chunk.read_into(0, &mut slot);
        assert_eq!(slot, Value::Int(big));
        chunk.read_into(1, &mut slot);
        assert_eq!(slot, Value::Double(0.5));
    }

    #[test]
    fn read_into_reuses_dense_allocation() {
        let mut chunk = ColumnChunk::empty(DataType::DenseVec);
        chunk.push(&Value::from(vec![1.0, 2.0])).unwrap();
        chunk.push(&Value::from(vec![3.0, 4.0])).unwrap();
        let mut slot = Value::from(vec![0.0, 0.0]);
        let before = match &slot {
            Value::DenseVec(v) => v.as_slice().as_ptr(),
            _ => unreachable!(),
        };
        chunk.read_into(1, &mut slot);
        let after = match &slot {
            Value::DenseVec(v) => {
                assert_eq!(v.as_slice(), &[3.0, 4.0]);
                v.as_slice().as_ptr()
            }
            _ => panic!("expected a dense vector"),
        };
        assert_eq!(before, after, "same-size read must reuse the buffer");
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut chunk = ColumnChunk::empty(DataType::Int);
        assert!(chunk.push(&Value::from("nope")).is_err());
    }

    #[test]
    fn corrupt_offsets_are_rejected() {
        let mut chunk = ColumnChunk::empty(DataType::Text);
        chunk.push(&Value::from("hello")).unwrap();
        let mut bytes = Vec::new();
        chunk.encode(&mut bytes);
        // Flip a byte inside the offsets array; decoding must error, not
        // produce a chunk whose reads go out of bounds.
        let len = bytes.len();
        bytes[len - 20] ^= 0xff;
        let mut r = Reader::new(&bytes);
        let result = ColumnChunk::decode(&mut r).and_then(|_| r.finish());
        assert!(result.is_err());
    }
}
