//! Columnar, chunked tables with optional out-of-core paging.
//!
//! A [`ColumnarTable`] stores rows decomposed into per-column
//! [`ColumnChunk`]s (see [`crate::chunk`]), grouped into fixed-size
//! **segments** of `chunk_capacity` rows. Dense feature data is contiguous
//! within a segment, so an epoch's scan streams `f64`s linearly instead of
//! chasing one heap allocation per tuple — the layout the PR 3 write-up
//! named as the next unlock after the zero-copy kernels.
//!
//! Two backings share the same surface:
//!
//! * **in-memory** — sealed segments are `Arc`-shared in a `Vec`;
//! * **paged** — sealed segments live in one checksummed file each under a
//!   directory (written with [`crate::durable::atomic_write`]), and reads go
//!   through a small pinned-segment LRU cache with sequential read-ahead
//!   (`crate::pager`), so an epoch can stream a dataset larger than memory.
//!
//! Scans materialize rows into a reused scratch [`Tuple`], so trainers, the
//! SQL executor and the NULL-aggregate baseline consume columnar tables
//! through the exact same [`TupleScan`] surface as the row-store [`Table`] —
//! and, because materialization copies the same `f64` bit patterns the
//! row-store holds, training over either backing produces bit-identical
//! models.

use std::path::Path;
use std::sync::Arc;

use crate::chunk::ColumnChunk;
use crate::codec::Reader;
use crate::error::StorageError;
use crate::pager::{Manifest, Pager, PagerStats};
use crate::scan::TupleScan;
use crate::schema::{DataType, Schema};
use crate::table::Table;
use crate::tuple::Tuple;
use crate::value::Value;

/// Default number of rows per segment. Large enough that a dense d=54
/// feature chunk spans ~100 KiB of contiguous `f64`s, small enough that the
/// paged cache works at test scale.
pub const DEFAULT_CHUNK_CAPACITY: usize = 1024;

fn corrupt(msg: impl Into<String>) -> StorageError {
    StorageError::Corrupt(msg.into())
}

/// One segment: every column's chunk for a contiguous run of rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    rows: usize,
    columns: Vec<ColumnChunk>,
}

impl Segment {
    /// An empty segment laid out for `schema`.
    pub(crate) fn empty(schema: &Schema) -> Self {
        Segment {
            rows: 0,
            columns: schema
                .columns()
                .iter()
                .map(|c| ColumnChunk::empty(c.dtype))
                .collect(),
        }
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the segment holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The chunk for column `i`.
    pub fn column(&self, i: usize) -> Option<&ColumnChunk> {
        self.columns.get(i)
    }

    /// Append one schema-validated row.
    pub(crate) fn push_row(&mut self, values: &[Value]) -> Result<(), StorageError> {
        for (chunk, value) in self.columns.iter_mut().zip(values) {
            chunk.push(value)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Materialize row `row` into `tuple`, reusing its allocations.
    pub(crate) fn read_row_into(&self, row: usize, tuple: &mut Tuple) {
        let values = tuple.values_mut();
        if values.len() != self.columns.len() {
            values.clear();
            values.resize(self.columns.len(), Value::Null);
        }
        for (chunk, slot) in self.columns.iter().zip(values.iter_mut()) {
            chunk.read_into(row, slot);
        }
    }

    /// Approximate in-memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.columns.iter().map(ColumnChunk::approx_bytes).sum()
    }

    /// Append the segment's binary encoding (row count, then each chunk).
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.rows as u64).to_le_bytes());
        out.extend_from_slice(&(self.columns.len() as u64).to_le_bytes());
        for chunk in &self.columns {
            chunk.encode(out);
        }
    }

    /// Decode a segment (inverse of [`Segment::encode`]).
    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        let rows = r.u64()? as usize;
        let cols = r.len_prefix(1)?;
        let mut columns = Vec::with_capacity(cols);
        for _ in 0..cols {
            let chunk = ColumnChunk::decode(r)?;
            if chunk.len() != rows {
                return Err(corrupt("segment chunk row-count mismatch"));
            }
            columns.push(chunk);
        }
        Ok(Segment { rows, columns })
    }
}

/// Where sealed segments live.
#[derive(Debug)]
enum Backing {
    /// All sealed segments resident, `Arc`-shared.
    Memory(Vec<Arc<Segment>>),
    /// Sealed segments on disk behind a pinned-chunk cache; `sealed` counts
    /// them (the partial tail segment stays in [`ColumnarTable::open`]).
    Paged { pager: Pager, sealed: usize },
}

/// A columnar, chunked table exposing the same scan surface as [`Table`].
///
/// Rows are validated against the schema on insert exactly like the
/// row-store, and every scan order ([`TupleScan`]) yields tuples equal to
/// what a row-store holding the same inserts would yield — property-tested
/// in `tests/columnar_equivalence.rs`.
#[derive(Debug)]
pub struct ColumnarTable {
    name: String,
    schema: Schema,
    chunk_capacity: usize,
    backing: Backing,
    /// The partial tail segment still accepting inserts.
    open: Segment,
    row_count: usize,
}

impl ColumnarTable {
    /// Create an empty in-memory columnar table with the default segment
    /// size ([`DEFAULT_CHUNK_CAPACITY`] rows).
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Self::with_chunk_capacity(name, schema, DEFAULT_CHUNK_CAPACITY)
    }

    /// Create an empty in-memory columnar table with `chunk_capacity` rows
    /// per segment (values below 1 are clamped to 1).
    pub fn with_chunk_capacity(
        name: impl Into<String>,
        schema: Schema,
        chunk_capacity: usize,
    ) -> Self {
        let open = Segment::empty(&schema);
        ColumnarTable {
            name: name.into(),
            schema,
            chunk_capacity: chunk_capacity.max(1),
            backing: Backing::Memory(Vec::new()),
            open,
            row_count: 0,
        }
    }

    /// Create an empty **paged** columnar table rooted at `dir` (created if
    /// missing): sealed segments are written to one checksummed file each
    /// via the atomic-write protocol, and scans read them back through an
    /// LRU cache holding at most `cache_segments` segments.
    pub fn create_paged(
        name: impl Into<String>,
        schema: Schema,
        dir: &Path,
        chunk_capacity: usize,
        cache_segments: usize,
    ) -> Result<Self, StorageError> {
        let name = name.into();
        let chunk_capacity = chunk_capacity.max(1);
        let pager = Pager::create(dir, cache_segments)?;
        let table = ColumnarTable {
            open: Segment::empty(&schema),
            name,
            schema,
            chunk_capacity,
            backing: Backing::Paged { pager, sealed: 0 },
            row_count: 0,
        };
        table.write_manifest()?;
        Ok(table)
    }

    /// Re-open a paged columnar table previously created (and flushed) at
    /// `dir`.
    pub fn open_paged(dir: &Path, cache_segments: usize) -> Result<Self, StorageError> {
        let manifest = Manifest::read(dir)?;
        let pager = Pager::create(dir, cache_segments)?;
        let chunk_capacity = (manifest.chunk_capacity as usize).max(1);
        let row_count = manifest.row_count as usize;
        let segments = row_count.div_ceil(chunk_capacity);
        let tail = row_count % chunk_capacity;
        let (sealed, open) = if tail == 0 {
            (segments, Segment::empty(&manifest.schema))
        } else {
            // The tail segment is partial: pull it back into the builder so
            // inserts can keep filling it.
            let seg = pager.fetch(segments - 1, segments)?;
            if seg.len() != tail {
                return Err(corrupt(format!(
                    "tail segment holds {} rows, manifest expects {tail}",
                    seg.len()
                )));
            }
            (segments - 1, Segment::clone(&seg))
        };
        Ok(ColumnarTable {
            name: manifest.name,
            schema: manifest.schema,
            chunk_capacity,
            backing: Backing::Paged { pager, sealed },
            open,
            row_count,
        })
    }

    /// Build an in-memory columnar table holding the same rows as `table`.
    pub fn from_table(table: &Table) -> Result<Self, StorageError> {
        let mut columnar = ColumnarTable::new(table.name(), table.schema().clone());
        for tuple in table.scan() {
            columnar.insert(tuple.values().to_vec())?;
        }
        Ok(columnar)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.row_count
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.row_count == 0
    }

    /// Rows per segment.
    pub fn chunk_capacity(&self) -> usize {
        self.chunk_capacity
    }

    /// Number of segments (sealed plus the partial tail, if any).
    pub fn segment_count(&self) -> usize {
        self.sealed_count() + usize::from(!self.open.is_empty())
    }

    /// Resolve a column name to its ordinal position.
    pub fn column_index(&self, name: &str) -> Result<usize, StorageError> {
        self.schema.index_of(name)
    }

    /// Cache/IO counters of the paged backing; `None` for in-memory tables.
    pub fn pager_stats(&self) -> Option<PagerStats> {
        match &self.backing {
            Backing::Memory(_) => None,
            Backing::Paged { pager, .. } => Some(pager.stats()),
        }
    }

    fn sealed_count(&self) -> usize {
        match &self.backing {
            Backing::Memory(segments) => segments.len(),
            Backing::Paged { sealed, .. } => *sealed,
        }
    }

    /// Fetch sealed segment `idx` (cache-transparently for paged tables).
    fn sealed_segment(&self, idx: usize) -> Result<Arc<Segment>, StorageError> {
        match &self.backing {
            Backing::Memory(segments) => segments
                .get(idx)
                .cloned()
                .ok_or_else(|| corrupt(format!("sealed segment {idx} out of range"))),
            Backing::Paged { pager, sealed } => pager.fetch(idx, *sealed),
        }
    }

    /// Validate and append a row, returning its row id.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<usize, StorageError> {
        self.schema.validate(&values)?;
        self.open.push_row(&values)?;
        let id = self.row_count;
        self.row_count += 1;
        if self.open.len() >= self.chunk_capacity {
            self.seal_open()?;
        }
        Ok(id)
    }

    /// Append a batch of rows; stops at the first invalid row.
    pub fn insert_all(
        &mut self,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<usize, StorageError> {
        let mut inserted = 0;
        for row in rows {
            self.insert(row)?;
            inserted += 1;
        }
        Ok(inserted)
    }

    fn seal_open(&mut self) -> Result<(), StorageError> {
        let full = std::mem::replace(&mut self.open, Segment::empty(&self.schema));
        match &mut self.backing {
            Backing::Memory(segments) => segments.push(Arc::new(full)),
            Backing::Paged { pager, sealed } => {
                pager.write_segment(*sealed, &full)?;
                *sealed += 1;
            }
        }
        if matches!(self.backing, Backing::Paged { .. }) {
            self.write_manifest()?;
        }
        Ok(())
    }

    fn write_manifest(&self) -> Result<(), StorageError> {
        if let Backing::Paged { pager, .. } = &self.backing {
            Manifest {
                name: self.name.clone(),
                schema: self.schema.clone(),
                chunk_capacity: self.chunk_capacity as u64,
                row_count: self.row_count as u64,
            }
            .write(pager.dir())?;
        }
        Ok(())
    }

    /// Make all inserted rows durable (paged tables only; a no-op for
    /// in-memory tables). Sealed segments are persisted as they fill; this
    /// writes the partial tail segment and the manifest, so a subsequent
    /// [`ColumnarTable::open_paged`] sees every row.
    pub fn flush(&mut self) -> Result<(), StorageError> {
        let Backing::Paged { pager, sealed } = &self.backing else {
            return Ok(());
        };
        if !self.open.is_empty() {
            pager.write_segment(*sealed, &self.open)?;
        }
        self.write_manifest()
    }

    /// Fetch the tuple at `row` (storage order) as an owned value.
    ///
    /// Unlike [`Table::get`] this materializes the row (a paged segment may
    /// be evicted at any time, so borrows cannot escape).
    pub fn get(&self, row: usize) -> Result<Tuple, StorageError> {
        if row >= self.row_count {
            return Err(StorageError::RowOutOfRange {
                row,
                len: self.row_count,
            });
        }
        let mut tuple = Tuple::default();
        let seg = row / self.chunk_capacity;
        let off = row % self.chunk_capacity;
        if seg < self.sealed_count() {
            self.sealed_segment(seg)?.read_row_into(off, &mut tuple);
        } else {
            self.open.read_row_into(off, &mut tuple);
        }
        Ok(tuple)
    }

    /// Total approximate size of the resident data in bytes. For paged
    /// tables this counts only the open segment (sealed data lives on disk).
    pub fn approx_bytes(&self) -> usize {
        let sealed: usize = match &self.backing {
            Backing::Memory(segments) => segments.iter().map(|s| s.approx_bytes()).sum(),
            Backing::Paged { .. } => 0,
        };
        sealed + self.open.approx_bytes()
    }

    /// Stream the contiguous `f64` payload of dense-vector column `col`, one
    /// callback per segment. This is the columnar fast path: each slice
    /// holds every row's feature entries back to back in storage order, so
    /// a dot-product or sum runs at memory bandwidth with no per-tuple
    /// dispatch. Errors if `col` is not a `DENSE_VEC` column.
    pub fn scan_dense_column(
        &self,
        col: usize,
        f: &mut dyn FnMut(&[f64]),
    ) -> Result<(), StorageError> {
        let column = self
            .schema
            .column(col)
            .ok_or_else(|| StorageError::UnknownColumn(format!("#{col}")))?;
        if column.dtype != DataType::DenseVec {
            return Err(StorageError::TypeMismatch {
                column: column.name.clone(),
                expected: DataType::DenseVec,
                actual: column.dtype,
            });
        }
        for idx in 0..self.sealed_count() {
            let seg = self.sealed_segment(idx)?;
            if let Some(data) = seg.column(col).and_then(ColumnChunk::dense_data) {
                f(data);
            }
        }
        if !self.open.is_empty() {
            if let Some(data) = self.open.column(col).and_then(ColumnChunk::dense_data) {
                f(data);
            }
        }
        Ok(())
    }

    /// Panic with a descriptive message on a paged read failure mid-scan.
    ///
    /// [`TupleScan`] has no error channel by design (the trainers' epoch
    /// loops treat a mid-epoch fault like a worker fault and recover the
    /// last-good model via `catch_unwind`), so an I/O error surfaces as a
    /// panic rather than silently truncating the scan.
    fn sealed_segment_or_panic(&self, idx: usize) -> Arc<Segment> {
        match self.sealed_segment(idx) {
            Ok(seg) => seg,
            Err(e) => panic!("columnar scan failed to page in segment {idx}: {e}"),
        }
    }
}

impl TupleScan for ColumnarTable {
    fn tuple_count(&self) -> usize {
        self.row_count
    }

    fn scan_tuples_while(&self, f: &mut dyn FnMut(&Tuple) -> bool) {
        let mut scratch = Tuple::default();
        for idx in 0..self.sealed_count() {
            let seg = self.sealed_segment_or_panic(idx);
            for row in 0..seg.len() {
                seg.read_row_into(row, &mut scratch);
                if !f(&scratch) {
                    return;
                }
            }
        }
        for row in 0..self.open.len() {
            self.open.read_row_into(row, &mut scratch);
            if !f(&scratch) {
                return;
            }
        }
    }

    fn scan_tuples_permuted(&self, order: &[usize], f: &mut dyn FnMut(&Tuple)) {
        let mut scratch = Tuple::default();
        // Cache the last-touched segment so runs of nearby rows (and the
        // clustered case) do not take the pager lock once per tuple.
        let mut current: Option<(usize, Arc<Segment>)> = None;
        for &row in order {
            if row >= self.row_count {
                continue;
            }
            let seg_idx = row / self.chunk_capacity;
            let off = row % self.chunk_capacity;
            if seg_idx >= self.sealed_count() {
                self.open.read_row_into(off, &mut scratch);
            } else {
                if current.as_ref().map(|(i, _)| *i) != Some(seg_idx) {
                    current = Some((seg_idx, self.sealed_segment_or_panic(seg_idx)));
                }
                let (_, seg) = current.as_ref().expect("segment cached above");
                seg.read_row_into(off, &mut scratch);
            }
            f(&scratch);
        }
    }

    fn scan_tuples_range(&self, start: usize, end: usize, f: &mut dyn FnMut(&Tuple)) {
        let end = end.min(self.row_count);
        let start = start.min(end);
        let mut scratch = Tuple::default();
        let mut row = start;
        while row < end {
            let seg_idx = row / self.chunk_capacity;
            let off = row % self.chunk_capacity;
            if seg_idx >= self.sealed_count() {
                self.open.read_row_into(off, &mut scratch);
                f(&scratch);
                row += 1;
                continue;
            }
            let seg = self.sealed_segment_or_panic(seg_idx);
            let stop = (seg_idx + 1) * self.chunk_capacity;
            while row < end.min(stop) {
                seg.read_row_into(row % self.chunk_capacity, &mut scratch);
                f(&scratch);
                row += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("vec", DataType::DenseVec),
            Column::nullable("label", DataType::Double),
            Column::nullable("note", DataType::Text),
        ])
        .unwrap()
    }

    fn row(i: usize) -> Vec<Value> {
        vec![
            Value::Int(i as i64),
            Value::from(vec![i as f64, -(i as f64), 0.5]),
            if i.is_multiple_of(5) {
                Value::Null
            } else {
                Value::Double(i as f64 * 0.25)
            },
            Value::from(format!("note-{i}")),
        ]
    }

    fn filled(chunk_capacity: usize, n: usize) -> ColumnarTable {
        let mut t = ColumnarTable::with_chunk_capacity("t", schema(), chunk_capacity);
        for i in 0..n {
            assert_eq!(t.insert(row(i)).unwrap(), i);
        }
        t
    }

    #[test]
    fn insert_get_and_len_match_row_store() {
        let n = 100;
        let t = filled(16, n);
        let mut rs = Table::new("t", schema());
        for i in 0..n {
            rs.insert(row(i)).unwrap();
        }
        assert_eq!(t.len(), rs.len());
        for i in 0..n {
            assert_eq!(&t.get(i).unwrap(), rs.get(i).unwrap(), "row {i}");
        }
        assert!(matches!(t.get(n), Err(StorageError::RowOutOfRange { .. })));
    }

    #[test]
    fn insert_validates_schema() {
        let mut t = ColumnarTable::new("t", schema());
        assert!(t.insert(vec![Value::Int(0)]).is_err());
        assert!(t
            .insert(vec![
                Value::from("x"),
                Value::from(vec![1.0]),
                Value::Null,
                Value::Null
            ])
            .is_err());
        assert!(t.is_empty());
    }

    #[test]
    fn scans_cross_segment_boundaries() {
        let t = filled(8, 50);
        let mut seen = Vec::new();
        t.scan_tuples(&mut |tuple| seen.push(tuple.get_int(0).unwrap()));
        assert_eq!(seen, (0..50).collect::<Vec<i64>>());
        assert_eq!(t.segment_count(), 7);

        let order: Vec<usize> = (0..50).rev().chain([999]).collect();
        let mut seen = Vec::new();
        t.scan_tuples_permuted(&order, &mut |tuple| seen.push(tuple.get_int(0).unwrap()));
        assert_eq!(seen, (0..50).rev().collect::<Vec<i64>>());

        let mut seen = Vec::new();
        t.scan_tuples_range(6, 19, &mut |tuple| seen.push(tuple.get_int(0).unwrap()));
        assert_eq!(seen, (6..19).collect::<Vec<i64>>());
        assert_eq!(
            {
                let mut n = 0;
                t.scan_tuples_range(30, 1000, &mut |_| n += 1);
                n
            },
            20
        );
    }

    #[test]
    fn scan_while_stops_early() {
        let t = filled(8, 50);
        let mut seen = 0;
        t.scan_tuples_while(&mut |_| {
            seen += 1;
            seen < 13
        });
        assert_eq!(seen, 13);
    }

    #[test]
    fn dense_column_scan_is_contiguous_per_segment() {
        let t = filled(8, 20);
        let mut total = 0usize;
        let mut chunks = 0usize;
        t.scan_dense_column(1, &mut |slice| {
            chunks += 1;
            total += slice.len();
        })
        .unwrap();
        assert_eq!(total, 20 * 3);
        assert_eq!(chunks, t.segment_count());
        assert!(t.scan_dense_column(0, &mut |_| {}).is_err());
    }

    #[test]
    fn paged_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "bismarck-columnar-test-{}-reopen",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let n = 37;
        {
            let mut t = ColumnarTable::create_paged("t", schema(), &dir, 8, 2).unwrap();
            for i in 0..n {
                t.insert(row(i)).unwrap();
            }
            t.flush().unwrap();
        }
        let t = ColumnarTable::open_paged(&dir, 2).unwrap();
        assert_eq!(t.len(), n);
        assert_eq!(t.name(), "t");
        let mut seen = Vec::new();
        t.scan_tuples(&mut |tuple| seen.push(tuple.get_int(0).unwrap()));
        assert_eq!(seen, (0..n as i64).collect::<Vec<i64>>());
        // The cache (2 segments) is smaller than the table (5 segments):
        // a full scan must have paged.
        let stats = t.pager_stats().unwrap();
        assert!(stats.misses > 0, "scan should touch disk: {stats:?}");

        // Inserts continue after reopen, filling the partial tail.
        let mut t = ColumnarTable::open_paged(&dir, 2).unwrap();
        for i in n..n + 10 {
            t.insert(row(i)).unwrap();
        }
        t.flush().unwrap();
        let t = ColumnarTable::open_paged(&dir, 2).unwrap();
        assert_eq!(t.len(), n + 10);
        for i in 0..n + 10 {
            assert_eq!(t.get(i).unwrap().get_int(0), Some(i as i64), "row {i}");
        }
    }

    #[test]
    fn from_table_preserves_rows() {
        let mut rs = Table::new("src", schema());
        for i in 0..30 {
            rs.insert(row(i)).unwrap();
        }
        let t = ColumnarTable::from_table(&rs).unwrap();
        assert_eq!(t.len(), 30);
        let mut i = 0;
        t.scan_tuples(&mut |tuple| {
            assert_eq!(tuple, rs.get(i).unwrap());
            i += 1;
        });
    }
}
