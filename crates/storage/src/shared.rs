//! User-space shared memory for concurrently-updated models.
//!
//! Section 3.3: "Shared-memory management is provided by most RDBMSes, and it
//! enables us to implement the IGD aggregate completely in the user space".
//! We model that facility as a [`SharedModel`] — a fixed-size array of `f64`
//! components stored in `AtomicU64` cells so that several worker threads can
//! update the model concurrently with three different disciplines:
//!
//! * **NoLock** (Hogwild!): plain racy read/add/store of each component;
//! * **AIG** (atomic incremental gradient): per-component compare-and-swap
//!   loops, i.e. each coordinate update is atomic but the model as a whole is
//!   not locked;
//! * **Lock**: callers serialize whole-model updates through an external
//!   mutex (provided by the parallel executor, not this type).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, atomically accessible vector of `f64` model components.
#[derive(Debug, Clone)]
pub struct SharedModel {
    cells: Arc<Vec<AtomicU64>>,
}

impl SharedModel {
    /// Create a shared model initialized from `values`.
    pub fn from_slice(values: &[f64]) -> Self {
        let cells = values.iter().map(|v| AtomicU64::new(v.to_bits())).collect();
        SharedModel {
            cells: Arc::new(cells),
        }
    }

    /// Create a zero-initialized shared model of length `n`.
    pub fn zeros(n: usize) -> Self {
        SharedModel::from_slice(&vec![0.0; n])
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the model has no components.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Read component `i` (relaxed ordering — the Hogwild!/AIG analyses
    /// tolerate stale reads).
    #[inline]
    pub fn load(&self, i: usize) -> f64 {
        f64::from_bits(self.cells[i].load(Ordering::Relaxed))
    }

    /// Racy store of component `i` (the NoLock discipline).
    #[inline]
    pub fn store(&self, i: usize, value: f64) {
        self.cells[i].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Racy read-add-store of component `i` (NoLock): other writers landing
    /// between the read and the store can be lost, which the Hogwild! result
    /// shows is tolerable for sparse updates.
    #[inline]
    pub fn add_racy(&self, i: usize, delta: f64) {
        let current = self.load(i);
        self.store(i, current + delta);
    }

    /// Atomic add of `delta` to component `i` using a compare-and-exchange
    /// loop; this is the AIG discipline's per-component "lock".
    #[inline]
    pub fn add_atomic(&self, i: usize, delta: f64) {
        let cell = &self.cells[i];
        let mut current = cell.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(current) + delta).to_bits();
            match cell.compare_exchange_weak(current, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Snapshot the whole model into a `Vec<f64>`.
    pub fn snapshot(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.load(i)).collect()
    }

    /// Overwrite the whole model from a slice (shorter slices leave the tail
    /// untouched; longer slices are truncated).
    pub fn overwrite(&self, values: &[f64]) {
        for (i, &v) in values.iter().enumerate().take(self.len()) {
            self.store(i, v);
        }
    }

    /// Number of `Arc` handles to the underlying cells (diagnostics only).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn roundtrip_load_store() {
        let m = SharedModel::zeros(3);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        m.store(1, 2.5);
        assert_eq!(m.load(1), 2.5);
        assert_eq!(m.snapshot(), vec![0.0, 2.5, 0.0]);
    }

    #[test]
    fn from_slice_preserves_values() {
        let m = SharedModel::from_slice(&[1.0, -2.0]);
        assert_eq!(m.snapshot(), vec![1.0, -2.0]);
    }

    #[test]
    fn overwrite_partial_and_truncated() {
        let m = SharedModel::zeros(3);
        m.overwrite(&[1.0]);
        assert_eq!(m.snapshot(), vec![1.0, 0.0, 0.0]);
        m.overwrite(&[9.0, 9.0, 9.0, 9.0]);
        assert_eq!(m.snapshot(), vec![9.0, 9.0, 9.0]);
    }

    #[test]
    fn add_atomic_is_exact_under_contention() {
        let m = SharedModel::zeros(1);
        let threads = 4;
        let per_thread = 10_000;
        thread::scope(|s| {
            for _ in 0..threads {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..per_thread {
                        m.add_atomic(0, 1.0);
                    }
                });
            }
        });
        assert_eq!(m.load(0), (threads * per_thread) as f64);
    }

    #[test]
    fn add_racy_still_makes_progress() {
        // Racy adds may lose updates but must end up positive and bounded by
        // the exact count.
        let m = SharedModel::zeros(1);
        let threads = 4;
        let per_thread = 10_000;
        thread::scope(|s| {
            for _ in 0..threads {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..per_thread {
                        m.add_racy(0, 1.0);
                    }
                });
            }
        });
        let v = m.load(0);
        assert!(v > 0.0);
        assert!(v <= (threads * per_thread) as f64);
    }

    #[test]
    fn clones_share_storage() {
        let m = SharedModel::zeros(2);
        let m2 = m.clone();
        m2.store(0, 7.0);
        assert_eq!(m.load(0), 7.0);
        assert!(m.handle_count() >= 2);
    }
}
