//! Binary encoding of schemas, values and rows for the durability layer.
//!
//! The WAL and the catalog snapshot both persist tables, so they share one
//! codec. The format is deliberately simple and self-describing: every value
//! starts with a one-byte type tag, integers are little-endian, `f64`s are
//! stored as their IEEE-754 bit patterns (so `NaN`s round-trip bitwise), and
//! variable-length payloads are length-prefixed. Decoding is defensive: a
//! corrupt length can never request an allocation larger than the remaining
//! input, and unknown tags are reported as corruption rather than skipped.

use bismarck_linalg::{DenseVector, SparseVector};

use crate::error::StorageError;
use crate::schema::{Column, DataType, Schema};
use crate::value::Value;

/// Incremental little-endian reader with bounds-checked primitives.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn corrupt(msg: impl Into<String>) -> StorageError {
    StorageError::Corrupt(msg.into())
}

impl<'a> Reader<'a> {
    /// Read from the start of `bytes`.
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| corrupt("record is truncated"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    pub(crate) fn i64(&mut self) -> Result<i64, StorageError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, StorageError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u64` length prefix, validated against the remaining input assuming
    /// each counted element occupies at least `min_element_bytes`.
    pub(crate) fn len_prefix(&mut self, min_element_bytes: usize) -> Result<usize, StorageError> {
        let len = self.u64()? as usize;
        if len > self.remaining() / min_element_bytes.max(1) {
            return Err(corrupt(format!(
                "length prefix {len} exceeds the remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(len)
    }

    pub(crate) fn string(&mut self) -> Result<String, StorageError> {
        let len = self.len_prefix(1)?;
        std::str::from_utf8(self.take(len)?)
            .map(str::to_string)
            .map_err(|_| corrupt("string is not UTF-8"))
    }

    /// Error unless the whole input was consumed.
    pub(crate) fn finish(self) -> Result<(), StorageError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(corrupt(format!(
                "{} trailing bytes after the last field",
                self.bytes.len() - self.pos
            )))
        }
    }
}

pub(crate) fn push_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn push_sparse(out: &mut Vec<u8>, v: &SparseVector) {
    out.extend_from_slice(&(v.nnz() as u64).to_le_bytes());
    for (i, x) in v.iter() {
        out.extend_from_slice(&(i as u32).to_le_bytes());
        push_f64(out, x);
    }
}

fn read_sparse(r: &mut Reader<'_>) -> Result<SparseVector, StorageError> {
    let nnz = r.len_prefix(12)?;
    let mut indices = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        indices.push(r.u32()?);
        values.push(r.f64()?);
    }
    SparseVector::try_from_sorted(indices, values)
        .map_err(|e| corrupt(format!("sparse vector layout: {e}")))
}

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_DOUBLE: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_DENSE: u8 = 4;
const TAG_SPARSE: u8 = 5;
const TAG_SEQUENCE: u8 = 6;

/// Append the binary encoding of one value.
pub(crate) fn push_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Int(v) => {
            out.push(TAG_INT);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Double(v) => {
            out.push(TAG_DOUBLE);
            push_f64(out, *v);
        }
        Value::Text(s) => {
            out.push(TAG_TEXT);
            push_string(out, s);
        }
        Value::DenseVec(v) => {
            out.push(TAG_DENSE);
            out.extend_from_slice(&(v.len() as u64).to_le_bytes());
            for &x in v.as_slice() {
                push_f64(out, x);
            }
        }
        Value::SparseVec(v) => {
            out.push(TAG_SPARSE);
            push_sparse(out, v);
        }
        Value::Sequence(seq) => {
            out.push(TAG_SEQUENCE);
            out.extend_from_slice(&(seq.len() as u64).to_le_bytes());
            for (features, label) in seq {
                push_sparse(out, features);
                out.extend_from_slice(&label.to_le_bytes());
            }
        }
    }
}

/// Decode one value (inverse of [`push_value`]).
pub(crate) fn read_value(r: &mut Reader<'_>) -> Result<Value, StorageError> {
    match r.u8()? {
        TAG_NULL => Ok(Value::Null),
        TAG_INT => Ok(Value::Int(r.i64()?)),
        TAG_DOUBLE => Ok(Value::Double(r.f64()?)),
        TAG_TEXT => Ok(Value::Text(r.string()?)),
        TAG_DENSE => {
            let len = r.len_prefix(8)?;
            let mut values = Vec::with_capacity(len);
            for _ in 0..len {
                values.push(r.f64()?);
            }
            Ok(Value::DenseVec(DenseVector::from(values)))
        }
        TAG_SPARSE => Ok(Value::SparseVec(read_sparse(r)?)),
        TAG_SEQUENCE => {
            let len = r.len_prefix(12)?;
            let mut seq = Vec::with_capacity(len);
            for _ in 0..len {
                let features = read_sparse(r)?;
                let label = r.u32()?;
                seq.push((features, label));
            }
            Ok(Value::Sequence(seq))
        }
        tag => Err(corrupt(format!("unknown value tag {tag}"))),
    }
}

fn dtype_tag(dtype: DataType) -> u8 {
    match dtype {
        DataType::Int => 0,
        DataType::Double => 1,
        DataType::Text => 2,
        DataType::DenseVec => 3,
        DataType::SparseVec => 4,
        DataType::Sequence => 5,
    }
}

fn dtype_from_tag(tag: u8) -> Result<DataType, StorageError> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Double,
        2 => DataType::Text,
        3 => DataType::DenseVec,
        4 => DataType::SparseVec,
        5 => DataType::Sequence,
        other => return Err(corrupt(format!("unknown data-type tag {other}"))),
    })
}

/// Append the binary encoding of a schema.
pub(crate) fn push_schema(out: &mut Vec<u8>, schema: &Schema) {
    out.extend_from_slice(&(schema.arity() as u64).to_le_bytes());
    for column in schema.columns() {
        push_string(out, &column.name);
        out.push(dtype_tag(column.dtype));
        out.push(column.nullable as u8);
    }
}

/// Decode a schema (inverse of [`push_schema`]).
pub(crate) fn read_schema(r: &mut Reader<'_>) -> Result<Schema, StorageError> {
    let arity = r.len_prefix(10)?;
    let mut columns = Vec::with_capacity(arity);
    for _ in 0..arity {
        let name = r.string()?;
        let dtype = dtype_from_tag(r.u8()?)?;
        let nullable = match r.u8()? {
            0 => false,
            1 => true,
            other => return Err(corrupt(format!("bad nullability byte {other}"))),
        };
        columns.push(if nullable {
            Column::nullable(name, dtype)
        } else {
            Column::new(name, dtype)
        });
    }
    Schema::new(columns)
}

/// Append the binary encoding of a row of values.
pub(crate) fn push_row(out: &mut Vec<u8>, row: &[Value]) {
    out.extend_from_slice(&(row.len() as u64).to_le_bytes());
    for value in row {
        push_value(out, value);
    }
}

/// Decode a row of values (inverse of [`push_row`]).
pub(crate) fn read_row(r: &mut Reader<'_>) -> Result<Vec<Value>, StorageError> {
    let arity = r.len_prefix(1)?;
    let mut row = Vec::with_capacity(arity);
    for _ in 0..arity {
        row.push(read_value(r)?);
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_value(value: Value) {
        let mut bytes = Vec::new();
        push_value(&mut bytes, &value);
        let mut r = Reader::new(&bytes);
        let back = read_value(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn all_value_variants_roundtrip() {
        roundtrip_value(Value::Null);
        roundtrip_value(Value::Int(-42));
        roundtrip_value(Value::Double(std::f64::consts::PI));
        roundtrip_value(Value::Text("héllo wörld".into()));
        roundtrip_value(Value::from(vec![1.0, -2.5, f64::MIN_POSITIVE]));
        roundtrip_value(Value::SparseVec(SparseVector::from_pairs(vec![
            (3, 1.5),
            (17, -0.25),
        ])));
        roundtrip_value(Value::Sequence(vec![
            (SparseVector::from_pairs(vec![(0, 1.0)]), 2),
            (SparseVector::new(), 0),
        ]));
    }

    #[test]
    fn nan_doubles_roundtrip_bitwise() {
        let mut bytes = Vec::new();
        push_value(&mut bytes, &Value::Double(f64::NAN));
        let mut r = Reader::new(&bytes);
        match read_value(&mut r).unwrap() {
            Value::Double(v) => assert_eq!(v.to_bits(), f64::NAN.to_bits()),
            other => panic!("expected Double, got {other:?}"),
        }
    }

    #[test]
    fn schema_roundtrips() {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::nullable("vec", DataType::DenseVec),
            Column::new("seq", DataType::Sequence),
        ])
        .unwrap();
        let mut bytes = Vec::new();
        push_schema(&mut bytes, &schema);
        let mut r = Reader::new(&bytes);
        let back = read_schema(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, schema);
    }

    #[test]
    fn rows_roundtrip() {
        let row = vec![Value::Int(7), Value::Null, Value::Text("x".into())];
        let mut bytes = Vec::new();
        push_row(&mut bytes, &row);
        let mut r = Reader::new(&bytes);
        assert_eq!(read_row(&mut r).unwrap(), row);
    }

    #[test]
    fn corrupt_inputs_error_instead_of_allocating() {
        // A length prefix far larger than the input must be rejected before
        // any allocation happens.
        let mut bytes = Vec::new();
        bytes.push(TAG_DENSE);
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_value(&mut Reader::new(&bytes)).is_err());

        // Unknown tags are corruption.
        assert!(read_value(&mut Reader::new(&[99])).is_err());

        // Truncated payloads are corruption.
        let mut ok = Vec::new();
        push_value(&mut ok, &Value::Text("hello".into()));
        assert!(read_value(&mut Reader::new(&ok[..ok.len() - 1])).is_err());
    }
}
