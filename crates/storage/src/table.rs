//! Paged row-store tables.
//!
//! Data is stored in fixed-capacity pages in *insertion order*; that order is
//! the "clustered order" the paper warns about (e.g. all positive examples
//! before all negative ones). Scans either follow storage order or follow an
//! explicit row permutation produced by [`crate::scan::ScanOrder`], which is
//! our stand-in for `ORDER BY RANDOM()`.

use crate::error::StorageError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// Number of tuples per page. Small enough that multi-page behaviour is
/// exercised by unit tests, large enough to amortize the per-page overhead.
pub const PAGE_CAPACITY: usize = 256;

/// A page holding up to [`PAGE_CAPACITY`] tuples.
#[derive(Debug, Clone, Default)]
struct Page {
    tuples: Vec<Tuple>,
}

impl Page {
    fn with_capacity() -> Self {
        Page {
            tuples: Vec::with_capacity(PAGE_CAPACITY),
        }
    }

    fn is_full(&self) -> bool {
        self.tuples.len() >= PAGE_CAPACITY
    }
}

/// A heap table: a schema plus pages of tuples in insertion order.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    pages: Vec<Page>,
    row_count: usize,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            pages: Vec::new(),
            row_count: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.row_count
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.row_count == 0
    }

    /// Number of pages currently allocated.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Validate and append a row, returning its row id (position in storage
    /// order).
    pub fn insert(&mut self, values: Vec<Value>) -> Result<usize, StorageError> {
        self.schema.validate(&values)?;
        if self.pages.last().is_none_or(Page::is_full) {
            self.pages.push(Page::with_capacity());
        }
        self.pages
            .last_mut()
            .expect("a page was just ensured")
            .tuples
            .push(Tuple::new(values));
        let id = self.row_count;
        self.row_count += 1;
        Ok(id)
    }

    /// Append a batch of rows; stops at the first invalid row.
    pub fn insert_all(
        &mut self,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<usize, StorageError> {
        let mut inserted = 0;
        for row in rows {
            self.insert(row)?;
            inserted += 1;
        }
        Ok(inserted)
    }

    /// Fetch the tuple at `row` (storage order).
    pub fn get(&self, row: usize) -> Result<&Tuple, StorageError> {
        if row >= self.row_count {
            return Err(StorageError::RowOutOfRange {
                row,
                len: self.row_count,
            });
        }
        let page = row / PAGE_CAPACITY;
        let slot = row % PAGE_CAPACITY;
        Ok(&self.pages[page].tuples[slot])
    }

    /// Iterate over tuples in storage (clustered) order.
    pub fn scan(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.pages.iter().flat_map(|p| p.tuples.iter())
    }

    /// Iterate over tuples following an explicit row permutation. Invalid
    /// row ids are skipped, so a stale permutation degrades gracefully.
    pub fn scan_permuted<'a>(&'a self, order: &'a [usize]) -> impl Iterator<Item = &'a Tuple> + 'a {
        order.iter().filter_map(move |&row| self.get(row).ok())
    }

    /// Iterate over a contiguous range of rows `[start, end)` in storage
    /// order; used for shared-nothing segment scans.
    pub fn scan_range(&self, start: usize, end: usize) -> impl Iterator<Item = &Tuple> + '_ {
        let end = end.min(self.row_count);
        let start = start.min(end);
        (start..end).map(move |row| self.get(row).expect("row within validated range"))
    }

    /// Total approximate size of the stored tuples in bytes (Table 1 stats).
    pub fn approx_bytes(&self) -> usize {
        self.scan().map(Tuple::approx_bytes).sum()
    }

    /// Resolve a column name to its ordinal position.
    pub fn column_index(&self, name: &str) -> Result<usize, StorageError> {
        self.schema.index_of(name)
    }

    /// Remove all rows, keeping the schema.
    pub fn truncate(&mut self) {
        self.pages.clear();
        self.row_count = 0;
    }
}

impl crate::scan::TupleScan for Table {
    fn tuple_count(&self) -> usize {
        self.row_count
    }

    fn scan_tuples_while(&self, f: &mut dyn FnMut(&Tuple) -> bool) {
        for tuple in self.scan() {
            if !f(tuple) {
                return;
            }
        }
    }

    fn scan_tuples_permuted(&self, order: &[usize], f: &mut dyn FnMut(&Tuple)) {
        for tuple in self.scan_permuted(order) {
            f(tuple);
        }
    }

    fn scan_tuples_range(&self, start: usize, end: usize, f: &mut dyn FnMut(&Tuple)) {
        for tuple in self.scan_range(start, end) {
            f(tuple);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        Table::new("t", schema)
    }

    #[test]
    fn insert_and_get() {
        let mut t = table();
        let id0 = t.insert(vec![Value::Int(0), Value::Double(1.0)]).unwrap();
        let id1 = t.insert(vec![Value::Int(1), Value::Double(-1.0)]).unwrap();
        assert_eq!((id0, id1), (0, 1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1).unwrap().get_double(1), Some(-1.0));
        assert!(matches!(t.get(2), Err(StorageError::RowOutOfRange { .. })));
    }

    #[test]
    fn insert_validates_schema() {
        let mut t = table();
        assert!(t.insert(vec![Value::Int(0)]).is_err());
        assert!(t
            .insert(vec![Value::from("x"), Value::Double(0.0)])
            .is_err());
        assert!(t.is_empty());
    }

    #[test]
    fn pages_roll_over() {
        let mut t = table();
        let n = PAGE_CAPACITY * 2 + 10;
        for i in 0..n {
            t.insert(vec![Value::Int(i as i64), Value::Double(i as f64)])
                .unwrap();
        }
        assert_eq!(t.len(), n);
        assert_eq!(t.page_count(), 3);
        // Storage order is insertion order across pages.
        let ids: Vec<i64> = t.scan().map(|tup| tup.get_int(0).unwrap()).collect();
        assert_eq!(ids.len(), n);
        assert!(ids.windows(2).all(|w| w[1] == w[0] + 1));
        assert_eq!(
            t.get(PAGE_CAPACITY).unwrap().get_int(0),
            Some(PAGE_CAPACITY as i64)
        );
    }

    #[test]
    fn scan_permuted_follows_order_and_skips_invalid() {
        let mut t = table();
        for i in 0..5 {
            t.insert(vec![Value::Int(i), Value::Double(0.0)]).unwrap();
        }
        let order = vec![4, 2, 0, 99];
        let ids: Vec<i64> = t
            .scan_permuted(&order)
            .map(|tup| tup.get_int(0).unwrap())
            .collect();
        assert_eq!(ids, vec![4, 2, 0]);
    }

    #[test]
    fn scan_range_clamps() {
        let mut t = table();
        for i in 0..10 {
            t.insert(vec![Value::Int(i), Value::Double(0.0)]).unwrap();
        }
        let ids: Vec<i64> = t
            .scan_range(7, 100)
            .map(|tup| tup.get_int(0).unwrap())
            .collect();
        assert_eq!(ids, vec![7, 8, 9]);
        assert_eq!(t.scan_range(5, 3).count(), 0);
    }

    #[test]
    fn insert_all_counts() {
        let mut t = table();
        let rows = (0..4).map(|i| vec![Value::Int(i), Value::Double(0.0)]);
        assert_eq!(t.insert_all(rows).unwrap(), 4);
    }

    #[test]
    fn truncate_resets() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::Double(1.0)]).unwrap();
        t.truncate();
        assert!(t.is_empty());
        assert_eq!(t.page_count(), 0);
        assert_eq!(t.approx_bytes(), 0);
    }

    #[test]
    fn column_index_delegates_to_schema() {
        let t = table();
        assert_eq!(t.column_index("label").unwrap(), 1);
        assert!(t.column_index("missing").is_err());
    }
}
