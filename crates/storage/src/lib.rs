//! A minimal in-process RDBMS substrate for the Bismarck reproduction.
//!
//! The paper implements Bismarck on top of PostgreSQL and two commercial
//! engines, relying on only three engine facilities:
//!
//! 1. **tuple-at-a-time scans** of a stored table, in whatever order the data
//!    happens to be clustered on disk (plus `ORDER BY RANDOM()` to shuffle);
//! 2. **user-defined aggregates** — `initialize` / `transition` / `terminate`
//!    and, for shared-nothing parallelism, `merge`;
//! 3. optional **shared memory** managed in user space so a model can be
//!    updated concurrently by several workers.
//!
//! This crate provides exactly those facilities as a library: a catalog of
//! paged row-store tables, scan iterators honouring storage order or a random
//! permutation, table segmentation for shared-nothing execution, reservoir
//! sampling, a strawman NULL aggregate used to measure framework overhead,
//! and an atomically-updatable shared model region.
//!
//! It is intentionally *not* a SQL engine: Bismarck's contribution is the
//! analytics architecture above these facilities, so we keep the substrate
//! small, deterministic and easy to test.
//!
//! Since PR 8 the catalog can also be **durable**: [`Database::open`] binds
//! it to a directory where every mutation is write-ahead logged
//! ([`wal`]) and periodically compacted into an atomic snapshot
//! ([`durable`] holds the temp-file → fsync → rename → fsync-dir protocol),
//! so tables — including persisted model tables — survive process restarts.

#![warn(missing_docs)]

pub mod catalog;
pub mod checkpoint;
pub mod chunk;
mod codec;
pub mod columnar;
pub mod csv;
pub mod durable;
pub mod error;
pub mod null_agg;
mod pager;
pub mod reservoir;
pub mod scan;
pub mod schema;
pub mod shared;
mod snapshot;
pub mod table;
pub mod tuple;
pub mod value;
pub mod wal;

pub use crate::catalog::{Database, RecoveryReport, SNAPSHOT_FILE, WAL_FILE};
pub use crate::checkpoint::{read_checkpoint, write_checkpoint, CheckpointError};
pub use crate::chunk::{ColumnChunk, ValidityBitmap};
pub use crate::columnar::{ColumnarTable, Segment, DEFAULT_CHUNK_CAPACITY};
pub use crate::error::StorageError;
pub use crate::null_agg::NullAggregate;
pub use crate::pager::PagerStats;
pub use crate::reservoir::ReservoirSampler;
pub use crate::scan::{segment_ranges, ScanOrder, TupleScan};
pub use crate::schema::{Column, DataType, Schema};
pub use crate::shared::SharedModel;
pub use crate::table::Table;
pub use crate::tuple::Tuple;
pub use crate::value::Value;

/// Convenience result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
