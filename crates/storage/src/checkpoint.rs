//! Versioned, checksummed checkpoint container.
//!
//! Long-running in-RDBMS analytics must survive faults mid-flight — the
//! durability stance of the engines Bismarck targets. This module provides
//! the *container* half of checkpointing: an opaque payload wrapped in a
//! fixed header (magic, format version, payload length) and trailed by a
//! checksum, written through [`crate::durable::atomic_write`] (temp file →
//! fsync → rename → fsync parent directory) so a crash at any instant —
//! including a power loss that would otherwise undo the rename — can never
//! leave a torn file under the checkpoint path. The trainer-level payload
//! layout (model vector, epoch counter, step-size and scan-order state)
//! lives in `bismarck-core`; this layer only guarantees that what is read
//! back is exactly what was written.
//!
//! On-disk layout, all integers little-endian:
//!
//! ```text
//! [0..4)    magic  b"BMCK"
//! [4..8)    format version (u32), currently 1
//! [8..16)   payload length in bytes (u64)
//! [16..16+n) payload
//! [..+8)    FNV-1a 64-bit checksum of the payload (u64)
//! ```

use std::fs;
use std::path::Path;

/// Magic bytes identifying a Bismarck checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"BMCK";

/// Current container format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Why a checkpoint could not be written or read back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// An underlying filesystem operation failed (message includes the path).
    Io(String),
    /// The file does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The file is shorter than its header claims.
    Truncated,
    /// The payload checksum does not match — the file is corrupt.
    ChecksumMismatch,
    /// The payload decoded, but its contents are internally inconsistent
    /// (e.g. a model of the wrong dimension for the task).
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            CheckpointError::Truncated => write!(f, "checkpoint file is truncated"),
            CheckpointError::ChecksumMismatch => {
                write!(f, "checkpoint checksum mismatch (file is corrupt)")
            }
            CheckpointError::Corrupt(msg) => write!(f, "checkpoint is corrupt: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a 64-bit hash — small, dependency-free, and plenty to detect the
/// torn writes and bit rot a checkpoint checksum exists for (this is an
/// integrity check, not a cryptographic one).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Atomically and durably write `payload` as a checkpoint at `path`.
///
/// Routed through [`crate::durable::atomic_write`]: temp file in the same
/// directory → fsync file → rename over `path` → fsync parent directory.
/// Readers either see the previous complete checkpoint or the new complete
/// one — never a partial file, even across a crash or power loss (the
/// parent-directory fsync is what makes the rename itself durable).
pub fn write_checkpoint(path: &Path, payload: &[u8]) -> Result<(), CheckpointError> {
    let mut bytes = Vec::with_capacity(24 + payload.len());
    bytes.extend_from_slice(&CHECKPOINT_MAGIC);
    bytes.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());

    crate::durable::atomic_write(path, &bytes)
        .map_err(|e| CheckpointError::Io(format!("write {}: {e}", path.display())))
}

/// Read and validate a checkpoint, returning its payload bytes.
pub fn read_checkpoint(path: &Path) -> Result<Vec<u8>, CheckpointError> {
    let bytes =
        fs::read(path).map_err(|e| CheckpointError::Io(format!("read {}: {e}", path.display())))?;
    if bytes.len() < 16 {
        return Err(if bytes.starts_with(&CHECKPOINT_MAGIC) || bytes.len() < 4 {
            CheckpointError::Truncated
        } else {
            CheckpointError::BadMagic
        });
    }
    if bytes[0..4] != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice"));
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice")) as usize;
    let Some(expected_total) = len.checked_add(24) else {
        return Err(CheckpointError::Truncated);
    };
    if bytes.len() < expected_total {
        return Err(CheckpointError::Truncated);
    }
    let payload = &bytes[16..16 + len];
    let stored = u64::from_le_bytes(
        bytes[16 + len..16 + len + 8]
            .try_into()
            .expect("8-byte slice"),
    );
    if fnv1a64(payload) != stored {
        return Err(CheckpointError::ChecksumMismatch);
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bismarck-ckpt-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_payload() {
        let path = temp_path("roundtrip");
        let payload = b"hello checkpoint".to_vec();
        write_checkpoint(&path, &payload).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), payload);
        // Overwrite with a different payload: the rename replaces atomically.
        write_checkpoint(&path, b"second").unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), b"second");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_payload_round_trips() {
        let path = temp_path("empty");
        write_checkpoint(&path, &[]).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), Vec::<u8>::new());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn detects_bad_magic() {
        let path = temp_path("magic");
        fs::write(&path, b"NOPExxxxxxxxxxxxxxxxxxxxxxxx").unwrap();
        assert_eq!(read_checkpoint(&path), Err(CheckpointError::BadMagic));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn detects_unsupported_version() {
        let path = temp_path("version");
        let payload = b"data";
        write_checkpoint(&path, payload).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert_eq!(
            read_checkpoint(&path),
            Err(CheckpointError::UnsupportedVersion(99))
        );
        fs::remove_file(&path).ok();
    }

    #[test]
    fn detects_flipped_payload_bit() {
        let path = temp_path("bitflip");
        write_checkpoint(&path, b"sensitive model bytes").unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[20] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(
            read_checkpoint(&path),
            Err(CheckpointError::ChecksumMismatch)
        );
        fs::remove_file(&path).ok();
    }

    #[test]
    fn detects_truncation() {
        let path = temp_path("truncated");
        write_checkpoint(&path, b"some payload that will be cut").unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        assert_eq!(read_checkpoint(&path), Err(CheckpointError::Truncated));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = temp_path("missing-never-created");
        match read_checkpoint(&path) {
            Err(CheckpointError::Io(msg)) => assert!(msg.contains("read")),
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
