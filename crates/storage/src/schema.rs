//! Table schemas: named, typed columns.

use crate::error::StorageError;
use crate::value::Value;

/// The column types supported by the substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Double,
    /// UTF-8 text.
    Text,
    /// Dense array of doubles.
    DenseVec,
    /// Sparse array of doubles.
    SparseVec,
    /// Sequence of (sparse features, label) pairs for structured prediction.
    Sequence,
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Double => "DOUBLE",
            DataType::Text => "TEXT",
            DataType::DenseVec => "DENSE_VEC",
            DataType::SparseVec => "SPARSE_VEC",
            DataType::Sequence => "SEQUENCE",
        };
        f.write_str(s)
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name; matched case-sensitively.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Whether NULL values are accepted.
    pub nullable: bool,
}

impl Column {
    /// A non-nullable column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }
}

/// An ordered list of columns describing a table's tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from columns. Duplicate column names are rejected.
    pub fn new(columns: Vec<Column>) -> Result<Self, StorageError> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|other| other.name == c.name) {
                return Err(StorageError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Schema { columns })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// All columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at ordinal position `i`.
    pub fn column(&self, i: usize) -> Option<&Column> {
        self.columns.get(i)
    }

    /// Ordinal position of the column named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize, StorageError> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| StorageError::UnknownColumn(name.to_string()))
    }

    /// Validate a row of values against this schema: arity, nullability and
    /// per-column type (integers are accepted where doubles are declared).
    pub fn validate(&self, values: &[Value]) -> Result<(), StorageError> {
        if values.len() != self.columns.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.columns.len(),
                actual: values.len(),
            });
        }
        for (col, value) in self.columns.iter().zip(values.iter()) {
            match value.data_type() {
                None => {
                    if !col.nullable {
                        return Err(StorageError::NullViolation(col.name.clone()));
                    }
                }
                Some(dt) => {
                    let compatible =
                        dt == col.dtype || (col.dtype == DataType::Double && dt == DataType::Int);
                    if !compatible {
                        return Err(StorageError::TypeMismatch {
                            column: col.name.clone(),
                            expected: col.dtype,
                            actual: dt,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("vec", DataType::DenseVec),
            Column::nullable("label", DataType::Double),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("a", DataType::Double),
        ])
        .unwrap_err();
        assert!(matches!(err, StorageError::DuplicateColumn(_)));
    }

    #[test]
    fn index_of_finds_columns() {
        let s = example_schema();
        assert_eq!(s.index_of("vec").unwrap(), 1);
        assert!(s.index_of("missing").is_err());
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column(0).unwrap().name, "id");
        assert!(s.column(9).is_none());
    }

    #[test]
    fn validate_accepts_good_rows() {
        let s = example_schema();
        let row = vec![Value::Int(1), Value::from(vec![1.0]), Value::Double(1.0)];
        assert!(s.validate(&row).is_ok());
        // integer where double declared is accepted
        let row2 = vec![Value::Int(1), Value::from(vec![1.0]), Value::Int(1)];
        assert!(s.validate(&row2).is_ok());
        // nullable column accepts NULL
        let row3 = vec![Value::Int(1), Value::from(vec![1.0]), Value::Null];
        assert!(s.validate(&row3).is_ok());
    }

    #[test]
    fn validate_rejects_bad_rows() {
        let s = example_schema();
        assert!(matches!(
            s.validate(&[Value::Int(1)]),
            Err(StorageError::ArityMismatch { .. })
        ));
        let bad_type = vec![Value::from("x"), Value::from(vec![1.0]), Value::Null];
        assert!(matches!(
            s.validate(&bad_type),
            Err(StorageError::TypeMismatch { .. })
        ));
        let null_violation = vec![Value::Null, Value::from(vec![1.0]), Value::Null];
        assert!(matches!(
            s.validate(&null_violation),
            Err(StorageError::NullViolation(_))
        ));
    }

    #[test]
    fn data_type_display() {
        assert_eq!(DataType::DenseVec.to_string(), "DENSE_VEC");
        assert_eq!(DataType::Sequence.to_string(), "SEQUENCE");
    }
}
