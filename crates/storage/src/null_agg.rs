//! The strawman "NULL aggregate" of Section 4.1.
//!
//! To measure the runtime overhead that Bismarck's gradient computation adds
//! on top of the engine's own scan + aggregation machinery, the paper
//! compares every task against an aggregate that "sees the same data, but
//! computes no values". Tables 2 and 3 report task runtime relative to this
//! NULL aggregate. We reproduce it as an aggregate that touches each tuple
//! (forcing the scan and accessor work) but performs no model arithmetic.

use crate::scan::TupleScan;
use crate::tuple::Tuple;

/// A no-op aggregate used as the overhead baseline.
#[derive(Debug, Default, Clone)]
pub struct NullAggregate {
    tuples_seen: usize,
    bytes_seen: usize,
}

impl NullAggregate {
    /// Fresh aggregate state.
    pub fn new() -> Self {
        NullAggregate::default()
    }

    /// Transition: observe one tuple without computing anything.
    ///
    /// "Sees the same data" means the engine still pays the per-tuple cost of
    /// materializing the aggregate's arguments even though it ignores them.
    /// We model that by touching every column value through the same
    /// zero-copy accessors the real tasks use — borrowing array payloads,
    /// not cloning them, exactly like the kernel-based gradient path — and
    /// discarding the result. Without this, the baseline would measure a
    /// bare pointer walk and wildly overstate the relative cost of the
    /// gradient arithmetic.
    #[inline]
    pub fn transition(&mut self, tuple: &Tuple) {
        self.tuples_seen += 1;
        let mut bytes = 0usize;
        for value in tuple.values() {
            if let Some(fv) = value.feature_view() {
                bytes += fv.nnz() * 8;
            } else {
                bytes += value.approx_bytes();
            }
        }
        self.bytes_seen += bytes;
    }

    /// Terminate: report how many tuples were seen.
    pub fn terminate(&self) -> usize {
        self.tuples_seen
    }

    /// Merge two independently computed NULL aggregates (the UDA `merge`).
    pub fn merge(&mut self, other: &NullAggregate) {
        self.tuples_seen += other.tuples_seen;
        self.bytes_seen += other.bytes_seen;
    }

    /// Run one full pass over a tuple source (row-store or columnar) and
    /// return the tuple count. This is the "single-iteration runtime of the
    /// NULL aggregate" measured in Tables 2 and 3.
    pub fn run_epoch<S: TupleScan + ?Sized>(data: &S) -> usize {
        let mut agg = NullAggregate::new();
        data.scan_tuples(&mut |tuple| agg.transition(tuple));
        agg.terminate()
    }

    /// Run one pass following an explicit row permutation.
    pub fn run_epoch_permuted<S: TupleScan + ?Sized>(data: &S, order: &[usize]) -> usize {
        let mut agg = NullAggregate::new();
        data.scan_tuples_permuted(order, &mut |tuple| agg.transition(tuple));
        agg.terminate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType, Schema};
    use crate::table::Table;
    use crate::value::Value;

    fn table(n: usize) -> Table {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        for i in 0..n {
            t.insert(vec![Value::Int(i as i64), Value::Double(1.0)])
                .unwrap();
        }
        t
    }

    #[test]
    fn counts_all_tuples() {
        let t = table(300);
        assert_eq!(NullAggregate::run_epoch(&t), 300);
    }

    #[test]
    fn permuted_epoch_sees_whole_permutation() {
        let t = table(10);
        let order: Vec<usize> = (0..10).rev().collect();
        assert_eq!(NullAggregate::run_epoch_permuted(&t, &order), 10);
    }

    #[test]
    fn merge_adds_counts() {
        let t = table(5);
        let mut a = NullAggregate::new();
        let mut b = NullAggregate::new();
        for tuple in t.scan().take(2) {
            a.transition(tuple);
        }
        for tuple in t.scan().skip(2) {
            b.transition(tuple);
        }
        a.merge(&b);
        assert_eq!(a.terminate(), 5);
    }
}
