//! Benchmark harness regenerating every table and figure of the Bismarck
//! evaluation (Section 4).
//!
//! The [`experiments`] module contains one entry point per paper artefact;
//! each builds its workload with `bismarck-datagen`, runs the relevant
//! Bismarck configuration (and baseline, where the paper compares against
//! one) and returns a printable result whose rows mirror the paper's table
//! or figure series. The `reproduce` binary drives them from the command
//! line; the Criterion benches under `benches/` measure the timing-sensitive
//! kernels with statistical rigor.
//!
//! Absolute numbers will differ from the paper (different hardware, a
//! library substrate instead of three commercial RDBMSes, synthetic data) —
//! the *shape* of each result is what is reproduced. See EXPERIMENTS.md.

pub mod experiments;

pub use crate::experiments::scale::Scale;
