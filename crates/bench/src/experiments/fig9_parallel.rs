//! Figure 9 — parallelizing IGD in an RDBMS.
//!
//! (A) Objective over epochs for the pure-UDA (model averaging) scheme and
//! the three shared-memory disciplines (Lock, AIG, NoLock) on the CRF task —
//! model averaging converges more slowly, the shared-memory schemes track
//! each other.
//!
//! (B) Speed-up of the per-epoch gradient computation as worker count grows.
//! NOTE: the machine that produced the recorded results has a single
//! physical core, so measured speed-ups stay near 1x; the harness still
//! exercises the real multi-threaded code paths and reports whatever the
//! hardware delivers (see EXPERIMENTS.md).

use std::time::Duration;

use bismarck_core::tasks::CrfTask;
use bismarck_core::{
    ParallelStrategy, ParallelTrainer, StepSizeSchedule, TrainerConfig, UpdateDiscipline,
};
use bismarck_storage::{ScanOrder, Table};
use bismarck_uda::ConvergenceTest;

use super::datasets;
use super::render_table;
use super::scale::Scale;

/// Convergence curve of one parallel scheme (Figure 9(A)).
#[derive(Debug, Clone)]
pub struct SchemeCurve {
    /// Scheme label (`"PureUDA"`, `"Lock"`, `"AIG"`, `"NoLock"`).
    pub label: &'static str,
    /// Objective after each epoch.
    pub losses: Vec<f64>,
}

/// Speed-up measurement of one scheme at one worker count (Figure 9(B)).
#[derive(Debug, Clone)]
pub struct SpeedupPoint {
    /// Scheme label.
    pub label: &'static str,
    /// Number of workers.
    pub workers: usize,
    /// Per-epoch gradient time.
    pub gradient_time: Duration,
}

/// Result of the Figure 9 experiment.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// Figure 9(A) curves.
    pub curves: Vec<SchemeCurve>,
    /// Figure 9(B) measurements (grouped by scheme, ascending worker count).
    pub speedups: Vec<SpeedupPoint>,
    /// Worker count used for the convergence comparison.
    pub convergence_workers: usize,
}

fn strategies(workers: usize) -> Vec<(&'static str, ParallelStrategy)> {
    vec![
        ("PureUDA", ParallelStrategy::PureUda { segments: workers }),
        (
            "Lock",
            ParallelStrategy::SharedMemory {
                workers,
                discipline: UpdateDiscipline::Lock,
            },
        ),
        (
            "AIG",
            ParallelStrategy::SharedMemory {
                workers,
                discipline: UpdateDiscipline::Aig,
            },
        ),
        (
            "NoLock",
            ParallelStrategy::SharedMemory {
                workers,
                discipline: UpdateDiscipline::NoLock,
            },
        ),
    ]
}

fn crf_config(epochs: usize) -> TrainerConfig {
    TrainerConfig::default()
        .with_scan_order(ScanOrder::ShuffleOnce { seed: 17 })
        .with_step_size(StepSizeSchedule::Constant(0.1))
        .with_convergence(ConvergenceTest::FixedEpochs(epochs))
}

fn run_scheme(
    task: &CrfTask,
    table: &Table,
    strategy: ParallelStrategy,
    epochs: usize,
) -> (Vec<f64>, Vec<Duration>) {
    let trainer = ParallelTrainer::new(task, crf_config(epochs), strategy);
    let (trained, stats) = trainer.train(table);
    (
        trained.history.losses(),
        stats.iter().map(|s| s.gradient_duration).collect(),
    )
}

/// Run the Figure 9 experiment.
pub fn run(scale: Scale) -> Fig9Result {
    let table = datasets::conll(scale);
    let (num_features, num_labels) = datasets::conll_shape(scale);
    let task = CrfTask::new(bismarck_datagen::SEQUENCE_COL, num_features, num_labels);
    let convergence_workers = 8;
    let epochs = scale.scaled(6, 20);

    // (A) convergence comparison at a fixed worker count.
    let mut curves = Vec::new();
    for (label, strategy) in strategies(convergence_workers) {
        let (losses, _) = run_scheme(&task, &table, strategy, epochs);
        curves.push(SchemeCurve { label, losses });
    }

    // (B) per-epoch gradient time vs worker count (single epoch per point).
    let mut speedups = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        for (label, strategy) in strategies(workers) {
            let (_, times) = run_scheme(&task, &table, strategy, 1);
            let gradient_time = times.first().copied().unwrap_or(Duration::ZERO);
            speedups.push(SpeedupPoint {
                label,
                workers,
                gradient_time,
            });
        }
    }

    Fig9Result {
        curves,
        speedups,
        convergence_workers,
    }
}

impl Fig9Result {
    /// Speed-up of a scheme at a worker count relative to its single-worker
    /// measurement.
    pub fn speedup_of(&self, label: &str, workers: usize) -> Option<f64> {
        let base = self
            .speedups
            .iter()
            .find(|p| p.label == label && p.workers == 1)?
            .gradient_time
            .as_secs_f64();
        let at = self
            .speedups
            .iter()
            .find(|p| p.label == label && p.workers == workers)?
            .gradient_time
            .as_secs_f64();
        Some(base / at.max(1e-9))
    }
}

impl std::fmt::Display for Fig9Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 9(A) — objective over epochs (CRF, {} workers)",
            self.convergence_workers
        )?;
        let rows: Vec<Vec<String>> = self
            .curves
            .iter()
            .map(|c| {
                let mut cells = vec![c.label.to_string()];
                cells.extend(c.losses.iter().map(|l| format!("{l:.1}")));
                cells
            })
            .collect();
        let mut header: Vec<String> = vec!["Scheme".to_string()];
        header.extend(
            (1..=self.curves.first().map(|c| c.losses.len()).unwrap_or(0))
                .map(|e| format!("ep{e}")),
        );
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        writeln!(f, "{}", render_table(&header_refs, &rows))?;

        writeln!(
            f,
            "Figure 9(B) — per-epoch gradient time and speed-up vs 1 worker"
        )?;
        let mut rows = Vec::new();
        for p in &self.speedups {
            rows.push(vec![
                p.label.to_string(),
                p.workers.to_string(),
                super::secs(p.gradient_time),
                self.speedup_of(p.label, p.workers)
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        write!(
            f,
            "{}",
            render_table(&["Scheme", "Workers", "Gradient time", "Speed-up"], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemes_converge_and_shared_memory_beats_model_averaging() {
        let result = run(Scale::Small);
        assert_eq!(result.curves.len(), 4);
        let by_label = |label: &str| {
            result
                .curves
                .iter()
                .find(|c| c.label == label)
                .expect("curve present")
        };
        for curve in &result.curves {
            assert!(curve.losses.last().unwrap() < curve.losses.first().unwrap());
        }
        // The Figure 9(A) shape: model averaging (PureUDA) ends with a loss no
        // better than the NoLock shared-memory scheme.
        let pure = by_label("PureUDA").losses.last().copied().unwrap();
        let nolock = by_label("NoLock").losses.last().copied().unwrap();
        assert!(nolock <= pure * 1.05, "NoLock {nolock} vs PureUDA {pure}");
    }

    #[test]
    fn speedup_points_cover_all_worker_counts() {
        let result = run(Scale::Small);
        assert_eq!(result.speedups.len(), 4 * 4);
        for label in ["PureUDA", "Lock", "AIG", "NoLock"] {
            for workers in [1usize, 2, 4, 8] {
                let point = result
                    .speedups
                    .iter()
                    .find(|p| p.label == label && p.workers == workers)
                    .expect("point present");
                assert!(point.gradient_time > Duration::ZERO);
                // Speed-up is computable and positive (its magnitude depends
                // on the host's core count, so no stronger claim here).
                assert!(result.speedup_of(label, workers).unwrap() > 0.0);
            }
        }
    }

    #[test]
    fn display_shows_schemes_and_workers() {
        let result = run(Scale::Small);
        let text = result.to_string();
        for label in ["PureUDA", "Lock", "AIG", "NoLock"] {
            assert!(text.contains(label));
        }
        assert!(text.contains("Speed-up"));
    }
}
