//! Figure 7 — benchmark comparison against native analytics tools.
//!
//! (A) End-to-end runtime to convergence (0.1% relative tolerance) for LR,
//! SVM and LMF: Bismarck (shared-memory NoLock, shuffle-once) against the
//! per-task batch algorithms native tools use (IRLS, batch subgradient, ALS).
//! The paper reports "N/A" where a native tool does not support a task; we
//! mark the IRLS baseline N/A on the sparse dataset because a `d × d` Newton
//! solve is infeasible at DBLife's dimensionality — the same reason MADlib's
//! LR is absent from the sparse row of the original figure.
//!
//! (B) CRF convergence over time: Bismarck's IGD CRF against the full-batch
//! trainer standing in for CRF++ / Mallet.

use std::time::{Duration, Instant};

use bismarck_baselines::{
    als::als_train, batch_svm_train, crf_batch_train, irls_train, AlsConfig, BatchGradientConfig,
    CrfBatchConfig, IrlsConfig,
};
use bismarck_core::task::IgdTask;
use bismarck_core::tasks::{CrfTask, LmfTask, LogisticRegressionTask, SvmTask};
use bismarck_core::{
    ParallelStrategy, ParallelTrainer, StepSizeSchedule, TrainerConfig, UpdateDiscipline,
};
use bismarck_storage::{ScanOrder, Table};
use bismarck_uda::ConvergenceTest;

use super::datasets;
use super::render_table;
use super::scale::Scale;

/// One comparison row of Figure 7(A).
#[derive(Debug, Clone)]
pub struct BenchmarkRow {
    /// Dataset name.
    pub dataset: String,
    /// Task name.
    pub task: &'static str,
    /// Bismarck end-to-end runtime.
    pub bismarck_time: Duration,
    /// Bismarck final objective.
    pub bismarck_loss: f64,
    /// Baseline ("native tool") name.
    pub baseline: &'static str,
    /// Baseline runtime, `None` when the baseline does not support the task.
    pub baseline_time: Option<Duration>,
    /// Baseline final objective, `None` when not supported.
    pub baseline_loss: Option<f64>,
}

impl BenchmarkRow {
    /// Speed-up of Bismarck over the baseline (`None` when N/A).
    pub fn speedup(&self) -> Option<f64> {
        self.baseline_time
            .map(|b| b.as_secs_f64() / self.bismarck_time.as_secs_f64().max(1e-9))
    }
}

/// One point of the Figure 7(B) convergence-over-time series.
#[derive(Debug, Clone, Copy)]
pub struct ConvergencePoint {
    /// Seconds since the start of training.
    pub seconds: f64,
    /// Objective value (negative log-likelihood) at that time.
    pub loss: f64,
}

/// Result of the Figure 7 experiment.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Figure 7(A): per-task comparison rows.
    pub rows: Vec<BenchmarkRow>,
    /// Figure 7(B): Bismarck CRF loss over time.
    pub crf_bismarck: Vec<ConvergencePoint>,
    /// Figure 7(B): batch-CRF loss over time.
    pub crf_batch: Vec<ConvergencePoint>,
}

fn bismarck_config(epochs: usize) -> TrainerConfig {
    TrainerConfig::default()
        .with_scan_order(ScanOrder::ShuffleOnce { seed: 99 })
        .with_step_size(StepSizeSchedule::Diminishing { initial: 0.5 })
        .with_convergence(ConvergenceTest::paper_default(epochs))
}

fn train_bismarck<T: IgdTask>(
    task: &T,
    table: &Table,
    epochs: usize,
    workers: usize,
) -> (Duration, f64) {
    let trainer = ParallelTrainer::new(
        task,
        bismarck_config(epochs),
        ParallelStrategy::SharedMemory {
            workers,
            discipline: UpdateDiscipline::NoLock,
        },
    );
    let start = Instant::now();
    let (trained, _) = trainer.train(table);
    (start.elapsed(), trained.final_loss().unwrap_or(f64::NAN))
}

/// Run the Figure 7 experiment.
pub fn run(scale: Scale) -> Fig7Result {
    let workers = 2;
    let epochs = scale.scaled(15, 30);
    let fcol = bismarck_datagen::CLASSIFICATION_FEATURES_COL;
    let lcol = bismarck_datagen::CLASSIFICATION_LABEL_COL;

    let forest = datasets::forest(scale);
    let dblife = datasets::dblife(scale);
    let movielens = datasets::movielens(scale);
    let forest_dim = datasets::feature_dimension(&forest);
    let dblife_dim = datasets::feature_dimension(&dblife);
    let (ml_rows, ml_cols, _, ml_rank) = datasets::movielens_shape(scale);

    let mut rows = Vec::new();

    // --- Forest / LR: Bismarck vs IRLS (Newton) ------------------------------
    {
        let task = LogisticRegressionTask::new(fcol, lcol, forest_dim);
        let (btime, bloss) = train_bismarck(&task, &forest, epochs, workers);
        let start = Instant::now();
        let irls = irls_train(&forest, IrlsConfig::new(fcol, lcol, forest_dim));
        rows.push(BenchmarkRow {
            dataset: "forest".into(),
            task: "LR",
            bismarck_time: btime,
            bismarck_loss: bloss,
            baseline: "IRLS (Newton)",
            baseline_time: Some(start.elapsed()),
            baseline_loss: irls.losses.last().copied(),
        });
    }

    // --- Forest / SVM: Bismarck vs batch subgradient --------------------------
    {
        let task = SvmTask::new(fcol, lcol, forest_dim);
        let (btime, bloss) = train_bismarck(&task, &forest, epochs, workers);
        let start = Instant::now();
        let batch = batch_svm_train(
            &forest,
            BatchGradientConfig {
                iterations: scale.scaled(60, 150),
                step_size: 0.5,
                ..BatchGradientConfig::new(fcol, lcol, forest_dim)
            },
        );
        rows.push(BenchmarkRow {
            dataset: "forest".into(),
            task: "SVM",
            bismarck_time: btime,
            bismarck_loss: bloss,
            baseline: "Batch subgradient",
            baseline_time: Some(start.elapsed()),
            baseline_loss: batch.losses.last().copied(),
        });
    }

    // --- DBLife / LR: IRLS is N/A at this dimensionality ----------------------
    {
        let task = LogisticRegressionTask::new(fcol, lcol, dblife_dim);
        let (btime, bloss) = train_bismarck(&task, &dblife, epochs, workers);
        rows.push(BenchmarkRow {
            dataset: "dblife".into(),
            task: "LR",
            bismarck_time: btime,
            bismarck_loss: bloss,
            baseline: "IRLS (Newton)",
            baseline_time: None,
            baseline_loss: None,
        });
    }

    // --- DBLife / SVM: Bismarck vs batch subgradient ---------------------------
    {
        let task = SvmTask::new(fcol, lcol, dblife_dim);
        let (btime, bloss) = train_bismarck(&task, &dblife, epochs, workers);
        let start = Instant::now();
        let batch = batch_svm_train(
            &dblife,
            BatchGradientConfig {
                iterations: scale.scaled(60, 150),
                step_size: 0.5,
                ..BatchGradientConfig::new(fcol, lcol, dblife_dim)
            },
        );
        rows.push(BenchmarkRow {
            dataset: "dblife".into(),
            task: "SVM",
            bismarck_time: btime,
            bismarck_loss: bloss,
            baseline: "Batch subgradient",
            baseline_time: Some(start.elapsed()),
            baseline_loss: batch.losses.last().copied(),
        });
    }

    // --- MovieLens / LMF: Bismarck vs ALS --------------------------------------
    {
        let task = LmfTask::new(
            bismarck_datagen::RATINGS_ROW_COL,
            bismarck_datagen::RATINGS_COL_COL,
            bismarck_datagen::RATINGS_VALUE_COL,
            ml_rows,
            ml_cols,
            ml_rank,
        );
        // LMF needs a gentler step size than the linear models.
        let config = bismarck_config(epochs).with_step_size(StepSizeSchedule::Constant(0.02));
        let trainer = ParallelTrainer::new(
            &task,
            config,
            ParallelStrategy::SharedMemory {
                workers,
                discipline: UpdateDiscipline::NoLock,
            },
        );
        let start = Instant::now();
        let (trained, _) = trainer.train(&movielens);
        let btime = start.elapsed();
        let start = Instant::now();
        let als = als_train(
            &movielens,
            AlsConfig {
                sweeps: scale.scaled(8, 15),
                ..AlsConfig::new(ml_rows, ml_cols, ml_rank)
            },
        );
        rows.push(BenchmarkRow {
            dataset: "movielens".into(),
            task: "LMF",
            bismarck_time: btime,
            bismarck_loss: trained.final_loss().unwrap_or(f64::NAN),
            baseline: "ALS",
            baseline_time: Some(start.elapsed()),
            baseline_loss: als.losses.last().copied(),
        });
    }

    // --- Figure 7(B): CRF convergence over time --------------------------------
    let conll = datasets::conll(scale);
    let (num_features, num_labels) = datasets::conll_shape(scale);
    let crf_epochs = scale.scaled(8, 20);
    let crf_task = CrfTask::new(bismarck_datagen::SEQUENCE_COL, num_features, num_labels);

    // Bismarck IGD: time each epoch cumulatively.
    let mut crf_bismarck = Vec::new();
    {
        let trainer = ParallelTrainer::new(
            &crf_task,
            TrainerConfig::default()
                .with_scan_order(ScanOrder::ShuffleOnce { seed: 3 })
                .with_step_size(StepSizeSchedule::Constant(0.1))
                .with_convergence(ConvergenceTest::FixedEpochs(crf_epochs)),
            ParallelStrategy::SharedMemory {
                workers,
                discipline: UpdateDiscipline::NoLock,
            },
        );
        let (trained, _) = trainer.train(&conll);
        for record in trained.history.records() {
            crf_bismarck.push(ConvergencePoint {
                seconds: record.cumulative.as_secs_f64(),
                loss: record.loss,
            });
        }
    }

    // Batch CRF (CRF++ / Mallet stand-in): one loss point per full pass.
    let mut crf_batch = Vec::new();
    {
        let start = Instant::now();
        let result = crf_batch_train(
            &conll,
            CrfBatchConfig {
                iterations: crf_epochs,
                step_size: 0.1,
                ..CrfBatchConfig::new(bismarck_datagen::SEQUENCE_COL, num_features, num_labels)
            },
        );
        let total = start.elapsed().as_secs_f64();
        let per_iter = total / crf_epochs.max(1) as f64;
        for (i, &loss) in result.losses.iter().enumerate() {
            crf_batch.push(ConvergencePoint {
                seconds: per_iter * (i + 1) as f64,
                loss,
            });
        }
    }

    Fig7Result {
        rows,
        crf_bismarck,
        crf_batch,
    }
}

impl std::fmt::Display for Fig7Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 7(A) — runtime to convergence: Bismarck vs native-tool baselines"
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.task.to_string(),
                    super::secs(r.bismarck_time),
                    format!("{:.2}", r.bismarck_loss),
                    r.baseline.to_string(),
                    r.baseline_time
                        .map(super::secs)
                        .unwrap_or_else(|| "N/A".into()),
                    r.baseline_loss
                        .map(|l| format!("{l:.2}"))
                        .unwrap_or_else(|| "N/A".into()),
                    r.speedup()
                        .map(|s| format!("{s:.1}x"))
                        .unwrap_or_else(|| "N/A".into()),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            render_table(
                &[
                    "Dataset",
                    "Task",
                    "Bismarck",
                    "Bismarck loss",
                    "Baseline",
                    "Baseline time",
                    "Baseline loss",
                    "Speedup",
                ],
                &rows
            )
        )?;
        writeln!(
            f,
            "Figure 7(B) — CRF objective over time (seconds, -log-likelihood)"
        )?;
        let series = |name: &str, pts: &[ConvergencePoint]| -> String {
            let line: Vec<String> = pts
                .iter()
                .step_by((pts.len() / 8).max(1))
                .map(|p| format!("({:.2}s, {:.1})", p.seconds, p.loss))
                .collect();
            format!("  {:<18} {}", name, line.join(" "))
        };
        writeln!(f, "{}", series("Bismarck (IGD)", &self.crf_bismarck))?;
        writeln!(f, "{}", series("Batch CRF tool", &self.crf_batch))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_covers_all_rows_and_marks_na() {
        let result = run(Scale::Small);
        assert_eq!(result.rows.len(), 5);
        // Sparse LR baseline is N/A, everything else has a measurement.
        let na: Vec<&BenchmarkRow> = result
            .rows
            .iter()
            .filter(|r| r.baseline_time.is_none())
            .collect();
        assert_eq!(na.len(), 1);
        assert_eq!(na[0].dataset, "dblife");
        assert_eq!(na[0].task, "LR");
        for row in &result.rows {
            assert!(row.bismarck_loss.is_finite());
            assert!(row.bismarck_time > Duration::ZERO);
        }
    }

    #[test]
    fn both_crf_series_are_decreasing_overall() {
        let result = run(Scale::Small);
        for series in [&result.crf_bismarck, &result.crf_batch] {
            assert!(series.len() >= 3);
            assert!(series.last().unwrap().loss < series.first().unwrap().loss);
            // Time axis is monotone.
            assert!(series.windows(2).all(|w| w[1].seconds >= w[0].seconds));
        }
    }

    #[test]
    fn display_contains_speedups_and_na() {
        let result = run(Scale::Small);
        let text = result.to_string();
        assert!(text.contains("N/A"));
        assert!(text.contains("Speedup"));
        assert!(text.contains("Bismarck (IGD)"));
    }
}
