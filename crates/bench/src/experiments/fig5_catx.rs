//! Figure 5 — the 1-D CA-TX example: IGD on random vs clustered orderings.
//!
//! Reproduces Example 3.1: 1000 one-dimensional least-squares examples
//! (labels +1 then −1), diminishing step size, and two visit orders. The
//! result records the trajectory of `w` (sub-sampled) and the number of
//! epochs each ordering needs to reach `w² < 0.001`, matching the paper's
//! "Random takes 18 epochs … Clustered takes 48 epochs" narrative.

use bismarck_core::model::{DenseModelStore, ModelStore};
use bismarck_core::task::IgdTask;
use bismarck_core::tasks::LeastSquaresTask;
use bismarck_datagen::ca_tx_table;
use bismarck_storage::{ScanOrder, Table};

use super::render_table;
use super::scale::Scale;

/// Trajectory and convergence summary for one ordering.
#[derive(Debug, Clone)]
pub struct OrderingTrajectory {
    /// Ordering label (`"Random"` / `"Clustered"`).
    pub label: &'static str,
    /// `(gradient step index, w)` samples along the trajectory.
    pub samples: Vec<(usize, f64)>,
    /// Number of epochs until `w² < 0.001`, if reached within the cap.
    pub epochs_to_converge: Option<usize>,
}

/// Result of the Figure 5 experiment.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// Number of examples (2n).
    pub examples: usize,
    /// Epoch cap used.
    pub max_epochs: usize,
    /// Random-order trajectory.
    pub random: OrderingTrajectory,
    /// Clustered-order trajectory.
    pub clustered: OrderingTrajectory,
}

fn run_ordering(
    table: &Table,
    order: ScanOrder,
    label: &'static str,
    max_epochs: usize,
    w0: f64,
) -> OrderingTrajectory {
    let task = LeastSquaresTask::new(1, 2, 1);
    let n = table.len();
    let sample_every = (n / 10).max(1);
    let mut store = DenseModelStore::new(vec![w0]);
    let mut samples = Vec::new();
    let mut epochs_to_converge = None;
    let mut step = 0usize;
    for epoch in 0..max_epochs {
        // Diminishing step-size rule, as in the paper's example.
        let alpha = 1.0 / (1.0 + epoch as f64);
        let permutation = order.permutation(n, epoch);
        let visit: Box<dyn Iterator<Item = &bismarck_storage::Tuple>> = match &permutation {
            Some(p) => Box::new(table.scan_permuted(p)),
            None => Box::new(table.scan()),
        };
        for tuple in visit {
            task.gradient_step(&mut store, tuple, alpha);
            if step.is_multiple_of(sample_every) {
                samples.push((step, store.read(0)));
            }
            step += 1;
        }
        let w = store.read(0);
        if epochs_to_converge.is_none() && w * w < 0.001 {
            epochs_to_converge = Some(epoch + 1);
            // Keep going a little so the trajectory shows the settled value,
            // then stop to bound runtime.
            if epoch + 1 < max_epochs && samples.len() > 20 {
                break;
            }
        }
    }
    samples.push((step, store.read(0)));
    OrderingTrajectory {
        label,
        samples,
        epochs_to_converge,
    }
}

/// Run the Figure 5 experiment.
pub fn run(scale: Scale) -> Fig5Result {
    let n = scale.scaled(500, 500); // the paper uses 1000 examples (n = 500)
    let table = ca_tx_table(n);
    let max_epochs = scale.scaled(60, 100);
    // Start away from the optimum so the trajectory is informative.
    let w0 = 1.0;
    let random = run_ordering(
        &table,
        ScanOrder::ShuffleAlways { seed: 5 },
        "Random",
        max_epochs,
        w0,
    );
    let clustered = run_ordering(&table, ScanOrder::Clustered, "Clustered", max_epochs, w0);
    Fig5Result {
        examples: table.len(),
        max_epochs,
        random,
        clustered,
    }
}

impl std::fmt::Display for Fig5Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 5 — 1-D CA-TX: epochs to reach w^2 < 0.001 ({} examples, cap {})",
            self.examples, self.max_epochs
        )?;
        let fmt_epochs = |e: &Option<usize>| {
            e.map(|v| v.to_string())
                .unwrap_or_else(|| format!(">{}", self.max_epochs))
        };
        let rows = vec![
            vec![
                "(1) Random".to_string(),
                fmt_epochs(&self.random.epochs_to_converge),
            ],
            vec![
                "(2) Clustered".to_string(),
                fmt_epochs(&self.clustered.epochs_to_converge),
            ],
        ];
        writeln!(
            f,
            "{}",
            render_table(&["ordering", "epochs to converge"], &rows)
        )?;
        writeln!(f, "w trajectory samples (step, w):")?;
        for traj in [&self.random, &self.clustered] {
            let line: Vec<String> = traj
                .samples
                .iter()
                .step_by((traj.samples.len() / 8).max(1))
                .map(|(s, w)| format!("({s}, {w:+.2})"))
                .collect();
            writeln!(f, "  {:<10} {}", traj.label, line.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_converges_in_fewer_epochs_than_clustered() {
        let result = run(Scale::Small);
        let random = result
            .random
            .epochs_to_converge
            .expect("random order converges");
        let clustered = result
            .clustered
            .epochs_to_converge
            .unwrap_or(result.max_epochs + 1);
        assert!(
            random < clustered,
            "random {random} epochs should beat clustered {clustered}"
        );
    }

    #[test]
    fn clustered_trajectory_oscillates() {
        let result = run(Scale::Small);
        let ws: Vec<f64> = result.clustered.samples.iter().map(|&(_, w)| w).collect();
        let max = ws.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = ws.iter().cloned().fold(f64::INFINITY, f64::min);
        // Within-epoch oscillation between roughly +1 and -1.
        assert!(max > 0.4, "max {max}");
        assert!(min < -0.4, "min {min}");
    }

    #[test]
    fn display_mentions_both_orderings() {
        let result = run(Scale::Small);
        let text = result.to_string();
        assert!(text.contains("Random"));
        assert!(text.contains("Clustered"));
    }
}
