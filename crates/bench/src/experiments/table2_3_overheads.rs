//! Tables 2 and 3 — single-iteration runtime of each task against the
//! strawman NULL aggregate.
//!
//! Table 2 measures the **pure UDA** implementation (the ordinary aggregate
//! path); Table 3 measures the **shared-memory UDA** variant. Overhead is
//! `(task time − NULL time) / NULL time`, i.e. how much the gradient
//! arithmetic adds on top of scanning the tuples.

use std::time::{Duration, Instant};

use bismarck_core::igd::IgdAggregate;
use bismarck_core::task::IgdTask;
use bismarck_core::tasks::{LmfTask, LogisticRegressionTask, SvmTask};
use bismarck_core::StepSizeSchedule;
use bismarck_core::{ParallelStrategy, ParallelTrainer, TrainerConfig, UpdateDiscipline};
use bismarck_storage::{NullAggregate, ScanOrder, Table};
use bismarck_uda::{run_sequential, ConvergenceTest};

use super::datasets;
use super::render_table;
use super::scale::Scale;

/// Which UDA implementation an overhead row measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdaVariant {
    /// Ordinary (pure) UDA execution — Table 2.
    Pure,
    /// Shared-memory UDA execution — Table 3.
    SharedMemory,
}

/// One row of Table 2 / Table 3.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Dataset name.
    pub dataset: String,
    /// Task name (`"LR"`, `"SVM"`, `"LMF"`).
    pub task: &'static str,
    /// Single-iteration runtime of the NULL aggregate.
    pub null_time: Duration,
    /// Single-iteration runtime of the task.
    pub task_time: Duration,
}

impl OverheadRow {
    /// Overhead relative to the NULL aggregate, in percent.
    pub fn overhead_percent(&self) -> f64 {
        let null = self.null_time.as_secs_f64().max(1e-9);
        (self.task_time.as_secs_f64() - null) / null * 100.0
    }
}

/// Result of the Table 2 or Table 3 experiment.
#[derive(Debug, Clone)]
pub struct OverheadResult {
    /// Which UDA implementation was measured.
    pub variant: UdaVariant,
    /// One row per (dataset, task) pair.
    pub rows: Vec<OverheadRow>,
}

fn time_null_epoch(table: &Table) -> Duration {
    let start = Instant::now();
    let count = NullAggregate::run_epoch(table);
    let elapsed = start.elapsed();
    assert_eq!(count, table.len());
    elapsed
}

fn time_pure_uda_epoch<T: IgdTask>(task: &T, table: &Table) -> Duration {
    let aggregate = IgdAggregate::new(task, 0.01, task.initial_model());
    let start = Instant::now();
    let state = run_sequential(&aggregate, table, None);
    let elapsed = start.elapsed();
    assert_eq!(state.steps as usize, table.len());
    elapsed
}

fn time_shared_memory_epoch<T: IgdTask>(task: &T, table: &Table, workers: usize) -> Duration {
    let config = TrainerConfig::default()
        .with_scan_order(ScanOrder::Clustered)
        .with_step_size(StepSizeSchedule::Constant(0.01))
        .with_convergence(ConvergenceTest::FixedEpochs(1));
    let trainer = ParallelTrainer::new(
        task,
        config,
        ParallelStrategy::SharedMemory {
            workers,
            discipline: UpdateDiscipline::NoLock,
        },
    );
    let (_, stats) = trainer.train(table);
    stats
        .first()
        .map(|s| s.gradient_duration)
        .unwrap_or(Duration::ZERO)
}

/// Run the overhead measurement for the chosen UDA variant.
pub fn run(scale: Scale, variant: UdaVariant) -> OverheadResult {
    let workers = 2; // the shared-memory variant always exercises >1 worker
    let forest = datasets::forest(scale);
    let dblife = datasets::dblife(scale);
    let movielens = datasets::movielens(scale);

    let forest_dim = datasets::feature_dimension(&forest);
    let dblife_dim = datasets::feature_dimension(&dblife);
    let (ml_rows, ml_cols, _, ml_rank) = datasets::movielens_shape(scale);

    let fcol = bismarck_datagen::CLASSIFICATION_FEATURES_COL;
    let lcol = bismarck_datagen::CLASSIFICATION_LABEL_COL;

    let lr_forest = LogisticRegressionTask::new(fcol, lcol, forest_dim);
    let svm_forest = SvmTask::new(fcol, lcol, forest_dim);
    let lr_dblife = LogisticRegressionTask::new(fcol, lcol, dblife_dim);
    let svm_dblife = SvmTask::new(fcol, lcol, dblife_dim);
    let lmf = LmfTask::new(
        bismarck_datagen::RATINGS_ROW_COL,
        bismarck_datagen::RATINGS_COL_COL,
        bismarck_datagen::RATINGS_VALUE_COL,
        ml_rows,
        ml_cols,
        ml_rank,
    );

    fn measure<T: IgdTask>(
        variant: UdaVariant,
        workers: usize,
        dataset: &str,
        task_name: &'static str,
        table: &Table,
        task: &T,
    ) -> OverheadRow {
        let null_time = time_null_epoch(table);
        let task_time = match variant {
            UdaVariant::Pure => time_pure_uda_epoch(task, table),
            UdaVariant::SharedMemory => time_shared_memory_epoch(task, table, workers),
        };
        OverheadRow {
            dataset: dataset.to_string(),
            task: task_name,
            null_time,
            task_time,
        }
    }

    let rows = vec![
        measure(variant, workers, "forest", "LR", &forest, &lr_forest),
        measure(variant, workers, "forest", "SVM", &forest, &svm_forest),
        measure(variant, workers, "dblife", "LR", &dblife, &lr_dblife),
        measure(variant, workers, "dblife", "SVM", &dblife, &svm_dblife),
        measure(variant, workers, "movielens", "LMF", &movielens, &lmf),
    ];

    OverheadResult { variant, rows }
}

impl std::fmt::Display for OverheadResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let title = match self.variant {
            UdaVariant::Pure => "Table 2 — pure UDA single-iteration overhead vs NULL aggregate",
            UdaVariant::SharedMemory => {
                "Table 3 — shared-memory UDA single-iteration overhead vs NULL aggregate"
            }
        };
        writeln!(f, "{title}")?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.task.to_string(),
                    super::secs(r.null_time),
                    super::secs(r.task_time),
                    format!("{:.1}%", r.overhead_percent()),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(
                &["Dataset", "Task", "NULL time", "Runtime", "Overhead"],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_uda_rows_cover_all_task_dataset_pairs() {
        let result = run(Scale::Small, UdaVariant::Pure);
        assert_eq!(result.rows.len(), 5);
        for row in &result.rows {
            assert!(row.task_time >= Duration::ZERO);
            assert!(row.null_time > Duration::ZERO);
            // Gradient arithmetic always costs something relative to a no-op
            // scan (allow small negatives from timer noise on tiny tables).
            assert!(row.overhead_percent() > -50.0);
        }
    }

    #[test]
    fn shared_memory_rows_cover_all_task_dataset_pairs() {
        let result = run(Scale::Small, UdaVariant::SharedMemory);
        assert_eq!(result.rows.len(), 5);
        assert!(result.rows.iter().all(|r| r.task_time > Duration::ZERO));
        let text = result.to_string();
        assert!(text.contains("Table 3"));
        assert!(text.contains("movielens"));
    }

    #[test]
    fn overhead_percent_formula() {
        let row = OverheadRow {
            dataset: "x".into(),
            task: "LR",
            null_time: Duration::from_millis(100),
            task_time: Duration::from_millis(150),
        };
        assert!((row.overhead_percent() - 50.0).abs() < 1.0);
    }
}
