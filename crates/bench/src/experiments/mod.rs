//! One module per table/figure of the paper's evaluation.

pub mod datasets;
pub mod fig10_mrs;
pub mod fig5_catx;
pub mod fig7_benchmark;
pub mod fig8_ordering;
pub mod fig9_parallel;
pub mod scale;
pub mod table1_datasets;
pub mod table2_3_overheads;
pub mod table4_scalability;

/// Format a duration in seconds with millisecond resolution.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Render a simple aligned text table: a header row followed by data rows.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            } else {
                widths.push(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{:width$}",
                    c,
                    width = widths.get(i).copied().unwrap_or(c.len())
                )
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns_columns() {
        let out = render_table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1".to_string()],
                vec!["longer".to_string(), "22".to_string()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn secs_formats_milliseconds() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500s");
    }
}
