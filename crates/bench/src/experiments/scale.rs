//! Experiment scale knob.
//!
//! The paper's datasets range from a few megabytes to 190 GB. The harness
//! runs every experiment at a laptop-friendly scale by default and a larger
//! (but still single-machine) scale when asked, so CI stays fast while the
//! full run exercises more realistic sizes.

/// How large the generated workloads should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-experiment sizes used by tests and CI.
    Small,
    /// Minutes-per-experiment sizes for a fuller run.
    Full,
}

impl Scale {
    /// Parse from a command-line string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "small" | "s" => Some(Scale::Small),
            "full" | "large" | "f" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Multiply a small-scale count by the scale factor.
    pub fn scaled(&self, small: usize, full: usize) -> usize {
        match self {
            Scale::Small => small,
            Scale::Full => full,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("S"), Some(Scale::Small));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("LARGE"), Some(Scale::Full));
        assert_eq!(Scale::parse("medium"), None);
    }

    #[test]
    fn scaled_picks_by_variant() {
        assert_eq!(Scale::Small.scaled(10, 100), 10);
        assert_eq!(Scale::Full.scaled(10, 100), 100);
    }
}
