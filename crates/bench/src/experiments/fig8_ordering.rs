//! Figure 8 — impact of data ordering on sparse LR.
//!
//! Trains the same LR model on the DBLife stand-in (stored clustered by
//! label) under three ordering policies — ShuffleAlways, ShuffleOnce and
//! Clustered — for a fixed number of epochs, and records the objective after
//! every epoch together with cumulative wall-clock time (which includes the
//! shuffle cost). The paper's findings: ShuffleAlways needs the fewest
//! epochs, Clustered the most, but ShuffleOnce wins on wall-clock because it
//! pays the shuffle only once.

use std::time::Duration;

use bismarck_core::tasks::LogisticRegressionTask;
use bismarck_core::{StepSizeSchedule, Trainer, TrainerConfig};
use bismarck_storage::ScanOrder;
use bismarck_uda::ConvergenceTest;

use super::datasets;
use super::render_table;
use super::scale::Scale;

/// Per-ordering training curve.
#[derive(Debug, Clone)]
pub struct OrderingCurve {
    /// Ordering label.
    pub label: &'static str,
    /// Objective value after each epoch.
    pub losses: Vec<f64>,
    /// Cumulative wall-clock time after each epoch.
    pub cumulative: Vec<Duration>,
    /// Total time spent shuffling.
    pub shuffle_time: Duration,
}

impl OrderingCurve {
    /// Epochs needed to first reach `target` (1-based), if ever.
    pub fn epochs_to(&self, target: f64) -> Option<usize> {
        self.losses.iter().position(|&l| l <= target).map(|i| i + 1)
    }

    /// Wall-clock time needed to first reach `target`, if ever.
    pub fn time_to(&self, target: f64) -> Option<Duration> {
        self.losses
            .iter()
            .position(|&l| l <= target)
            .map(|i| self.cumulative[i])
    }
}

/// Result of the Figure 8 experiment.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// Curves for ShuffleAlways, ShuffleOnce and Clustered (in that order).
    pub curves: Vec<OrderingCurve>,
    /// The loss target used for the epochs-to / time-to comparison.
    pub target: f64,
}

fn run_ordering(
    table: &bismarck_storage::Table,
    dim: usize,
    order: ScanOrder,
    label: &'static str,
    epochs: usize,
) -> OrderingCurve {
    let fcol = bismarck_datagen::CLASSIFICATION_FEATURES_COL;
    let lcol = bismarck_datagen::CLASSIFICATION_LABEL_COL;
    let task = LogisticRegressionTask::new(fcol, lcol, dim);
    let config = TrainerConfig::default()
        .with_scan_order(order)
        .with_step_size(StepSizeSchedule::Constant(0.2))
        .with_convergence(ConvergenceTest::FixedEpochs(epochs));
    let trained = Trainer::new(&task, config).train(table);
    OrderingCurve {
        label,
        losses: trained.history.losses(),
        cumulative: trained
            .history
            .records()
            .iter()
            .map(|r| r.cumulative)
            .collect(),
        shuffle_time: trained.history.total_shuffle_duration(),
    }
}

/// Run the Figure 8 experiment.
pub fn run(scale: Scale) -> Fig8Result {
    let table = datasets::dblife(scale);
    let dim = datasets::feature_dimension(&table);
    let epochs = scale.scaled(12, 40);
    let curves = vec![
        run_ordering(
            &table,
            dim,
            ScanOrder::ShuffleAlways { seed: 8 },
            "ShuffleAlways",
            epochs,
        ),
        run_ordering(
            &table,
            dim,
            ScanOrder::ShuffleOnce { seed: 8 },
            "ShuffleOnce",
            epochs,
        ),
        run_ordering(&table, dim, ScanOrder::Clustered, "Clustered", epochs),
    ];
    // Target: within 2% of the best loss any policy reached.
    let best = curves
        .iter()
        .filter_map(|c| c.losses.last().copied())
        .fold(f64::INFINITY, f64::min);
    let target = best * 1.02;
    Fig8Result { curves, target }
}

impl std::fmt::Display for Fig8Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 8 — impact of data ordering (sparse LR on dblife)"
        )?;
        writeln!(
            f,
            "loss target = {:.2} (within 2% of best observed)",
            self.target
        )?;
        let rows: Vec<Vec<String>> = self
            .curves
            .iter()
            .map(|c| {
                vec![
                    c.label.to_string(),
                    c.epochs_to(self.target)
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| format!(">{}", c.losses.len())),
                    c.time_to(self.target)
                        .map(super::secs)
                        .unwrap_or_else(|| "not reached".into()),
                    super::secs(c.shuffle_time),
                    format!("{:.2}", c.losses.last().copied().unwrap_or(f64::NAN)),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            render_table(
                &[
                    "Ordering",
                    "Epochs to target",
                    "Time to target",
                    "Shuffle time",
                    "Final loss"
                ],
                &rows
            )
        )?;
        writeln!(f, "loss per epoch:")?;
        for c in &self.curves {
            let line: Vec<String> = c
                .losses
                .iter()
                .step_by((c.losses.len() / 10).max(1))
                .map(|l| format!("{l:.1}"))
                .collect();
            writeln!(f, "  {:<14} {}", c.label, line.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffled_orderings_dominate_clustered_per_epoch() {
        let result = run(Scale::Small);
        let by_label = |label: &str| {
            result
                .curves
                .iter()
                .find(|c| c.label == label)
                .unwrap_or_else(|| panic!("missing curve {label}"))
        };
        let always = by_label("ShuffleAlways");
        let once = by_label("ShuffleOnce");
        let clustered = by_label("Clustered");
        // After the full epoch budget, the shuffled runs should be at least as
        // good as the clustered run (the paper's Figure 8(A) shape).
        let last = |c: &OrderingCurve| *c.losses.last().unwrap();
        assert!(last(always) <= last(clustered) * 1.05);
        assert!(last(once) <= last(clustered) * 1.05);
        // ShuffleOnce converges similarly to ShuffleAlways (within 10%).
        assert!(last(once) <= last(always) * 1.10);
    }

    #[test]
    fn shuffle_always_pays_more_shuffle_time_than_shuffle_once() {
        let result = run(Scale::Small);
        let time = |label: &str| {
            result
                .curves
                .iter()
                .find(|c| c.label == label)
                .unwrap()
                .shuffle_time
        };
        assert!(time("ShuffleAlways") >= time("ShuffleOnce"));
        assert_eq!(time("Clustered"), Duration::ZERO);
    }

    #[test]
    fn display_lists_all_orderings() {
        let result = run(Scale::Small);
        let text = result.to_string();
        for label in ["ShuffleAlways", "ShuffleOnce", "Clustered"] {
            assert!(text.contains(label));
        }
    }
}
