//! Figure 10 — multiplexed reservoir sampling.
//!
//! (A) Objective over epochs for Subsampling, Clustered (no shuffling at
//! all) and MRS on the sparse LR task with a buffer of roughly 10% of the
//! dataset.
//!
//! (B) Runtime (and epochs) to reach twice the best-known objective value for
//! Subsampling vs MRS at several buffer sizes, plus the Clustered reference.

use std::time::Duration;

use bismarck_core::mrs::subsampling_train;
use bismarck_core::tasks::LogisticRegressionTask;
use bismarck_core::{MrsConfig, MrsTrainer, StepSizeSchedule, Trainer, TrainerConfig};
use bismarck_storage::{ScanOrder, Table};
use bismarck_uda::ConvergenceTest;

use super::datasets;
use super::render_table;
use super::scale::Scale;

/// A per-epoch curve for one scheme (Figure 10(A)).
#[derive(Debug, Clone)]
pub struct MrsCurve {
    /// Scheme label.
    pub label: String,
    /// Objective after each epoch / pass.
    pub losses: Vec<f64>,
    /// Cumulative wall-clock time after each epoch.
    pub cumulative: Vec<Duration>,
}

impl MrsCurve {
    /// Epochs (1-based) to first reach `target`, if ever.
    pub fn epochs_to(&self, target: f64) -> Option<usize> {
        self.losses.iter().position(|&l| l <= target).map(|i| i + 1)
    }

    /// Wall-clock time to first reach `target`, if ever.
    pub fn time_to(&self, target: f64) -> Option<Duration> {
        self.losses
            .iter()
            .position(|&l| l <= target)
            .map(|i| self.cumulative[i])
    }
}

/// One row of the Figure 10(B) buffer-size sweep.
#[derive(Debug, Clone)]
pub struct BufferSweepRow {
    /// Buffer size in tuples.
    pub buffer: usize,
    /// Subsampling time and epochs to the target, if reached.
    pub subsampling: (Option<Duration>, Option<usize>),
    /// MRS time and epochs to the target, if reached.
    pub mrs: (Option<Duration>, Option<usize>),
}

/// Result of the Figure 10 experiment.
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// Figure 10(A) curves (MRS, Subsampling, Clustered).
    pub curves: Vec<MrsCurve>,
    /// The 2x-optimal loss target used in part (B).
    pub target: f64,
    /// Figure 10(B) rows.
    pub sweep: Vec<BufferSweepRow>,
}

fn lr_task(dim: usize) -> LogisticRegressionTask {
    LogisticRegressionTask::new(
        bismarck_datagen::CLASSIFICATION_FEATURES_COL,
        bismarck_datagen::CLASSIFICATION_LABEL_COL,
        dim,
    )
}

fn clustered_curve(table: &Table, dim: usize, epochs: usize) -> MrsCurve {
    let task = lr_task(dim);
    let config = TrainerConfig::default()
        .with_scan_order(ScanOrder::Clustered)
        .with_step_size(StepSizeSchedule::Constant(0.1))
        .with_convergence(ConvergenceTest::FixedEpochs(epochs));
    let trained = Trainer::new(&task, config).train(table);
    MrsCurve {
        label: "Clustered".into(),
        losses: trained.history.losses(),
        cumulative: trained
            .history
            .records()
            .iter()
            .map(|r| r.cumulative)
            .collect(),
    }
}

fn subsampling_curve(table: &Table, dim: usize, buffer: usize, epochs: usize) -> MrsCurve {
    let task = lr_task(dim);
    let trained = subsampling_train(
        &task,
        table,
        buffer,
        StepSizeSchedule::Constant(0.1),
        ConvergenceTest::FixedEpochs(epochs),
        77,
    );
    MrsCurve {
        label: format!("Subsampling (B={buffer})"),
        losses: trained.history.losses(),
        cumulative: trained
            .history
            .records()
            .iter()
            .map(|r| r.cumulative)
            .collect(),
    }
}

fn mrs_curve(table: &Table, dim: usize, buffer: usize, epochs: usize) -> MrsCurve {
    let task = lr_task(dim);
    let config = MrsConfig {
        buffer_size: buffer,
        step_size: StepSizeSchedule::Constant(0.1),
        convergence: ConvergenceTest::FixedEpochs(epochs),
        seed: 77,
        memory_worker: true,
        ..MrsConfig::default()
    };
    let (trained, _) = MrsTrainer::new(&task, config).train(table);
    MrsCurve {
        label: format!("MRS (B={buffer})"),
        losses: trained.history.losses(),
        cumulative: trained
            .history
            .records()
            .iter()
            .map(|r| r.cumulative)
            .collect(),
    }
}

/// Run the Figure 10 experiment.
pub fn run(scale: Scale) -> Fig10Result {
    let table = datasets::dblife(scale);
    let dim = datasets::feature_dimension(&table);
    let epochs = scale.scaled(10, 40);
    let ten_percent = (table.len() / 10).max(1);

    // (A) fixed buffer of ~10%.
    let curves = vec![
        mrs_curve(&table, dim, ten_percent, epochs),
        subsampling_curve(&table, dim, ten_percent, epochs),
        clustered_curve(&table, dim, epochs),
    ];

    // Target for (B): twice the best loss any scheme reached in part (A).
    let best = curves
        .iter()
        .flat_map(|c| c.losses.iter().copied())
        .fold(f64::INFINITY, f64::min);
    let target = best * 2.0;

    // (B) sweep buffer sizes of 5%, 10% and 20%.
    let mut sweep = Vec::new();
    for percent in [5usize, 10, 20] {
        let buffer = (table.len() * percent / 100).max(1);
        let sub = subsampling_curve(&table, dim, buffer, epochs);
        let mrs = mrs_curve(&table, dim, buffer, epochs);
        sweep.push(BufferSweepRow {
            buffer,
            subsampling: (sub.time_to(target), sub.epochs_to(target)),
            mrs: (mrs.time_to(target), mrs.epochs_to(target)),
        });
    }

    Fig10Result {
        curves,
        target,
        sweep,
    }
}

impl std::fmt::Display for Fig10Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 10(A) — objective over epochs (sparse LR, buffer ~10%)"
        )?;
        for c in &self.curves {
            let line: Vec<String> = c
                .losses
                .iter()
                .step_by((c.losses.len() / 10).max(1))
                .map(|l| format!("{l:.1}"))
                .collect();
            writeln!(f, "  {:<22} {}", c.label, line.join(" "))?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "Figure 10(B) — time (epochs) to reach 2x the best objective ({:.1})",
            self.target
        )?;
        let fmt_cell = |(time, epochs): &(Option<Duration>, Option<usize>)| match (time, epochs) {
            (Some(t), Some(e)) => format!("{} ({e})", super::secs(*t)),
            _ => "not reached".to_string(),
        };
        let rows: Vec<Vec<String>> = self
            .sweep
            .iter()
            .map(|r| {
                vec![
                    r.buffer.to_string(),
                    fmt_cell(&r.subsampling),
                    fmt_cell(&r.mrs),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(&["Buffer", "Subsampling", "MRS"], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mrs_reaches_a_loss_at_least_as_good_as_subsampling() {
        let result = run(Scale::Small);
        let find = |prefix: &str| {
            result
                .curves
                .iter()
                .find(|c| c.label.starts_with(prefix))
                .unwrap_or_else(|| panic!("missing curve {prefix}"))
        };
        let mrs = find("MRS");
        let sub = find("Subsampling");
        let clustered = find("Clustered");
        let last = |c: &MrsCurve| *c.losses.last().unwrap();
        assert!(
            last(mrs) <= last(sub) * 1.05,
            "MRS {} vs Subsampling {}",
            last(mrs),
            last(sub)
        );
        // MRS should also do no worse than training on clustered data.
        assert!(last(mrs) <= last(clustered) * 1.05);
    }

    #[test]
    fn buffer_sweep_has_three_rows_with_increasing_buffers() {
        let result = run(Scale::Small);
        assert_eq!(result.sweep.len(), 3);
        assert!(result.sweep.windows(2).all(|w| w[0].buffer < w[1].buffer));
        // MRS reaches the 2x target at every buffer size at this scale.
        assert!(result.sweep.iter().all(|r| r.mrs.1.is_some()));
    }

    #[test]
    fn display_contains_all_schemes() {
        let result = run(Scale::Small);
        let text = result.to_string();
        assert!(text.contains("MRS"));
        assert!(text.contains("Subsampling"));
        assert!(text.contains("Clustered"));
    }
}
