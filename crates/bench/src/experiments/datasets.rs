//! Centralized workload definitions used by the experiments.
//!
//! Names mirror the paper's datasets (Table 1); sizes are scaled-down
//! synthetic equivalents (see DESIGN.md for the substitution rationale).

use bismarck_datagen::{
    dense_classification, labeled_sequences, ratings_table, sparse_classification,
    DenseClassificationConfig, RatingsConfig, SequenceConfig, SparseClassificationConfig,
};
use bismarck_storage::Table;

use super::scale::Scale;

/// The Forest stand-in: dense 54-dimensional binary classification.
pub fn forest(scale: Scale) -> Table {
    dense_classification(
        "forest",
        DenseClassificationConfig {
            examples: scale.scaled(4_000, 60_000),
            dimension: 54,
            clustered_by_label: true,
            seed: 101,
            ..DenseClassificationConfig::default()
        },
    )
}

/// The DBLife stand-in: sparse, high-dimensional binary classification.
pub fn dblife(scale: Scale) -> Table {
    sparse_classification(
        "dblife",
        SparseClassificationConfig {
            examples: scale.scaled(2_000, 16_000),
            vocabulary: scale.scaled(8_000, 41_000),
            avg_nnz: 40,
            informative: 400,
            clustered_by_label: true,
            seed: 102,
        },
    )
}

/// Dimensions of the MovieLens stand-in at a given scale: (users, items,
/// observed ratings, rank used for training).
pub fn movielens_shape(scale: Scale) -> (usize, usize, usize, usize) {
    (
        scale.scaled(300, 6_000),
        scale.scaled(200, 4_000),
        scale.scaled(15_000, 1_000_000),
        10,
    )
}

/// The MovieLens stand-in: sparse ratings with planted low-rank structure.
pub fn movielens(scale: Scale) -> Table {
    let (rows, cols, ratings, _) = movielens_shape(scale);
    ratings_table(
        "movielens",
        RatingsConfig {
            rows,
            cols,
            ratings,
            true_rank: 5,
            noise: 0.1,
            seed: 103,
        },
    )
}

/// Feature/label counts of the CoNLL stand-in.
pub fn conll_shape(scale: Scale) -> (usize, usize) {
    (scale.scaled(1_500, 8_000), 5)
}

/// The CoNLL stand-in: labeled token sequences for CRF chunking.
pub fn conll(scale: Scale) -> Table {
    let (num_features, num_labels) = conll_shape(scale);
    labeled_sequences(
        "conll",
        SequenceConfig {
            sentences: scale.scaled(300, 9_000),
            num_features,
            num_labels,
            seed: 104,
            ..SequenceConfig::default()
        },
    )
}

/// The Classify300M stand-in for the scalability study: a dense
/// classification set that is deliberately the largest workload we generate.
pub fn classify_large(scale: Scale) -> Table {
    dense_classification(
        "classify_large",
        DenseClassificationConfig {
            examples: scale.scaled(20_000, 300_000),
            dimension: 50,
            clustered_by_label: true,
            seed: 105,
            ..DenseClassificationConfig::default()
        },
    )
}

/// Shape of the Matrix5B stand-in at a given scale.
pub fn matrix_large_shape(scale: Scale) -> (usize, usize, usize, usize) {
    (
        scale.scaled(1_000, 20_000),
        scale.scaled(1_000, 20_000),
        scale.scaled(60_000, 2_000_000),
        10,
    )
}

/// The Matrix5B stand-in for the scalability study.
pub fn matrix_large(scale: Scale) -> Table {
    let (rows, cols, ratings, _) = matrix_large_shape(scale);
    ratings_table(
        "matrix_large",
        RatingsConfig {
            rows,
            cols,
            ratings,
            true_rank: 8,
            noise: 0.05,
            seed: 106,
        },
    )
}

/// The DBLP stand-in for the CRF scalability row.
pub fn dblp(scale: Scale) -> Table {
    let (num_features, num_labels) = conll_shape(scale);
    labeled_sequences(
        "dblp",
        SequenceConfig {
            sentences: scale.scaled(1_000, 20_000),
            num_features,
            num_labels,
            seed: 107,
            ..SequenceConfig::default()
        },
    )
}

/// Infer the feature dimension of a classification table.
pub fn feature_dimension(table: &Table) -> usize {
    bismarck_core::frontend::infer_dimension(table, bismarck_datagen::CLASSIFICATION_FEATURES_COL)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_workloads_have_expected_shapes() {
        let forest = forest(Scale::Small);
        assert_eq!(forest.len(), 4_000);
        assert_eq!(feature_dimension(&forest), 54);

        let dblife = dblife(Scale::Small);
        assert_eq!(dblife.len(), 2_000);
        assert!(feature_dimension(&dblife) <= 8_000);

        let ml = movielens(Scale::Small);
        assert_eq!(ml.len(), 15_000);

        let conll = conll(Scale::Small);
        assert_eq!(conll.len(), 300);
    }

    #[test]
    fn scalability_workloads_are_larger_than_benchmarks() {
        assert!(classify_large(Scale::Small).len() > forest(Scale::Small).len());
        assert!(matrix_large(Scale::Small).len() > movielens(Scale::Small).len());
        assert!(dblp(Scale::Small).len() > conll(Scale::Small).len());
    }
}
