//! Table 1 — dataset statistics for the generated stand-ins.

use bismarck_datagen::{dataset_stats, DatasetStats};

use super::datasets;
use super::render_table;
use super::scale::Scale;

/// Result of the Table 1 experiment: one stats row per dataset.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// Per-dataset statistics in the paper's row order.
    pub rows: Vec<DatasetStats>,
}

/// Generate every dataset stand-in and collect its statistics.
pub fn run(scale: Scale) -> Table1Result {
    let forest = datasets::forest(scale);
    let dblife = datasets::dblife(scale);
    let movielens = datasets::movielens(scale);
    let conll = datasets::conll(scale);
    let classify = datasets::classify_large(scale);
    let matrix = datasets::matrix_large(scale);
    let dblp = datasets::dblp(scale);

    let (ml_rows, ml_cols, _, _) = datasets::movielens_shape(scale);
    let (mx_rows, mx_cols, _, _) = datasets::matrix_large_shape(scale);
    let (conll_features, _) = datasets::conll_shape(scale);

    let rows = vec![
        dataset_stats(&forest, datasets::feature_dimension(&forest).to_string()),
        dataset_stats(&dblife, datasets::feature_dimension(&dblife).to_string()),
        dataset_stats(&movielens, format!("{ml_rows} x {ml_cols}")),
        dataset_stats(&conll, conll_features.to_string()),
        dataset_stats(
            &classify,
            datasets::feature_dimension(&classify).to_string(),
        ),
        dataset_stats(&matrix, format!("{mx_rows} x {mx_cols}")),
        dataset_stats(&dblp, conll_features.to_string()),
    ];
    Table1Result { rows }
}

impl std::fmt::Display for Table1Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 1 — dataset statistics (synthetic stand-ins)")?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.dimension.clone(),
                    r.examples.to_string(),
                    r.size_label(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(&["Dataset", "Dimension", "# Examples", "Size"], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_a_row_per_dataset() {
        let result = run(Scale::Small);
        assert_eq!(result.rows.len(), 7);
        let names: Vec<&str> = result.rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "forest",
                "dblife",
                "movielens",
                "conll",
                "classify_large",
                "matrix_large",
                "dblp"
            ]
        );
        assert!(result.rows.iter().all(|r| r.examples > 0 && r.bytes > 0));
    }

    #[test]
    fn display_renders_all_rows() {
        let result = run(Scale::Small);
        let text = result.to_string();
        for row in &result.rows {
            assert!(text.contains(&row.name));
        }
    }
}
