//! Table 4 — scalability study.
//!
//! The paper's Table 4 records, for each task on a large dataset, whether the
//! tool completes (✓) or "either crashes or takes longer than 48 hours" (✗).
//! We reproduce the same shape with a wall-clock budget scaled to the
//! generated datasets: a method earns ✓ when its projected time to run the
//! standard number of passes fits in the budget. Bismarck's per-epoch time is
//! measured directly; for the batch baselines we measure one iteration and
//! extrapolate (running a hopeless configuration to completion would only
//! re-measure the same number many times over).

use std::time::{Duration, Instant};

use bismarck_baselines::als::als_train;
use bismarck_baselines::{
    batch_lr_train, crf_batch_train, AlsConfig, BatchGradientConfig, CrfBatchConfig,
};
use bismarck_core::igd::IgdAggregate;
use bismarck_core::task::IgdTask;
use bismarck_core::tasks::{CrfTask, LmfTask, LogisticRegressionTask, SvmTask};
use bismarck_storage::Table;
use bismarck_uda::run_sequential;

use super::datasets;
use super::render_table;
use super::scale::Scale;

/// Outcome of one (task, method) cell.
#[derive(Debug, Clone)]
pub struct ScalabilityCell {
    /// Method label.
    pub method: &'static str,
    /// Time of one pass / iteration.
    pub per_pass: Duration,
    /// Projected time for the full run (`per_pass × passes`).
    pub projected_total: Duration,
    /// Whether the projected total fits the budget.
    pub completes: bool,
}

/// One row of Table 4.
#[derive(Debug, Clone)]
pub struct ScalabilityRow {
    /// Task label.
    pub task: &'static str,
    /// Dataset name.
    pub dataset: String,
    /// Bismarck measurement.
    pub bismarck: ScalabilityCell,
    /// Baseline measurement.
    pub baseline: ScalabilityCell,
}

/// Result of the Table 4 experiment.
#[derive(Debug, Clone)]
pub struct Table4Result {
    /// Wall-clock budget representing the paper's 48-hour cut-off.
    pub budget: Duration,
    /// Number of passes assumed for the projection.
    pub passes: usize,
    /// One row per task.
    pub rows: Vec<ScalabilityRow>,
}

fn time_igd_epoch<T: IgdTask>(task: &T, table: &Table) -> Duration {
    let aggregate = IgdAggregate::new(task, 0.01, task.initial_model());
    let start = Instant::now();
    let _ = run_sequential(&aggregate, table, None);
    start.elapsed()
}

fn cell(
    method: &'static str,
    per_pass: Duration,
    passes: usize,
    budget: Duration,
) -> ScalabilityCell {
    let projected_total = per_pass * passes as u32;
    ScalabilityCell {
        method,
        per_pass,
        projected_total,
        completes: projected_total <= budget,
    }
}

/// Run the Table 4 experiment.
pub fn run(scale: Scale) -> Table4Result {
    // The budget plays the role of the paper's 48-hour cut-off, scaled to the
    // generated data sizes.
    let budget = Duration::from_secs_f64(match scale {
        Scale::Small => 20.0,
        Scale::Full => 1_800.0,
    });
    let passes = 20;
    let fcol = bismarck_datagen::CLASSIFICATION_FEATURES_COL;
    let lcol = bismarck_datagen::CLASSIFICATION_LABEL_COL;

    let classify = datasets::classify_large(scale);
    let matrix = datasets::matrix_large(scale);
    let dblp = datasets::dblp(scale);
    let classify_dim = datasets::feature_dimension(&classify);
    let (mx_rows, mx_cols, _, mx_rank) = datasets::matrix_large_shape(scale);
    let (seq_features, seq_labels) = datasets::conll_shape(scale);

    let mut rows = Vec::new();

    // LR on the Classify300M stand-in: Bismarck vs batch LR.
    {
        let task = LogisticRegressionTask::new(fcol, lcol, classify_dim);
        let bismarck = cell(
            "Bismarck IGD",
            time_igd_epoch(&task, &classify),
            passes,
            budget,
        );
        let start = Instant::now();
        let _ = batch_lr_train(
            &classify,
            BatchGradientConfig {
                iterations: 1,
                ..BatchGradientConfig::new(fcol, lcol, classify_dim)
            },
        );
        let baseline = cell("Batch LR", start.elapsed(), passes, budget);
        rows.push(ScalabilityRow {
            task: "LR",
            dataset: "classify_large".into(),
            bismarck,
            baseline,
        });
    }

    // SVM on the same dataset: Bismarck vs batch subgradient.
    {
        let task = SvmTask::new(fcol, lcol, classify_dim);
        let bismarck = cell(
            "Bismarck IGD",
            time_igd_epoch(&task, &classify),
            passes,
            budget,
        );
        let start = Instant::now();
        let _ = bismarck_baselines::batch_svm_train(
            &classify,
            BatchGradientConfig {
                iterations: 1,
                ..BatchGradientConfig::new(fcol, lcol, classify_dim)
            },
        );
        let baseline = cell("Batch SVM", start.elapsed(), passes, budget);
        rows.push(ScalabilityRow {
            task: "SVM",
            dataset: "classify_large".into(),
            bismarck,
            baseline,
        });
    }

    // LMF on the Matrix5B stand-in: Bismarck vs ALS.
    {
        let task = LmfTask::new(
            bismarck_datagen::RATINGS_ROW_COL,
            bismarck_datagen::RATINGS_COL_COL,
            bismarck_datagen::RATINGS_VALUE_COL,
            mx_rows,
            mx_cols,
            mx_rank,
        );
        let bismarck = cell(
            "Bismarck IGD",
            time_igd_epoch(&task, &matrix),
            passes,
            budget,
        );
        let start = Instant::now();
        let _ = als_train(
            &matrix,
            AlsConfig {
                sweeps: 1,
                ..AlsConfig::new(mx_rows, mx_cols, mx_rank)
            },
        );
        let baseline = cell("ALS", start.elapsed(), passes, budget);
        rows.push(ScalabilityRow {
            task: "LMF",
            dataset: "matrix_large".into(),
            bismarck,
            baseline,
        });
    }

    // CRF on the DBLP stand-in: Bismarck vs batch CRF.
    {
        let task = CrfTask::new(bismarck_datagen::SEQUENCE_COL, seq_features, seq_labels);
        let bismarck = cell("Bismarck IGD", time_igd_epoch(&task, &dblp), passes, budget);
        let start = Instant::now();
        let _ = crf_batch_train(
            &dblp,
            CrfBatchConfig {
                iterations: 1,
                ..CrfBatchConfig::new(bismarck_datagen::SEQUENCE_COL, seq_features, seq_labels)
            },
        );
        let baseline = cell("Batch CRF", start.elapsed(), passes, budget);
        rows.push(ScalabilityRow {
            task: "CRF",
            dataset: "dblp".into(),
            bismarck,
            baseline,
        });
    }

    Table4Result {
        budget,
        passes,
        rows,
    }
}

impl std::fmt::Display for Table4Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table 4 — scalability: ✓ = projected {} passes fit within the {} budget",
            self.passes,
            super::secs(self.budget)
        )?;
        let mark = |c: &ScalabilityCell| if c.completes { "✓" } else { "✗" };
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.task.to_string(),
                    r.dataset.clone(),
                    format!(
                        "{} ({}/pass)",
                        mark(&r.bismarck),
                        super::secs(r.bismarck.per_pass)
                    ),
                    format!(
                        "{} ({}/pass)",
                        mark(&r.baseline),
                        super::secs(r.baseline.per_pass)
                    ),
                    r.baseline.method.to_string(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(
                &["Task", "Dataset", "Bismarck", "Baseline", "Baseline method"],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_four_tasks_and_bismarck_always_completes() {
        let result = run(Scale::Small);
        assert_eq!(result.rows.len(), 4);
        let tasks: Vec<&str> = result.rows.iter().map(|r| r.task).collect();
        assert_eq!(tasks, vec!["LR", "SVM", "LMF", "CRF"]);
        // Bismarck's per-epoch cost is linear in the data, so at every scale
        // its projected total fits the (scaled) budget.
        assert!(result.rows.iter().all(|r| r.bismarck.completes));
        assert!(result
            .rows
            .iter()
            .all(|r| r.bismarck.per_pass > Duration::ZERO));
        assert!(result
            .rows
            .iter()
            .all(|r| r.baseline.per_pass > Duration::ZERO));
    }

    #[test]
    fn projection_multiplies_per_pass_time() {
        let result = run(Scale::Small);
        for row in &result.rows {
            for cell in [&row.bismarck, &row.baseline] {
                let expected = cell.per_pass * result.passes as u32;
                assert_eq!(cell.projected_total, expected);
            }
        }
    }

    #[test]
    fn display_uses_check_and_cross_marks() {
        let result = run(Scale::Small);
        let text = result.to_string();
        assert!(text.contains('✓'));
        assert!(text.contains("Baseline method"));
    }
}
