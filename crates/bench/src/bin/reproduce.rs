//! `reproduce` — regenerate the paper's tables and figures from the command
//! line.
//!
//! Usage:
//!
//! ```text
//! reproduce [--experiment <id>] [--scale small|full]
//!
//!   <id> ∈ { table1, table2, table3, table4,
//!            fig5, fig7a, fig7b, fig8, fig9a, fig9b, fig10a, fig10b, all }
//! ```
//!
//! Each experiment prints the rows / series of the corresponding paper
//! artefact. Absolute numbers differ from the paper (different hardware and
//! substrate); the qualitative shape is what is being reproduced — see
//! EXPERIMENTS.md for the side-by-side reading.

use bismarck_bench::experiments::{
    fig10_mrs, fig5_catx, fig7_benchmark, fig8_ordering, fig9_parallel, table1_datasets,
    table2_3_overheads, table4_scalability,
};
use bismarck_bench::Scale;

const EXPERIMENTS: &[&str] = &[
    "table1", "table2", "table3", "table4", "fig5", "fig7a", "fig7b", "fig8", "fig9a", "fig9b",
    "fig10a", "fig10b",
];

fn print_usage() {
    eprintln!("usage: reproduce [--experiment <id>] [--scale small|full]");
    eprintln!("  ids: {} or 'all' (default)", EXPERIMENTS.join(", "));
}

fn run_one(id: &str, scale: Scale) -> bool {
    println!("==================================================================");
    match id {
        "table1" => println!("{}", table1_datasets::run(scale)),
        "table2" => println!(
            "{}",
            table2_3_overheads::run(scale, table2_3_overheads::UdaVariant::Pure)
        ),
        "table3" => println!(
            "{}",
            table2_3_overheads::run(scale, table2_3_overheads::UdaVariant::SharedMemory)
        ),
        "table4" => println!("{}", table4_scalability::run(scale)),
        "fig5" => println!("{}", fig5_catx::run(scale)),
        // Figure 7's two panels come from the same run; print the whole
        // result for either id so the per-panel aliases both work.
        "fig7a" | "fig7b" => println!("{}", fig7_benchmark::run(scale)),
        "fig8" => println!("{}", fig8_ordering::run(scale)),
        "fig9a" | "fig9b" => println!("{}", fig9_parallel::run(scale)),
        "fig10a" | "fig10b" => println!("{}", fig10_mrs::run(scale)),
        other => {
            eprintln!("unknown experiment '{other}'");
            print_usage();
            return false;
        }
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_string();
    let mut scale = Scale::Small;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--experiment" | "-e" => {
                i += 1;
                let Some(value) = args.get(i) else {
                    print_usage();
                    std::process::exit(2);
                };
                experiment = value.clone();
            }
            "--scale" | "-s" => {
                i += 1;
                let Some(value) = args.get(i).and_then(|v| Scale::parse(v)) else {
                    print_usage();
                    std::process::exit(2);
                };
                scale = value;
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                print_usage();
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!(
        "Bismarck reproduction harness — scale: {:?}; experiment: {}",
        scale, experiment
    );
    let ok = if experiment == "all" {
        // fig7a/fig7b and fig9a/fig9b share a run; execute each family once.
        let unique = [
            "table1", "table2", "table3", "table4", "fig5", "fig7a", "fig8", "fig9a", "fig10a",
        ];
        unique.iter().all(|id| run_one(id, scale))
    } else {
        run_one(&experiment, scale)
    };
    if !ok {
        std::process::exit(2);
    }
}
