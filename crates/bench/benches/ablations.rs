//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * step-size schedule (constant vs diminishing vs geometric);
//! * sparse vs densified feature vectors for the same sparse workload;
//! * count-weighted vs unweighted model-averaging merge in the pure-UDA path;
//! * the SQL front-end (`SELECT SVMTrain(...)`) vs calling the Rust
//!   front-end directly, i.e. the cost of the user-facing interface layer.

use bismarck_core::igd::{IgdAggregate, MergeStrategy};
use bismarck_core::task::IgdTask;
use bismarck_core::tasks::LogisticRegressionTask;
use bismarck_core::{StepSizeSchedule, Trainer, TrainerConfig};
use bismarck_datagen::{sparse_classification, SparseClassificationConfig};
use bismarck_storage::{Column, DataType, ScanOrder, Schema, Table, Value};
use bismarck_uda::{run_segmented, ConvergenceTest};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn sparse_table() -> Table {
    sparse_classification(
        "dblife",
        SparseClassificationConfig {
            examples: 1_000,
            vocabulary: 4_000,
            ..Default::default()
        },
    )
}

/// Materialize every sparse feature vector of a classification table into a
/// dense vector of the full dimension.
fn densify(table: &Table, dim: usize) -> Table {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("vec", DataType::DenseVec),
        Column::new("label", DataType::Double),
    ])
    .unwrap();
    let mut dense = Table::new("dense", schema);
    for row in table.scan() {
        let fv = row.feature_view(1).unwrap();
        dense
            .insert(vec![
                Value::Int(row.get_int(0).unwrap()),
                Value::DenseVec(fv.to_dense(dim)),
                Value::Double(row.get_double(2).unwrap()),
            ])
            .unwrap();
    }
    dense
}

fn bench_stepsize(c: &mut Criterion) {
    let table = sparse_table();
    let dim = bismarck_core::frontend::infer_dimension(&table, 1);
    let task = LogisticRegressionTask::new(1, 2, dim);

    let mut group = c.benchmark_group("ablate_stepsize_five_epochs");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (label, schedule) in [
        ("constant", StepSizeSchedule::Constant(0.2)),
        (
            "diminishing",
            StepSizeSchedule::Diminishing { initial: 0.5 },
        ),
        (
            "geometric",
            StepSizeSchedule::Geometric {
                initial: 0.5,
                decay: 0.8,
            },
        ),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &schedule,
            |b, &schedule| {
                let config = TrainerConfig::default()
                    .with_scan_order(ScanOrder::ShuffleOnce { seed: 2 })
                    .with_step_size(schedule)
                    .with_convergence(ConvergenceTest::FixedEpochs(5));
                b.iter(|| black_box(Trainer::new(&task, config.clone()).train(&table)))
            },
        );
    }
    group.finish();
}

fn bench_sparse_vs_dense(c: &mut Criterion) {
    let sparse = sparse_table();
    let dim = bismarck_core::frontend::infer_dimension(&sparse, 1);
    let dense = densify(&sparse, dim);
    let task = LogisticRegressionTask::new(1, 2, dim);
    let config = TrainerConfig::default()
        .with_scan_order(ScanOrder::Clustered)
        .with_step_size(StepSizeSchedule::Constant(0.1))
        .with_convergence(ConvergenceTest::FixedEpochs(2));

    let mut group = c.benchmark_group("ablate_sparse_vs_dense_two_epochs");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function("sparse_rows", |b| {
        b.iter(|| black_box(Trainer::new(&task, config.clone()).train(&sparse)))
    });
    group.bench_function("densified_rows", |b| {
        b.iter(|| black_box(Trainer::new(&task, config.clone()).train(&dense)))
    });
    group.finish();
}

fn bench_merge_strategy(c: &mut Criterion) {
    let table = sparse_table();
    let dim = bismarck_core::frontend::infer_dimension(&table, 1);
    let task = LogisticRegressionTask::new(1, 2, dim);

    let mut group = c.benchmark_group("ablate_merge_strategy_segmented_epoch");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (label, strategy) in [
        ("count_weighted", MergeStrategy::CountWeighted),
        ("unweighted", MergeStrategy::Unweighted),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let aggregate = IgdAggregate::new(&task, 0.1, task.initial_model())
                        .with_merge_strategy(strategy);
                    black_box(run_segmented(&aggregate, &table, 8))
                })
            },
        );
    }
    group.finish();
}

fn bench_sql_interface_overhead(c: &mut Criterion) {
    use bismarck_core::frontend::svm_train;
    use bismarck_sql::SqlSession;
    use bismarck_storage::Database;

    let table = sparse_table();
    let config = TrainerConfig::default()
        .with_scan_order(ScanOrder::ShuffleOnce { seed: 6 })
        .with_step_size(StepSizeSchedule::Constant(0.2))
        .with_convergence(ConvergenceTest::FixedEpochs(3));

    let mut group = c.benchmark_group("ablate_sql_interface_three_epochs");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    group.bench_function("rust_frontend", |b| {
        b.iter(|| {
            let mut db = Database::new();
            db.register_table(table.clone()).unwrap();
            black_box(svm_train(&mut db, "m", "dblife", "vec", "label", config.clone()).unwrap())
        })
    });
    group.bench_function("sql_statement", |b| {
        b.iter(|| {
            let mut session = SqlSession::with_seed(6).with_trainer_config(config.clone());
            session.register_table(table.clone()).unwrap();
            black_box(
                session
                    .execute("SELECT SVMTrain('m', 'dblife', 'vec', 'label')")
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_stepsize,
    bench_sparse_vs_dense,
    bench_merge_strategy,
    bench_sql_interface_overhead
);
criterion_main!(benches);
