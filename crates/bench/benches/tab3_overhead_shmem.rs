//! Table 3 bench: single-iteration runtime of the shared-memory UDA variant
//! (NoLock, 2 workers) against the NULL aggregate.

use bismarck_core::task::IgdTask;
use bismarck_core::tasks::{LmfTask, LogisticRegressionTask, SvmTask};
use bismarck_core::{
    ParallelStrategy, ParallelTrainer, StepSizeSchedule, TrainerConfig, UpdateDiscipline,
};
use bismarck_datagen::{
    dense_classification, ratings_table, sparse_classification, DenseClassificationConfig,
    RatingsConfig, SparseClassificationConfig,
};
use bismarck_storage::{NullAggregate, ScanOrder, Table};
use bismarck_uda::ConvergenceTest;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn shared_epoch<T: IgdTask>(task: &T, table: &Table) {
    let config = TrainerConfig::default()
        .with_scan_order(ScanOrder::Clustered)
        .with_step_size(StepSizeSchedule::Constant(0.01))
        .with_convergence(ConvergenceTest::FixedEpochs(1));
    let trainer = ParallelTrainer::new(
        task,
        config,
        ParallelStrategy::SharedMemory {
            workers: 2,
            discipline: UpdateDiscipline::NoLock,
        },
    );
    black_box(trainer.train(table));
}

fn bench_table3(c: &mut Criterion) {
    let forest = dense_classification(
        "forest",
        DenseClassificationConfig {
            examples: 2_000,
            dimension: 54,
            ..Default::default()
        },
    );
    let dblife = sparse_classification(
        "dblife",
        SparseClassificationConfig {
            examples: 1_000,
            vocabulary: 8_000,
            ..Default::default()
        },
    );
    let movielens = ratings_table(
        "movielens",
        RatingsConfig {
            rows: 200,
            cols: 150,
            ratings: 8_000,
            ..Default::default()
        },
    );
    let forest_dim = bismarck_core::frontend::infer_dimension(&forest, 1);
    let dblife_dim = bismarck_core::frontend::infer_dimension(&dblife, 1);

    let mut group = c.benchmark_group("tab3_shared_memory_single_iteration");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    group.bench_function("forest/null", |b| {
        b.iter(|| black_box(NullAggregate::run_epoch(&forest)))
    });
    group.bench_function("forest/lr", |b| {
        let task = LogisticRegressionTask::new(1, 2, forest_dim);
        b.iter(|| shared_epoch(&task, &forest))
    });
    group.bench_function("forest/svm", |b| {
        let task = SvmTask::new(1, 2, forest_dim);
        b.iter(|| shared_epoch(&task, &forest))
    });
    group.bench_function("dblife/lr", |b| {
        let task = LogisticRegressionTask::new(1, 2, dblife_dim);
        b.iter(|| shared_epoch(&task, &dblife))
    });
    group.bench_function("dblife/svm", |b| {
        let task = SvmTask::new(1, 2, dblife_dim);
        b.iter(|| shared_epoch(&task, &dblife))
    });
    group.bench_function("movielens/lmf", |b| {
        let task = LmfTask::new(0, 1, 2, 200, 150, 10);
        b.iter(|| shared_epoch(&task, &movielens))
    });

    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
