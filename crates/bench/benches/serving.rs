//! Sustained prediction throughput through a [`ModelHandle`], idle and under
//! concurrent training.
//!
//! The serving layer's promise is that reads are wait-free in the common
//! case: a reader clones one `Arc` per batch and then scores through the
//! same `dot_view` kernels the trainer uses, so prediction throughput should
//! barely move when a [`ParallelTrainer`] is publishing a fresh snapshot
//! into the handle every epoch. This bench measures batched-predict
//! throughput (tuples/sec) on a dense LR model twice — with the handle idle,
//! and with a NoLock (Hogwild!) trainer hammering the same handle from
//! background threads — and records both, plus the retained fraction, in
//! `BENCH_serving.json` at the workspace root. Run with
//! `cargo bench -p bismarck-bench --bench serving` (release profile).

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bismarck_core::serving::{ModelHandle, ServingTask};
use bismarck_core::tasks::LogisticRegressionTask;
use bismarck_core::{
    IgdTask, ParallelStrategy, ParallelTrainer, StepSizeSchedule, TrainerConfig, UpdateDiscipline,
};
use bismarck_datagen::{
    dense_classification, DenseClassificationConfig, CLASSIFICATION_FEATURES_COL,
    CLASSIFICATION_LABEL_COL,
};
use bismarck_linalg::FeatureVectorRef;
use bismarck_storage::Table;
use bismarck_uda::ConvergenceTest;

const DIM: usize = 54;
const BATCH: usize = 256;
const SAMPLES: usize = 20;

/// Score every batch of `features` once through the handle; returns the
/// elapsed seconds for one full pass.
fn scoring_pass(handle: &ModelHandle, batches: &[Vec<FeatureVectorRef<'_>>]) -> f64 {
    let mut out = Vec::with_capacity(BATCH);
    let start = Instant::now();
    for batch in batches {
        let snapshot = handle.predict_batch(batch, &mut out);
        black_box(&out);
        black_box(snapshot.version());
    }
    start.elapsed().as_secs_f64()
}

/// Best-of-N sustained throughput in tuples/sec over the prepared batches.
fn measure_throughput(handle: &ModelHandle, batches: &[Vec<FeatureVectorRef<'_>>]) -> f64 {
    let tuples: usize = batches.iter().map(Vec::len).sum();
    // Warm-up passes: fault pages, warm caches, settle the branch predictor.
    for _ in 0..3 {
        scoring_pass(handle, batches);
    }
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        best = best.min(scoring_pass(handle, batches));
    }
    tuples as f64 / best
}

fn main() {
    eprintln!("batched prediction throughput through a ModelHandle (best pass of many)");

    let table = dense_classification(
        "serving_bench",
        DenseClassificationConfig {
            examples: 20_000,
            dimension: DIM,
            ..Default::default()
        },
    );
    let task =
        LogisticRegressionTask::new(CLASSIFICATION_FEATURES_COL, CLASSIFICATION_LABEL_COL, DIM);

    // The scoring workload: every feature vector of the table, in batches,
    // borrowed zero-copy from storage exactly as the SQL layer would.
    let views: Vec<FeatureVectorRef<'_>> = table
        .scan()
        .filter_map(|tuple| tuple.feature_view(CLASSIFICATION_FEATURES_COL))
        .collect();
    let batches: Vec<Vec<FeatureVectorRef<'_>>> = views.chunks(BATCH).map(<[_]>::to_vec).collect();
    let tuples: usize = views.len();

    let handle = ModelHandle::with_initial(ServingTask::Logistic, task.initial_model())
        .expect("zero model is finite");

    // Idle: no writer anywhere near the handle.
    let idle_tps = measure_throughput(&handle, &batches);
    eprintln!("  idle: {:.0} tuples/sec", idle_tps);

    // Concurrent: a Hogwild! trainer loops epochs on the same table and
    // publishes into the same handle until the measurement is done.
    let stop = Arc::new(AtomicBool::new(false));
    let concurrent_tps = std::thread::scope(|scope| {
        let trainer_stop = Arc::clone(&stop);
        let trainer_handle = handle.clone();
        let trainer_task = &task;
        let trainer_table: &Table = &table;
        scope.spawn(move || {
            let config = TrainerConfig::default()
                .with_step_size(StepSizeSchedule::Constant(0.01))
                .with_convergence(ConvergenceTest::FixedEpochs(4))
                .with_serving(trainer_handle);
            let strategy = ParallelStrategy::SharedMemory {
                workers: 2,
                discipline: UpdateDiscipline::NoLock,
            };
            while !trainer_stop.load(Ordering::Acquire) {
                let trainer = ParallelTrainer::new(trainer_task, config.clone(), strategy);
                black_box(trainer.train(trainer_table));
            }
        });
        let tps = measure_throughput(&handle, &batches);
        stop.store(true, Ordering::Release);
        tps
    });
    eprintln!(
        "  concurrent with training: {:.0} tuples/sec",
        concurrent_tps
    );

    let retained = concurrent_tps / idle_tps;
    let final_version = handle.snapshot().version();
    eprintln!(
        "  retained {:.1}% of idle throughput; {final_version} snapshots published",
        retained * 100.0
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serving\",\n",
            "  \"description\": \"batched PREDICT throughput through a ModelHandle, ",
            "idle vs concurrent with a NoLock training loop publishing every epoch\",\n",
            "  \"profile\": \"{}\",\n",
            "  \"task\": \"LR\",\n",
            "  \"dimension\": {},\n",
            "  \"batch_size\": {},\n",
            "  \"tuples_per_pass\": {},\n",
            "  \"idle_tuples_per_sec\": {:.0},\n",
            "  \"concurrent_tuples_per_sec\": {:.0},\n",
            "  \"throughput_retained\": {:.3},\n",
            "  \"snapshots_published\": {}\n",
            "}}\n"
        ),
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
        DIM,
        BATCH,
        tuples,
        idle_tps,
        concurrent_tps,
        retained,
        final_version,
    );

    // crates/bench -> workspace root.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serving.json");
    match std::fs::write(&out, &json) {
        Ok(()) => eprintln!("wrote {}", out.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
    print!("{json}");
}
