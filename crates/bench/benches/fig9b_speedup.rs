//! Figure 9(B) bench: per-epoch gradient time of the parallel schemes as the
//! worker count grows (the speed-up curve's raw measurements).
//!
//! NOTE: on a single-core host the measured speed-ups stay near 1x; the bench
//! still exercises the real multi-threaded code paths.

use bismarck_core::tasks::CrfTask;
use bismarck_core::{
    ParallelStrategy, ParallelTrainer, StepSizeSchedule, TrainerConfig, UpdateDiscipline,
};
use bismarck_datagen::{labeled_sequences, SequenceConfig};
use bismarck_storage::ScanOrder;
use bismarck_uda::ConvergenceTest;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig9b(c: &mut Criterion) {
    let table = labeled_sequences(
        "conll",
        SequenceConfig {
            sentences: 150,
            num_features: 1_000,
            num_labels: 5,
            ..Default::default()
        },
    );
    let task = CrfTask::new(0, 1_000, 5);
    let config = TrainerConfig::default()
        .with_scan_order(ScanOrder::Clustered)
        .with_step_size(StepSizeSchedule::Constant(0.1))
        .with_convergence(ConvergenceTest::FixedEpochs(1));

    let mut group = c.benchmark_group("fig9b_parallel_epoch");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for workers in [1usize, 2, 4, 8] {
        for (label, strategy) in [
            ("pure_uda", ParallelStrategy::PureUda { segments: workers }),
            (
                "nolock",
                ParallelStrategy::SharedMemory {
                    workers,
                    discipline: UpdateDiscipline::NoLock,
                },
            ),
            (
                "aig",
                ParallelStrategy::SharedMemory {
                    workers,
                    discipline: UpdateDiscipline::Aig,
                },
            ),
            (
                "lock",
                ParallelStrategy::SharedMemory {
                    workers,
                    discipline: UpdateDiscipline::Lock,
                },
            ),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, workers),
                &strategy,
                |b, &strategy| {
                    b.iter(|| {
                        black_box(
                            ParallelTrainer::new(&task, config.clone(), strategy).train(&table),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig9b);
criterion_main!(benches);
