//! Figure 8 bench: per-epoch cost of the three ordering policies on sparse
//! LR, including the reshuffle cost ShuffleAlways pays every epoch.

use bismarck_core::tasks::LogisticRegressionTask;
use bismarck_core::{StepSizeSchedule, Trainer, TrainerConfig};
use bismarck_datagen::{sparse_classification, SparseClassificationConfig};
use bismarck_storage::ScanOrder;
use bismarck_uda::ConvergenceTest;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let table = sparse_classification(
        "dblife",
        SparseClassificationConfig {
            examples: 2_000,
            vocabulary: 8_000,
            ..Default::default()
        },
    );
    let dim = bismarck_core::frontend::infer_dimension(&table, 1);
    let task = LogisticRegressionTask::new(1, 2, dim);

    let mut group = c.benchmark_group("fig8_ordering_four_epochs");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (label, order) in [
        ("shuffle_always", ScanOrder::ShuffleAlways { seed: 8 }),
        ("shuffle_once", ScanOrder::ShuffleOnce { seed: 8 }),
        ("clustered", ScanOrder::Clustered),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &order, |b, &order| {
            let config = TrainerConfig::default()
                .with_scan_order(order)
                .with_step_size(StepSizeSchedule::Constant(0.2))
                .with_convergence(ConvergenceTest::FixedEpochs(4));
            b.iter(|| black_box(Trainer::new(&task, config.clone()).train(&table)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
