//! Figure 10(B) bench: fixed-epoch training time of Subsampling vs MRS at
//! several reservoir buffer sizes on clustered sparse LR data.

use bismarck_core::mrs::subsampling_train;
use bismarck_core::tasks::LogisticRegressionTask;
use bismarck_core::{MrsConfig, MrsTrainer, StepSizeSchedule};
use bismarck_datagen::{sparse_classification, SparseClassificationConfig};
use bismarck_uda::ConvergenceTest;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig10b(c: &mut Criterion) {
    let table = sparse_classification(
        "dblife",
        SparseClassificationConfig {
            examples: 2_000,
            vocabulary: 8_000,
            ..Default::default()
        },
    );
    let dim = bismarck_core::frontend::infer_dimension(&table, 1);
    let task = LogisticRegressionTask::new(1, 2, dim);
    let epochs = 5;

    let mut group = c.benchmark_group("fig10b_buffer_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for buffer in [100usize, 200, 400] {
        group.bench_with_input(
            BenchmarkId::new("subsampling", buffer),
            &buffer,
            |b, &buffer| {
                b.iter(|| {
                    black_box(subsampling_train(
                        &task,
                        &table,
                        buffer,
                        StepSizeSchedule::Constant(0.1),
                        ConvergenceTest::FixedEpochs(epochs),
                        7,
                    ))
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("mrs", buffer), &buffer, |b, &buffer| {
            let config = MrsConfig {
                buffer_size: buffer,
                step_size: StepSizeSchedule::Constant(0.1),
                convergence: ConvergenceTest::FixedEpochs(epochs),
                seed: 7,
                memory_worker: true,
                ..MrsConfig::default()
            };
            b.iter(|| black_box(MrsTrainer::new(&task, config).train(&table)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10b);
criterion_main!(benches);
