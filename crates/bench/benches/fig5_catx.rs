//! Figure 5 bench: time for IGD to converge (w² < 0.001) on the 1-D CA-TX
//! least-squares problem under a random vs the clustered visit order.

use bismarck_core::model::{DenseModelStore, ModelStore};
use bismarck_core::task::IgdTask;
use bismarck_core::tasks::LeastSquaresTask;
use bismarck_datagen::ca_tx_table;
use bismarck_storage::ScanOrder;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn epochs_to_converge(order: ScanOrder, n: usize, max_epochs: usize) -> usize {
    let table = ca_tx_table(n);
    let task = LeastSquaresTask::new(1, 2, 1);
    let mut store = DenseModelStore::new(vec![1.0]);
    for epoch in 0..max_epochs {
        let alpha = 1.0 / (1.0 + epoch as f64);
        match order.permutation(table.len(), epoch) {
            Some(perm) => {
                for tuple in table.scan_permuted(&perm) {
                    task.gradient_step(&mut store, tuple, alpha);
                }
            }
            None => {
                for tuple in table.scan() {
                    task.gradient_step(&mut store, tuple, alpha);
                }
            }
        }
        let w = store.read(0);
        if w * w < 0.001 {
            return epoch + 1;
        }
    }
    max_epochs
}

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_catx_time_to_converge");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (label, order) in [
        ("random", ScanOrder::ShuffleAlways { seed: 5 }),
        ("clustered", ScanOrder::Clustered),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &order, |b, &order| {
            b.iter(|| black_box(epochs_to_converge(order, 500, 100)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
