//! Figure 7(A) bench: end-to-end training time of Bismarck's IGD against the
//! batch baselines (IRLS for LR, batch subgradient for SVM, ALS for LMF) on
//! reduced versions of the Forest / DBLife / MovieLens workloads.

use bismarck_baselines::{
    als::als_train, batch_svm_train, irls_train, AlsConfig, BatchGradientConfig, IrlsConfig,
};
use bismarck_core::tasks::{LmfTask, LogisticRegressionTask, SvmTask};
use bismarck_core::{StepSizeSchedule, Trainer, TrainerConfig};
use bismarck_datagen::{
    dense_classification, ratings_table, sparse_classification, DenseClassificationConfig,
    RatingsConfig, SparseClassificationConfig,
};
use bismarck_storage::ScanOrder;
use bismarck_uda::ConvergenceTest;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bismarck_config(epochs: usize) -> TrainerConfig {
    TrainerConfig::default()
        .with_scan_order(ScanOrder::ShuffleOnce { seed: 1 })
        .with_step_size(StepSizeSchedule::Diminishing { initial: 0.5 })
        .with_convergence(ConvergenceTest::paper_default(epochs))
}

fn bench_fig7a(c: &mut Criterion) {
    let forest = dense_classification(
        "forest",
        DenseClassificationConfig {
            examples: 2_000,
            dimension: 54,
            ..Default::default()
        },
    );
    let dblife = sparse_classification(
        "dblife",
        SparseClassificationConfig {
            examples: 1_000,
            vocabulary: 8_000,
            ..Default::default()
        },
    );
    let movielens = ratings_table(
        "movielens",
        RatingsConfig {
            rows: 150,
            cols: 100,
            ratings: 6_000,
            ..Default::default()
        },
    );
    let forest_dim = bismarck_core::frontend::infer_dimension(&forest, 1);
    let dblife_dim = bismarck_core::frontend::infer_dimension(&dblife, 1);

    let mut group = c.benchmark_group("fig7a_end_to_end");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    group.bench_function("forest_lr/bismarck", |b| {
        let task = LogisticRegressionTask::new(1, 2, forest_dim);
        b.iter(|| black_box(Trainer::new(&task, bismarck_config(10)).train(&forest)))
    });
    group.bench_function("forest_lr/irls", |b| {
        b.iter(|| black_box(irls_train(&forest, IrlsConfig::new(1, 2, forest_dim))))
    });
    group.bench_function("forest_svm/bismarck", |b| {
        let task = SvmTask::new(1, 2, forest_dim);
        b.iter(|| black_box(Trainer::new(&task, bismarck_config(10)).train(&forest)))
    });
    group.bench_function("forest_svm/batch", |b| {
        b.iter(|| {
            black_box(batch_svm_train(
                &forest,
                BatchGradientConfig {
                    iterations: 40,
                    ..BatchGradientConfig::new(1, 2, forest_dim)
                },
            ))
        })
    });
    group.bench_function("dblife_svm/bismarck", |b| {
        let task = SvmTask::new(1, 2, dblife_dim);
        b.iter(|| black_box(Trainer::new(&task, bismarck_config(10)).train(&dblife)))
    });
    group.bench_function("dblife_svm/batch", |b| {
        b.iter(|| {
            black_box(batch_svm_train(
                &dblife,
                BatchGradientConfig {
                    iterations: 40,
                    ..BatchGradientConfig::new(1, 2, dblife_dim)
                },
            ))
        })
    });
    group.bench_function("movielens_lmf/bismarck", |b| {
        let task = LmfTask::new(0, 1, 2, 150, 100, 10);
        let config = bismarck_config(10).with_step_size(StepSizeSchedule::Constant(0.02));
        b.iter(|| black_box(Trainer::new(&task, config.clone()).train(&movielens)))
    });
    group.bench_function("movielens_lmf/als", |b| {
        b.iter(|| {
            black_box(als_train(
                &movielens,
                AlsConfig {
                    sweeps: 8,
                    ..AlsConfig::new(150, 100, 10)
                },
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fig7a);
criterion_main!(benches);
