//! Per-tuple transition-kernel benchmark for the zero-copy gradient hot path.
//!
//! The paper's argument (Section 3.1, Figure 4) is that every IGD task
//! reduces to three tight kernels run once per tuple per epoch, so the
//! per-tuple constant factor *is* the system's performance. This bench pins
//! that constant down on the two feature shapes of Table 1:
//!
//! * **dense d=54** — the Forest covertype layout;
//! * **sparse nnz≈30** over a ~41k vocabulary — the DBLife layout;
//!
//! and compares, per shape, the **pre-refactor cloning path** (owned
//! `FeatureVector` clone per tuple + `Box<dyn Iterator>` entries +
//! per-coordinate virtual `read`/`update` calls — reimplemented here verbatim
//! as the baseline) against the **view/kernel path** the tasks now use
//! (borrowed `FeatureVectorRef` + bulk `dot_view`/`axpy_view` store kernels).
//!
//! Results are printed and written to `BENCH_hotpath.json` at the workspace
//! root so the perf trajectory of the hot path is recorded PR over PR. Run
//! with `cargo bench -p bismarck-bench --bench kernels` (release profile).

use std::hint::black_box;
use std::time::Instant;

use bismarck_core::model::{DenseModelStore, ModelStore};
use bismarck_core::task::IgdTask;
use bismarck_core::tasks::LogisticRegressionTask;
use bismarck_datagen::{
    dense_classification, sparse_classification, DenseClassificationConfig,
    SparseClassificationConfig,
};
use bismarck_linalg::ops::sigmoid;
use bismarck_storage::{Table, Tuple};

const FEATURES_COL: usize = 1;
const LABEL_COL: usize = 2;
const ALPHA: f64 = 0.01;

/// The pre-refactor LR transition, kept as the measurement baseline: clone
/// the feature payload out of the tuple, walk it twice through boxed
/// iterators, and touch the model one coordinate at a time through the dyn
/// store. This is what `gradient_step` compiled to before the refactor.
fn cloning_lr_transition(model: &mut dyn ModelStore, tuple: &Tuple, alpha: f64) {
    let Some(view) = tuple.feature_view(FEATURES_COL) else {
        return;
    };
    let x = view.to_owned(); // the per-tuple heap clone the refactor removed
    let Some(y) = tuple.get_double(LABEL_COL) else {
        return;
    };
    let boxed_entries =
        || -> Box<dyn Iterator<Item = (usize, f64)> + '_> { Box::new(x.iter_entries()) };
    let mut wx = 0.0;
    for (i, v) in boxed_entries() {
        if i < model.len() {
            wx += model.read(i) * v;
        }
    }
    let c = alpha * y * sigmoid(-wx * y);
    for (i, v) in boxed_entries() {
        if i < model.len() {
            model.update(i, c * v);
        }
    }
}

/// Best-of-N epoch timing for one transition implementation.
fn measure_epochs<F>(table: &Table, dim: usize, samples: usize, mut transition: F) -> f64
where
    F: FnMut(&mut dyn ModelStore, &Tuple),
{
    let mut store = DenseModelStore::zeros(dim);
    // Warm-up epochs: touch every tuple, fault pages, warm caches.
    for _ in 0..3 {
        for tuple in table.scan() {
            transition(&mut store, tuple);
        }
    }
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        for tuple in table.scan() {
            transition(&mut store, tuple);
        }
        let elapsed = start.elapsed().as_secs_f64();
        black_box(store.as_slice());
        best = best.min(elapsed);
    }
    best
}

struct ShapeResult {
    name: &'static str,
    tuples: usize,
    cloned_ns_per_tuple: f64,
    kernel_ns_per_tuple: f64,
}

impl ShapeResult {
    fn speedup(&self) -> f64 {
        self.cloned_ns_per_tuple / self.kernel_ns_per_tuple
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"shape\": \"{}\",\n",
                "      \"tuples_per_epoch\": {},\n",
                "      \"cloned_percoord_ns_per_tuple\": {:.2},\n",
                "      \"view_kernel_ns_per_tuple\": {:.2},\n",
                "      \"cloned_percoord_tuples_per_sec\": {:.0},\n",
                "      \"view_kernel_tuples_per_sec\": {:.0},\n",
                "      \"speedup\": {:.3}\n",
                "    }}"
            ),
            self.name,
            self.tuples,
            self.cloned_ns_per_tuple,
            self.kernel_ns_per_tuple,
            1e9 / self.cloned_ns_per_tuple,
            1e9 / self.kernel_ns_per_tuple,
            self.speedup(),
        )
    }
}

fn bench_shape(name: &'static str, table: &Table, dim: usize, samples: usize) -> ShapeResult {
    let task = LogisticRegressionTask::new(FEATURES_COL, LABEL_COL, dim);
    let tuples = table.len();
    let cloned = measure_epochs(table, dim, samples, |store, tuple| {
        cloning_lr_transition(store, tuple, ALPHA)
    });
    let kernel = measure_epochs(table, dim, samples, |store, tuple| {
        task.gradient_step(store, tuple, ALPHA)
    });
    let result = ShapeResult {
        name,
        tuples,
        cloned_ns_per_tuple: cloned * 1e9 / tuples as f64,
        kernel_ns_per_tuple: kernel * 1e9 / tuples as f64,
    };
    eprintln!(
        "  {name}: cloned {:.1} ns/tuple, view-kernel {:.1} ns/tuple, speedup {:.2}x",
        result.cloned_ns_per_tuple,
        result.kernel_ns_per_tuple,
        result.speedup()
    );
    result
}

fn main() {
    eprintln!("per-tuple LR transition cost (best epoch of many)");

    let dense = dense_classification(
        "forest_like",
        DenseClassificationConfig {
            examples: 20_000,
            dimension: 54,
            ..Default::default()
        },
    );
    let sparse = sparse_classification(
        "dblife_like",
        SparseClassificationConfig {
            examples: 10_000,
            vocabulary: 41_000,
            avg_nnz: 30,
            ..Default::default()
        },
    );
    let sparse_dim = bismarck_core::frontend::infer_dimension(&sparse, FEATURES_COL);

    let results = [
        bench_shape("dense_lr_d54", &dense, 54, 30),
        bench_shape("sparse_lr_nnz30", &sparse, sparse_dim, 30),
    ];

    let body: Vec<String> = results.iter().map(ShapeResult::json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"kernels\",\n",
            "  \"description\": \"per-tuple LR transition: pre-refactor cloning path vs zero-copy view/kernel path\",\n",
            "  \"profile\": \"{}\",\n",
            "  \"shapes\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
        body.join(",\n"),
    );

    // crates/bench -> workspace root.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_hotpath.json");
    match std::fs::write(&out, &json) {
        Ok(()) => eprintln!("wrote {}", out.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
    print!("{json}");
}
