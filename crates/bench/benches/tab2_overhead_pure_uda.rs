//! Table 2 bench: single-iteration runtime of the NULL aggregate vs the LR,
//! SVM and LMF tasks under the pure-UDA (ordinary aggregate) execution path.

use bismarck_core::igd::IgdAggregate;
use bismarck_core::task::IgdTask;
use bismarck_core::tasks::{LmfTask, LogisticRegressionTask, SvmTask};
use bismarck_datagen::{
    dense_classification, ratings_table, sparse_classification, DenseClassificationConfig,
    RatingsConfig, SparseClassificationConfig,
};
use bismarck_storage::{NullAggregate, Table};
use bismarck_uda::run_sequential;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn forest_small() -> Table {
    dense_classification(
        "forest",
        DenseClassificationConfig {
            examples: 2_000,
            dimension: 54,
            ..Default::default()
        },
    )
}

fn dblife_small() -> Table {
    sparse_classification(
        "dblife",
        SparseClassificationConfig {
            examples: 1_000,
            vocabulary: 8_000,
            ..Default::default()
        },
    )
}

fn movielens_small() -> Table {
    ratings_table(
        "movielens",
        RatingsConfig {
            rows: 200,
            cols: 150,
            ratings: 8_000,
            ..Default::default()
        },
    )
}

fn one_epoch<T: IgdTask>(task: &T, table: &Table) {
    let aggregate = IgdAggregate::new(task, 0.01, task.initial_model());
    black_box(run_sequential(&aggregate, table, None));
}

fn bench_table2(c: &mut Criterion) {
    let forest = forest_small();
    let dblife = dblife_small();
    let movielens = movielens_small();
    let forest_dim = bismarck_core::frontend::infer_dimension(&forest, 1);
    let dblife_dim = bismarck_core::frontend::infer_dimension(&dblife, 1);

    let mut group = c.benchmark_group("tab2_pure_uda_single_iteration");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    group.bench_function("forest/null", |b| {
        b.iter(|| black_box(NullAggregate::run_epoch(&forest)))
    });
    group.bench_function("forest/lr", |b| {
        let task = LogisticRegressionTask::new(1, 2, forest_dim);
        b.iter(|| one_epoch(&task, &forest))
    });
    group.bench_function("forest/svm", |b| {
        let task = SvmTask::new(1, 2, forest_dim);
        b.iter(|| one_epoch(&task, &forest))
    });
    group.bench_function("dblife/null", |b| {
        b.iter(|| black_box(NullAggregate::run_epoch(&dblife)))
    });
    group.bench_function("dblife/lr", |b| {
        let task = LogisticRegressionTask::new(1, 2, dblife_dim);
        b.iter(|| one_epoch(&task, &dblife))
    });
    group.bench_function("dblife/svm", |b| {
        let task = SvmTask::new(1, 2, dblife_dim);
        b.iter(|| one_epoch(&task, &dblife))
    });
    group.bench_function("movielens/null", |b| {
        b.iter(|| black_box(NullAggregate::run_epoch(&movielens)))
    });
    group.bench_function("movielens/lmf", |b| {
        let task = LmfTask::new(0, 1, 2, 200, 150, 10);
        b.iter(|| one_epoch(&task, &movielens))
    });

    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
