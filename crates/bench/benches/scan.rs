//! Dense-scan throughput: row-store vs columnar, in-memory vs paged.
//!
//! The columnar engine's pitch is that a training epoch is a *scan*, and a
//! scan over per-column chunks beats a scan over heap tuples twice over:
//! the tuple path still pays per-row dispatch but touches cache-friendly
//! column storage, and the dense fast path (`scan_dense_column`) hands the
//! aggregate whole contiguous `f64` slices, so a sum or dot product runs at
//! memory bandwidth. The paged variants measure the same scans when sealed
//! segments live on disk behind the LRU chunk cache (cache far smaller than
//! the dataset), which is the out-of-core training configuration.
//!
//! Four scans over the same logical rows (dense d=54, Forest-like):
//!
//! * `row_tuples` — row-store `Table` through the `TupleScan` surface;
//! * `columnar_tuples` — in-memory `ColumnarTable` through the same surface;
//! * `columnar_dense_column` — in-memory columnar per-segment slice scan;
//! * `paged_tuples` / `paged_dense_column` — the same columnar table backed
//!   by on-disk segments with a cache holding 1/8 of them.
//!
//! Results are printed and written to `BENCH_scan.json` at the workspace
//! root. Run with `cargo bench -p bismarck-bench --bench scan`.

use std::hint::black_box;
use std::time::Instant;

use bismarck_datagen::{dense_classification, DenseClassificationConfig};
use bismarck_storage::{ColumnarTable, Table, TupleScan};

const FEATURES_COL: usize = 1;
const EXAMPLES: usize = 40_000;
const DIMENSION: usize = 54;
const CHUNK_CAPACITY: usize = 1024;
const SAMPLES: usize = 20;

/// Best-of-N wall time for one full pass of `scan`.
fn measure<F: FnMut() -> f64>(samples: usize, mut scan: F) -> f64 {
    // Warm-up: fault pages, warm the chunk cache to steady state.
    for _ in 0..3 {
        black_box(scan());
    }
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        let sum = scan();
        let elapsed = start.elapsed().as_secs_f64();
        black_box(sum);
        best = best.min(elapsed);
    }
    best
}

/// Sum every dense feature coordinate through the per-tuple scan surface.
fn tuple_scan_sum<S: TupleScan + ?Sized>(source: &S) -> f64 {
    let mut sum = 0.0;
    source.scan_tuples(&mut |tuple| {
        if let Some(view) = tuple.feature_view(FEATURES_COL) {
            for (_, v) in view.iter_entries() {
                sum += v;
            }
        }
    });
    sum
}

/// The same sum through the columnar dense fast path: whole segment slices,
/// eight running accumulators so the adds vectorize instead of serializing
/// on one dependency chain.
fn dense_column_sum(table: &ColumnarTable) -> f64 {
    let mut acc = [0.0f64; 8];
    table
        .scan_dense_column(FEATURES_COL, &mut |slice| {
            let mut chunks = slice.chunks_exact(8);
            for chunk in &mut chunks {
                for (a, v) in acc.iter_mut().zip(chunk) {
                    *a += v;
                }
            }
            acc[0] += chunks.remainder().iter().sum::<f64>();
        })
        .expect("dense column scan");
    acc.iter().sum()
}

struct ScanResult {
    name: &'static str,
    seconds: f64,
}

impl ScanResult {
    fn ns_per_tuple(&self) -> f64 {
        self.seconds * 1e9 / EXAMPLES as f64
    }

    fn gb_per_sec(&self) -> f64 {
        let bytes = (EXAMPLES * DIMENSION * std::mem::size_of::<f64>()) as f64;
        bytes / self.seconds / 1e9
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"scan\": \"{}\",\n",
                "      \"ns_per_tuple\": {:.2},\n",
                "      \"tuples_per_sec\": {:.0},\n",
                "      \"feature_gb_per_sec\": {:.3}\n",
                "    }}"
            ),
            self.name,
            self.ns_per_tuple(),
            EXAMPLES as f64 / self.seconds,
            self.gb_per_sec(),
        )
    }
}

fn report(name: &'static str, seconds: f64) -> ScanResult {
    let result = ScanResult { name, seconds };
    eprintln!(
        "  {name}: {:.1} ns/tuple, {:.2} GB/s of features",
        result.ns_per_tuple(),
        result.gb_per_sec()
    );
    result
}

fn main() {
    eprintln!("dense scan throughput, {EXAMPLES} rows x d={DIMENSION} (best of {SAMPLES} passes)");

    let row_table: Table = dense_classification(
        "forest_like",
        DenseClassificationConfig {
            examples: EXAMPLES,
            dimension: DIMENSION,
            ..Default::default()
        },
    );
    let columnar = ColumnarTable::from_table(&row_table).expect("columnar conversion");
    let expected = tuple_scan_sum(&row_table);
    assert!(
        (tuple_scan_sum(&columnar) - expected).abs() <= 1e-9 * expected.abs(),
        "columnar scan disagrees with row-store scan"
    );

    let dir = std::env::temp_dir().join(format!("bismarck_bench_scan_{}", std::process::id()));
    let mut paged = ColumnarTable::create_paged(
        "forest_paged",
        row_table.schema().clone(),
        &dir,
        CHUNK_CAPACITY,
        // Hold 1/8 of the segments: most fetches go to disk, prefetch hides
        // part of the latency. This is the "larger than memory" shape.
        (EXAMPLES / CHUNK_CAPACITY / 8).max(1),
    )
    .expect("create paged table");
    for tuple in row_table.scan() {
        paged.insert(tuple.values().to_vec()).expect("paged insert");
    }
    paged.flush().expect("paged flush");

    let results = [
        report(
            "row_tuples",
            measure(SAMPLES, || tuple_scan_sum(&row_table)),
        ),
        report(
            "columnar_tuples",
            measure(SAMPLES, || tuple_scan_sum(&columnar)),
        ),
        report(
            "columnar_dense_column",
            measure(SAMPLES, || dense_column_sum(&columnar)),
        ),
        report("paged_tuples", measure(SAMPLES, || tuple_scan_sum(&paged))),
        report(
            "paged_dense_column",
            measure(SAMPLES, || dense_column_sum(&paged)),
        ),
    ];

    let stats = paged.pager_stats().expect("paged table has a pager");
    eprintln!(
        "  pager: {} hits, {} misses, {} evictions, {} prefetches",
        stats.hits, stats.misses, stats.evictions, stats.prefetches
    );

    let body: Vec<String> = results.iter().map(ScanResult::json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"scan\",\n",
            "  \"description\": \"dense feature scan: row-store tuples vs columnar tuples vs columnar dense slices, in-memory and paged\",\n",
            "  \"profile\": \"{}\",\n",
            "  \"rows\": {},\n",
            "  \"dimension\": {},\n",
            "  \"chunk_capacity\": {},\n",
            "  \"pager\": {{\n",
            "    \"hits\": {},\n",
            "    \"misses\": {},\n",
            "    \"evictions\": {},\n",
            "    \"prefetches\": {}\n",
            "  }},\n",
            "  \"scans\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
        EXAMPLES,
        DIMENSION,
        CHUNK_CAPACITY,
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.prefetches,
        body.join(",\n"),
    );

    std::fs::remove_dir_all(&dir).ok();

    // crates/bench -> workspace root.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_scan.json");
    match std::fs::write(&out, &json) {
        Ok(()) => eprintln!("wrote {}", out.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
    print!("{json}");
}
