//! Synthetic dataset generators shaped like the paper's workloads (Table 1).
//!
//! The original evaluation uses Forest, DBLife, MovieLens, CoNLL, two large
//! synthetic sets (Classify300M, Matrix5B) and DBLP. Those exact files are
//! not redistributable here, so each generator produces data with the same
//! *shape* — dimensionality, sparsity, label structure, clustering — scaled
//! to sizes that run on a laptop. The experiments only depend on those shape
//! properties (see DESIGN.md for the substitution argument).
//!
//! All generators are deterministic given their seed.

pub mod classification;
pub mod ratings;
pub mod sequences;
pub mod series;
pub mod stats;

pub use crate::classification::{
    ca_tx_table, dense_classification, sparse_classification, DenseClassificationConfig,
    SparseClassificationConfig,
};
pub use crate::ratings::{ratings_table, RatingsConfig};
pub use crate::sequences::{labeled_sequences, SequenceConfig};
pub use crate::series::{returns_table, timeseries_table, ReturnsConfig, TimeSeriesConfig};
pub use crate::stats::{dataset_stats, DatasetStats};

/// Standard column layout of generated classification tables:
/// `(id INT, vec DENSE_VEC | SPARSE_VEC, label DOUBLE)`.
pub const CLASSIFICATION_FEATURES_COL: usize = 1;
/// Position of the label column in generated classification tables.
pub const CLASSIFICATION_LABEL_COL: usize = 2;

/// Standard column layout of generated rating tables:
/// `(row INT, col INT, rating DOUBLE)`.
pub const RATINGS_ROW_COL: usize = 0;
/// Position of the column index in generated rating tables.
pub const RATINGS_COL_COL: usize = 1;
/// Position of the rating value in generated rating tables.
pub const RATINGS_VALUE_COL: usize = 2;

/// Position of the sentence column in generated sequence tables.
pub const SEQUENCE_COL: usize = 0;
