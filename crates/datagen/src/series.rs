//! Time-series and asset-return generators for the Kalman and portfolio
//! tasks of Figure 1(B).

use bismarck_storage::{Column, DataType, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Configuration of the noisy time-series generator (Kalman smoothing).
#[derive(Debug, Clone, Copy)]
pub struct TimeSeriesConfig {
    /// Number of timesteps.
    pub horizon: usize,
    /// Dimensionality of each observation.
    pub state_dim: usize,
    /// Amplitude of the smooth underlying signal.
    pub amplitude: f64,
    /// Standard deviation of the observation noise.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TimeSeriesConfig {
    fn default() -> Self {
        TimeSeriesConfig {
            horizon: 200,
            state_dim: 2,
            amplitude: 1.0,
            noise: 0.3,
            seed: 31,
        }
    }
}

/// Generate a `(t INT, obs DENSE_VEC)` table of noisy observations of a
/// smooth (sinusoidal) latent signal.
pub fn timeseries_table(name: &str, config: TimeSeriesConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = Schema::new(vec![
        Column::new("t", DataType::Int),
        Column::new("obs", DataType::DenseVec),
    ])
    .expect("static schema is valid");
    let mut table = Table::new(name, schema);
    for t in 0..config.horizon {
        let phase = t as f64 / config.horizon.max(1) as f64 * std::f64::consts::TAU;
        let obs: Vec<f64> = (0..config.state_dim)
            .map(|k| {
                config.amplitude * (phase + k as f64).sin()
                    + rng.gen_range(-config.noise..config.noise.max(1e-12))
            })
            .collect();
        table
            .insert(vec![Value::Int(t as i64), Value::from(obs)])
            .expect("generated row matches schema");
    }
    table
}

/// Configuration of the asset-return generator (portfolio optimization).
#[derive(Debug, Clone)]
pub struct ReturnsConfig {
    /// Number of trading days.
    pub days: usize,
    /// Per-asset mean daily return.
    pub mean_returns: Vec<f64>,
    /// Per-asset return volatility (standard deviation).
    pub volatilities: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReturnsConfig {
    fn default() -> Self {
        ReturnsConfig {
            days: 250,
            mean_returns: vec![0.08, 0.03, 0.05, 0.01],
            volatilities: vec![0.25, 0.05, 0.12, 0.01],
            seed: 37,
        }
    }
}

impl ReturnsConfig {
    /// Number of assets.
    pub fn num_assets(&self) -> usize {
        self.mean_returns.len()
    }
}

/// Generate a `(returns DENSE_VEC)` table of daily asset returns with the
/// configured means and volatilities (independent assets, uniform noise).
pub fn returns_table(name: &str, config: &ReturnsConfig) -> Table {
    assert_eq!(
        config.mean_returns.len(),
        config.volatilities.len(),
        "means and volatilities must agree in length"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema =
        Schema::new(vec![Column::new("returns", DataType::DenseVec)]).expect("valid schema");
    let mut table = Table::new(name, schema);
    for _ in 0..config.days {
        let r: Vec<f64> = config
            .mean_returns
            .iter()
            .zip(config.volatilities.iter())
            .map(|(&m, &v)| m + if v > 0.0 { rng.gen_range(-v..v) } else { 0.0 })
            .collect();
        table
            .insert(vec![Value::from(r)])
            .expect("generated row matches schema");
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeseries_has_one_row_per_timestep() {
        let config = TimeSeriesConfig {
            horizon: 50,
            state_dim: 3,
            ..Default::default()
        };
        let t = timeseries_table("ts", config);
        assert_eq!(t.len(), 50);
        for (i, row) in t.scan().enumerate() {
            assert_eq!(row.get_int(0), Some(i as i64));
            assert_eq!(row.feature_view(1).unwrap().dimension(), 3);
        }
    }

    #[test]
    fn timeseries_amplitude_bounds_observations() {
        let config = TimeSeriesConfig {
            horizon: 100,
            state_dim: 1,
            amplitude: 2.0,
            noise: 0.1,
            seed: 3,
        };
        let t = timeseries_table("amp", config);
        assert!(t
            .scan()
            .all(|r| r.feature_view(1).unwrap().dot(&[1.0]).abs() <= 2.1 + 1e-9));
    }

    #[test]
    fn returns_match_asset_count_and_means() {
        let config = ReturnsConfig::default();
        let t = returns_table("rets", &config);
        assert_eq!(t.len(), 250);
        let n = config.num_assets();
        let mut sums = vec![0.0; n];
        for row in t.scan() {
            let r = row.feature_view(0).unwrap().to_dense(n);
            for (s, v) in sums.iter_mut().zip(r.as_slice()) {
                *s += v;
            }
        }
        for (k, s) in sums.iter().enumerate() {
            let mean = s / 250.0;
            assert!(
                (mean - config.mean_returns[k]).abs() < config.volatilities[k] / 2.0 + 0.02,
                "asset {k} empirical mean {mean}"
            );
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = timeseries_table("a", TimeSeriesConfig::default());
        let b = timeseries_table("b", TimeSeriesConfig::default());
        assert_eq!(
            a.get(7).unwrap().feature_view(1),
            b.get(7).unwrap().feature_view(1)
        );
        let ra = returns_table("a", &ReturnsConfig::default());
        let rb = returns_table("b", &ReturnsConfig::default());
        assert_eq!(
            ra.get(3).unwrap().feature_view(0),
            rb.get(3).unwrap().feature_view(0)
        );
    }

    #[test]
    #[should_panic(expected = "agree in length")]
    fn mismatched_returns_config_panics() {
        let config = ReturnsConfig {
            mean_returns: vec![0.1],
            volatilities: vec![0.1, 0.2],
            ..Default::default()
        };
        returns_table("bad", &config);
    }
}
