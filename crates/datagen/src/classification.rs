//! Classification datasets: dense (Forest-like), sparse (DBLife-like) and
//! the exact 1-D CA-TX example of Section 3.2.

use bismarck_linalg::SparseVector;
use bismarck_storage::{Column, DataType, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn classification_schema(sparse: bool) -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new(
            "vec",
            if sparse {
                DataType::SparseVec
            } else {
                DataType::DenseVec
            },
        ),
        Column::new("label", DataType::Double),
    ])
    .expect("static schema is valid")
}

/// Configuration of the dense (Forest-like) classification generator.
#[derive(Debug, Clone, Copy)]
pub struct DenseClassificationConfig {
    /// Number of examples.
    pub examples: usize,
    /// Feature dimensionality (Forest has 54 attributes).
    pub dimension: usize,
    /// Fraction of examples with label +1.
    pub positive_fraction: f64,
    /// Gap between the class means relative to the noise scale; larger means
    /// more separable.
    pub separation: f64,
    /// If true, the table is stored clustered by label (+1 block before −1
    /// block) — the pathological in-RDBMS ordering of Section 3.2. If false,
    /// classes are interleaved in storage order.
    pub clustered_by_label: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DenseClassificationConfig {
    fn default() -> Self {
        DenseClassificationConfig {
            examples: 10_000,
            dimension: 54,
            positive_fraction: 0.5,
            separation: 1.0,
            clustered_by_label: true,
            seed: 7,
        }
    }
}

/// Generate a dense classification table shaped like the Forest dataset.
///
/// Columns: `(id INT, vec DENSE_VEC, label DOUBLE)`; labels are ±1.
pub fn dense_classification(name: &str, config: DenseClassificationConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rows: Vec<(Vec<f64>, f64)> = Vec::with_capacity(config.examples);
    let positives = (config.examples as f64 * config.positive_fraction).round() as usize;
    // A random (but fixed) direction separates the classes; remaining
    // dimensions are noise, like the mostly-uninformative cartographic
    // attributes of Forest.
    let direction: Vec<f64> = (0..config.dimension)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();
    let norm: f64 = direction
        .iter()
        .map(|v| v * v)
        .sum::<f64>()
        .sqrt()
        .max(1e-9);
    for i in 0..config.examples {
        let label = if i < positives { 1.0 } else { -1.0 };
        let x: Vec<f64> = direction
            .iter()
            .map(|&d| label * config.separation * d / norm + rng.gen_range(-1.0..1.0))
            .collect();
        rows.push((x, label));
    }
    if !config.clustered_by_label {
        // Interleave by a deterministic shuffle.
        let mut order: Vec<usize> = (0..rows.len()).collect();
        use rand::seq::SliceRandom;
        order.shuffle(&mut rng);
        rows = order.into_iter().map(|i| rows[i].clone()).collect();
    }
    let mut table = Table::new(name, classification_schema(false));
    for (i, (x, y)) in rows.into_iter().enumerate() {
        table
            .insert(vec![Value::Int(i as i64), Value::from(x), Value::Double(y)])
            .expect("generated row matches schema");
    }
    table
}

/// Configuration of the sparse (DBLife-like) classification generator.
#[derive(Debug, Clone, Copy)]
pub struct SparseClassificationConfig {
    /// Number of examples (DBLife has ~16k documents).
    pub examples: usize,
    /// Vocabulary size (DBLife has ~41k features).
    pub vocabulary: usize,
    /// Average number of non-zero features per example.
    pub avg_nnz: usize,
    /// Number of vocabulary terms that are predictive of the label.
    pub informative: usize,
    /// If true, store all +1 examples before all −1 examples.
    pub clustered_by_label: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SparseClassificationConfig {
    fn default() -> Self {
        SparseClassificationConfig {
            examples: 4_000,
            vocabulary: 20_000,
            avg_nnz: 40,
            informative: 200,
            clustered_by_label: true,
            seed: 11,
        }
    }
}

/// Generate a sparse (bag-of-words-like) classification table shaped like
/// DBLife: high-dimensional, very sparse rows, labels ±1.
///
/// Two properties matter for the ordering experiments (Section 3.2 /
/// Figure 8) and are modelled explicitly:
///
/// * every document carries an intercept-like feature (index 0, think of a
///   document-length or bias token) that both classes share;
/// * a third of the informative vocabulary is *shared* between the classes
///   (common research-area words), so gradient steps taken on one class's
///   block of documents drag the shared weights — and therefore the other
///   class's predictions — with them. This is what makes the clustered
///   (label-sorted) storage order genuinely slower to converge, exactly the
///   CA-TX phenomenon.
pub fn sparse_classification(name: &str, config: SparseClassificationConfig) -> Table {
    assert!(
        config.vocabulary > config.informative,
        "vocabulary must exceed informative terms"
    );
    assert!(
        config.informative >= 3,
        "need at least three informative terms"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rows: Vec<(SparseVector, f64)> = Vec::with_capacity(config.examples);
    // Informative vocabulary layout: [1, shared) is shared between classes,
    // then equal private blocks for the positive and negative class. Index 0
    // is the intercept.
    let shared_end = 1 + (config.informative - 1) / 3;
    let private = (config.informative - shared_end) / 2;
    for i in 0..config.examples {
        let label = if i < config.examples / 2 { 1.0 } else { -1.0 };
        let nnz = rng.gen_range((config.avg_nnz / 2).max(1)..=config.avg_nnz * 3 / 2);
        let mut pairs: Vec<(usize, f64)> = Vec::with_capacity(nnz + 1);
        // Intercept token present in every document.
        pairs.push((0, 1.0));
        for _ in 0..nnz {
            let roll: f64 = rng.gen();
            let idx = if roll < 0.25 {
                // shared informative vocabulary
                1 + rng.gen_range(0..shared_end.saturating_sub(1).max(1))
            } else if roll < 0.5 {
                // class-private informative vocabulary
                let base = if label > 0.0 {
                    shared_end
                } else {
                    shared_end + private
                };
                base + rng.gen_range(0..private.max(1))
            } else {
                // background vocabulary
                config.informative + rng.gen_range(0..config.vocabulary - config.informative)
            };
            pairs.push((idx, 1.0 + rng.gen_range(0.0..1.0)));
        }
        rows.push((SparseVector::from_pairs(pairs), label));
    }
    if !config.clustered_by_label {
        use rand::seq::SliceRandom;
        rows.shuffle(&mut rng);
    }
    let mut table = Table::new(name, classification_schema(true));
    for (i, (x, y)) in rows.into_iter().enumerate() {
        table
            .insert(vec![Value::Int(i as i64), Value::from(x), Value::Double(y)])
            .expect("generated row matches schema");
    }
    table
}

/// The exact 1-D CA-TX dataset of Example 2.1 / 3.1: `2n` points with
/// `x_i = 1`, the first `n` labeled `+1` and the rest `−1`, stored clustered.
pub fn ca_tx_table(n: usize) -> Table {
    let mut table = Table::new("ca_tx", classification_schema(false));
    for i in 0..2 * n {
        let label = if i < n { 1.0 } else { -1.0 };
        table
            .insert(vec![
                Value::Int(i as i64),
                Value::from(vec![1.0]),
                Value::Double(label),
            ])
            .expect("generated row matches schema");
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_generator_honours_config() {
        let config = DenseClassificationConfig {
            examples: 200,
            dimension: 10,
            positive_fraction: 0.25,
            ..DenseClassificationConfig::default()
        };
        let t = dense_classification("forest_small", config);
        assert_eq!(t.len(), 200);
        let positives = t.scan().filter(|r| r.get_double(2) == Some(1.0)).count();
        assert_eq!(positives, 50);
        assert!(t
            .scan()
            .all(|r| r.feature_view(1).map(|f| f.dimension()) == Some(10)));
    }

    #[test]
    fn dense_generator_is_deterministic() {
        let config = DenseClassificationConfig {
            examples: 50,
            dimension: 5,
            ..Default::default()
        };
        let a = dense_classification("a", config);
        let b = dense_classification("b", config);
        for (ra, rb) in a.scan().zip(b.scan()) {
            assert_eq!(ra.feature_view(1), rb.feature_view(1));
        }
    }

    #[test]
    fn clustered_flag_controls_storage_order() {
        let clustered = dense_classification(
            "c",
            DenseClassificationConfig {
                examples: 100,
                dimension: 4,
                ..Default::default()
            },
        );
        let labels: Vec<f64> = clustered.scan().map(|r| r.get_double(2).unwrap()).collect();
        // All +1s precede all -1s.
        let first_neg = labels.iter().position(|&l| l < 0.0).unwrap();
        assert!(labels[first_neg..].iter().all(|&l| l < 0.0));

        let shuffled = dense_classification(
            "s",
            DenseClassificationConfig {
                examples: 100,
                dimension: 4,
                clustered_by_label: false,
                ..Default::default()
            },
        );
        let labels: Vec<f64> = shuffled.scan().map(|r| r.get_double(2).unwrap()).collect();
        let transitions = labels.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(transitions > 5, "interleaved labels should alternate often");
    }

    #[test]
    fn dense_classes_are_linearly_separable_in_expectation() {
        let config = DenseClassificationConfig {
            examples: 400,
            dimension: 8,
            separation: 2.0,
            ..Default::default()
        };
        let t = dense_classification("sep", config);
        // Mean positive vector and mean negative vector should differ.
        let mut pos = vec![0.0; 8];
        let mut neg = vec![0.0; 8];
        for row in t.scan() {
            let x = row.feature_view(1).unwrap().to_dense(8);
            let target = if row.get_double(2).unwrap() > 0.0 {
                &mut pos
            } else {
                &mut neg
            };
            for (t, v) in target.iter_mut().zip(x.as_slice()) {
                *t += v;
            }
        }
        let diff: f64 = pos.iter().zip(neg.iter()).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 10.0, "class means should differ, diff={diff}");
    }

    #[test]
    fn sparse_generator_shapes() {
        let config = SparseClassificationConfig {
            examples: 300,
            vocabulary: 5_000,
            avg_nnz: 20,
            informative: 100,
            ..Default::default()
        };
        let t = sparse_classification("dblife_small", config);
        assert_eq!(t.len(), 300);
        let max_dim = t
            .scan()
            .map(|r| r.feature_view(1).unwrap().dimension())
            .max()
            .unwrap();
        assert!(max_dim <= 5_000);
        let avg_nnz: f64 = t
            .scan()
            .map(|r| r.feature_view(1).unwrap().nnz() as f64)
            .sum::<f64>()
            / 300.0;
        assert!((10.0..=35.0).contains(&avg_nnz), "avg nnz {avg_nnz}");
    }

    #[test]
    fn sparse_generator_is_deterministic_and_clusterable() {
        let config = SparseClassificationConfig {
            examples: 100,
            ..Default::default()
        };
        let a = sparse_classification("a", config);
        let b = sparse_classification("b", config);
        assert_eq!(
            a.get(3).unwrap().feature_view(1),
            b.get(3).unwrap().feature_view(1)
        );
        let labels: Vec<f64> = a.scan().map(|r| r.get_double(2).unwrap()).collect();
        let first_neg = labels.iter().position(|&l| l < 0.0).unwrap();
        assert!(labels[first_neg..].iter().all(|&l| l < 0.0));
    }

    #[test]
    fn ca_tx_matches_paper_construction() {
        let t = ca_tx_table(500);
        assert_eq!(t.len(), 1000);
        assert!(t.scan().take(500).all(|r| r.get_double(2) == Some(1.0)));
        assert!(t.scan().skip(500).all(|r| r.get_double(2) == Some(-1.0)));
        assert!(t
            .scan()
            .all(|r| r.feature_view(1).unwrap().dot(&[1.0]) == 1.0));
    }
}
