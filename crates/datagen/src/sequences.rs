//! Labeled token sequences shaped like the CoNLL-2000 chunking data.
//!
//! Each generated row is one sentence: a sequence of (sparse observation
//! features, gold label) pairs. Observation features correlate with the
//! label (like word identity / capitalization features in text chunking) and
//! labels follow a Markov chain (like BIO chunk tags), so both the state and
//! the transition weights of a linear-chain CRF are informative.

use bismarck_linalg::SparseVector;
use bismarck_storage::{Column, DataType, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Configuration of the sequence generator.
#[derive(Debug, Clone, Copy)]
pub struct SequenceConfig {
    /// Number of sentences (CoNLL has ~9k).
    pub sentences: usize,
    /// Minimum sentence length in tokens.
    pub min_tokens: usize,
    /// Maximum sentence length in tokens.
    pub max_tokens: usize,
    /// Number of distinct observation features.
    pub num_features: usize,
    /// Number of labels (CoNLL chunking uses a handful of BIO tags).
    pub num_labels: usize,
    /// Number of features per token.
    pub features_per_token: usize,
    /// Probability that a token keeps the previous token's label (Markov
    /// self-transition; makes transition weights informative).
    pub label_stickiness: f64,
    /// Probability that each emitted feature is drawn from the label's own
    /// feature block rather than background vocabulary.
    pub feature_fidelity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SequenceConfig {
    fn default() -> Self {
        SequenceConfig {
            sentences: 1_000,
            min_tokens: 5,
            max_tokens: 25,
            num_features: 2_000,
            num_labels: 5,
            features_per_token: 6,
            label_stickiness: 0.6,
            feature_fidelity: 0.7,
            seed: 23,
        }
    }
}

/// Generate a one-column `(sentence SEQUENCE)` table of labeled sequences.
pub fn labeled_sequences(name: &str, config: SequenceConfig) -> Table {
    assert!(config.num_labels > 0, "need at least one label");
    assert!(
        config.min_tokens > 0 && config.max_tokens >= config.min_tokens,
        "bad token range"
    );
    assert!(
        config.num_features >= config.num_labels,
        "need at least one feature per label block"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let block = config.num_features / config.num_labels;
    let schema =
        Schema::new(vec![Column::new("sentence", DataType::Sequence)]).expect("valid schema");
    let mut table = Table::new(name, schema);
    for _ in 0..config.sentences {
        let len = rng.gen_range(config.min_tokens..=config.max_tokens);
        let mut label = rng.gen_range(0..config.num_labels) as u32;
        let mut sentence = Vec::with_capacity(len);
        for _ in 0..len {
            if !rng.gen_bool(config.label_stickiness) {
                label = rng.gen_range(0..config.num_labels) as u32;
            }
            let mut pairs = Vec::with_capacity(config.features_per_token);
            for _ in 0..config.features_per_token {
                let idx = if rng.gen_bool(config.feature_fidelity) {
                    // label-specific block
                    label as usize * block + rng.gen_range(0..block.max(1))
                } else {
                    rng.gen_range(0..config.num_features)
                };
                pairs.push((idx, 1.0));
            }
            sentence.push((SparseVector::from_pairs(pairs), label));
        }
        table
            .insert(vec![Value::Sequence(sentence)])
            .expect("generated row matches schema");
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_sentences_with_valid_labels() {
        let config = SequenceConfig {
            sentences: 50,
            ..Default::default()
        };
        let t = labeled_sequences("conll_small", config);
        assert_eq!(t.len(), 50);
        for row in t.scan() {
            let seq = row.get_sequence(0).unwrap();
            assert!((config.min_tokens..=config.max_tokens).contains(&seq.len()));
            for (features, label) in seq {
                assert!((*label as usize) < config.num_labels);
                assert!(features.nnz() >= 1);
                assert!(features.dimension() <= config.num_features);
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let config = SequenceConfig {
            sentences: 10,
            ..Default::default()
        };
        let a = labeled_sequences("a", config);
        let b = labeled_sequences("b", config);
        for (ra, rb) in a.scan().zip(b.scan()) {
            assert_eq!(ra.get_sequence(0), rb.get_sequence(0));
        }
    }

    #[test]
    fn labels_are_sticky() {
        let config = SequenceConfig {
            sentences: 100,
            label_stickiness: 0.9,
            min_tokens: 20,
            max_tokens: 20,
            ..Default::default()
        };
        let t = labeled_sequences("sticky", config);
        let mut same = 0usize;
        let mut total = 0usize;
        for row in t.scan() {
            let seq = row.get_sequence(0).unwrap();
            for w in seq.windows(2) {
                total += 1;
                if w[0].1 == w[1].1 {
                    same += 1;
                }
            }
        }
        let frac = same as f64 / total as f64;
        assert!(frac > 0.8, "self-transition fraction {frac}");
    }

    #[test]
    fn features_identify_labels_in_expectation() {
        let config = SequenceConfig {
            sentences: 200,
            feature_fidelity: 1.0,
            num_features: 100,
            num_labels: 4,
            ..Default::default()
        };
        let block = 100 / 4;
        let t = labeled_sequences("faithful", config);
        for row in t.scan() {
            for (features, label) in row.get_sequence(0).unwrap() {
                for (idx, _) in features.iter() {
                    assert_eq!(idx / block, *label as usize);
                }
            }
        }
    }
}
