//! Dataset statistics in the style of Table 1.

use bismarck_storage::Table;

/// A Table 1 style row: dataset name, dimensionality, example count and
/// approximate size.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset / table name.
    pub name: String,
    /// Human-readable dimension description (e.g. `"54"` or `"6k x 4k"`).
    pub dimension: String,
    /// Number of examples (rows).
    pub examples: usize,
    /// Approximate size in bytes.
    pub bytes: usize,
}

impl DatasetStats {
    /// Approximate size rendered like the paper's Table 1 (`"77M"`, `"2.7M"`).
    pub fn size_label(&self) -> String {
        let b = self.bytes as f64;
        if b >= 1e9 {
            format!("{:.1}G", b / 1e9)
        } else if b >= 1e6 {
            format!("{:.1}M", b / 1e6)
        } else if b >= 1e3 {
            format!("{:.1}K", b / 1e3)
        } else {
            format!("{}B", self.bytes)
        }
    }
}

/// Compute statistics for a generated table. `dimension` is supplied by the
/// caller because it is a property of the workload (e.g. `"6k x 4k"` for a
/// rating matrix), not derivable from the rows alone.
pub fn dataset_stats(table: &Table, dimension: impl Into<String>) -> DatasetStats {
    DatasetStats {
        name: table.name().to_string(),
        dimension: dimension.into(),
        examples: table.len(),
        bytes: table.approx_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classification::{dense_classification, DenseClassificationConfig};

    #[test]
    fn stats_reflect_table_contents() {
        let config = DenseClassificationConfig {
            examples: 100,
            dimension: 10,
            ..Default::default()
        };
        let table = dense_classification("forest_tiny", config);
        let stats = dataset_stats(&table, "10");
        assert_eq!(stats.name, "forest_tiny");
        assert_eq!(stats.examples, 100);
        assert_eq!(stats.dimension, "10");
        // 100 rows x (8 id + 10*8+16 vec + 8 label) ~ 11k bytes
        assert!(
            stats.bytes > 5_000 && stats.bytes < 50_000,
            "bytes {}",
            stats.bytes
        );
    }

    #[test]
    fn size_labels_scale() {
        let mk = |bytes| DatasetStats {
            name: "x".into(),
            dimension: "1".into(),
            examples: 0,
            bytes,
        };
        assert_eq!(mk(500).size_label(), "500B");
        assert_eq!(mk(2_500).size_label(), "2.5K");
        assert_eq!(mk(77_000_000).size_label(), "77.0M");
        assert_eq!(mk(3_000_000_000).size_label(), "3.0G");
    }
}
