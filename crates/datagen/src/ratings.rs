//! Rating-matrix datasets shaped like MovieLens / Matrix5B.
//!
//! The generator plants a true low-rank structure (`M = Lᵀ R` plus noise) and
//! samples a sparse subset of cells, so LMF should be able to drive the
//! squared error down to the noise floor — which is exactly the property the
//! LMF experiments rely on.

use bismarck_storage::{Column, DataType, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Configuration of the ratings generator.
#[derive(Debug, Clone, Copy)]
pub struct RatingsConfig {
    /// Number of rows (users).
    pub rows: usize,
    /// Number of columns (items).
    pub cols: usize,
    /// Number of observed ratings to sample.
    pub ratings: usize,
    /// True latent rank of the planted structure.
    pub true_rank: usize,
    /// Standard deviation of the additive observation noise.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RatingsConfig {
    fn default() -> Self {
        RatingsConfig {
            rows: 600,
            cols: 400,
            ratings: 20_000,
            true_rank: 5,
            noise: 0.1,
            seed: 13,
        }
    }
}

/// Generate a `(row INT, col INT, rating DOUBLE)` table of sparse ratings
/// with planted low-rank structure.
pub fn ratings_table(name: &str, config: RatingsConfig) -> Table {
    assert!(
        config.rows > 0 && config.cols > 0,
        "matrix must be non-empty"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let l: Vec<Vec<f64>> = (0..config.rows)
        .map(|_| {
            (0..config.true_rank)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect()
        })
        .collect();
    let r: Vec<Vec<f64>> = (0..config.cols)
        .map(|_| {
            (0..config.true_rank)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect()
        })
        .collect();

    let schema = Schema::new(vec![
        Column::new("row", DataType::Int),
        Column::new("col", DataType::Int),
        Column::new("rating", DataType::Double),
    ])
    .expect("static schema is valid");
    let mut table = Table::new(name, schema);
    for _ in 0..config.ratings {
        let i = rng.gen_range(0..config.rows);
        let j = rng.gen_range(0..config.cols);
        let clean: f64 = l[i].iter().zip(r[j].iter()).map(|(a, b)| a * b).sum();
        let noisy = clean
            + if config.noise > 0.0 {
                rng.gen_range(-config.noise..config.noise)
            } else {
                0.0
            };
        table
            .insert(vec![
                Value::Int(i as i64),
                Value::Int(j as i64),
                Value::Double(noisy),
            ])
            .expect("generated row matches schema");
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_number_of_ratings() {
        let config = RatingsConfig {
            rows: 20,
            cols: 15,
            ratings: 500,
            ..Default::default()
        };
        let t = ratings_table("ml_small", config);
        assert_eq!(t.len(), 500);
        for row in t.scan() {
            let i = row.get_int(0).unwrap();
            let j = row.get_int(1).unwrap();
            assert!((0..20).contains(&i));
            assert!((0..15).contains(&j));
            assert!(row.get_double(2).unwrap().is_finite());
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let config = RatingsConfig {
            rows: 10,
            cols: 10,
            ratings: 100,
            ..Default::default()
        };
        let a = ratings_table("a", config);
        let b = ratings_table("b", config);
        for (ra, rb) in a.scan().zip(b.scan()) {
            assert_eq!(ra.get_int(0), rb.get_int(0));
            assert_eq!(ra.get_double(2), rb.get_double(2));
        }
    }

    #[test]
    fn ratings_are_bounded_by_planted_structure() {
        // |rating| <= true_rank * 1 + noise since factors are in [-1, 1].
        let config = RatingsConfig {
            rows: 30,
            cols: 30,
            ratings: 1000,
            true_rank: 3,
            noise: 0.2,
            seed: 5,
        };
        let t = ratings_table("bounded", config);
        assert!(t
            .scan()
            .all(|r| r.get_double(2).unwrap().abs() <= 3.0 + 0.2 + 1e-9));
    }

    #[test]
    fn zero_noise_gives_exactly_low_rank_values() {
        let config = RatingsConfig {
            rows: 5,
            cols: 5,
            ratings: 50,
            true_rank: 2,
            noise: 0.0,
            seed: 9,
        };
        let t = ratings_table("exact", config);
        // Re-generate and check both passes agree (the clean value is a pure
        // function of (i, j) and the seed).
        let t2 = ratings_table("exact2", config);
        for (a, b) in t.scan().zip(t2.scan()) {
            assert_eq!(a.get_double(2), b.get_double(2));
        }
    }
}
