//! Fault-injection harness (compiled only with the `fault-injection`
//! feature).
//!
//! Wraps any [`IgdTask`] and injects a configured fault at the K-th gradient
//! step, counted globally across epochs and workers with an atomic counter.
//! Because the counter keeps advancing past K, each configured fault fires
//! exactly once — so a run that recovers (restores the last-good snapshot
//! and backs off the step size) proceeds cleanly afterwards, which is
//! precisely the scenario the recovery paths need to prove.
//!
//! This module exists for tests; nothing in the fault-free hot path touches
//! it, and it is absent from release builds unless the feature is enabled.

use std::sync::atomic::{AtomicU64, Ordering};

use bismarck_storage::Tuple;

use crate::model::ModelStore;
use crate::task::{IgdTask, ProximalPolicy};

/// What to inject, and at which global gradient-step count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside `gradient_step` at step K (0-based).
    PanicAtStep(u64),
    /// Overwrite model component 0 with `NaN` at step K, poisoning the model
    /// so the post-epoch divergence scan trips.
    NanGradientAtStep(u64),
}

/// An [`IgdTask`] decorator that injects one fault at a chosen step.
#[derive(Debug)]
pub struct FaultyTask<T> {
    inner: T,
    fault: Fault,
    steps: AtomicU64,
}

impl<T: IgdTask> FaultyTask<T> {
    /// Wrap `inner`, arming `fault`.
    pub fn new(inner: T, fault: Fault) -> Self {
        FaultyTask {
            inner,
            fault,
            steps: AtomicU64::new(0),
        }
    }

    /// Gradient steps observed so far (across all epochs and workers).
    pub fn steps_taken(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }
}

impl<T: IgdTask> IgdTask for FaultyTask<T> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn dimension(&self) -> usize {
        self.inner.dimension()
    }

    fn initial_model(&self) -> Vec<f64> {
        self.inner.initial_model()
    }

    fn gradient_step(&self, model: &mut dyn ModelStore, tuple: &Tuple, alpha: f64) {
        let step = self.steps.fetch_add(1, Ordering::Relaxed);
        match self.fault {
            Fault::PanicAtStep(k) if step == k => {
                panic!("injected fault: panic at gradient step {k}")
            }
            Fault::NanGradientAtStep(k) if step == k => {
                self.inner.gradient_step(model, tuple, alpha);
                model.write(0, f64::NAN);
            }
            _ => self.inner.gradient_step(model, tuple, alpha),
        }
    }

    fn example_loss(&self, model: &[f64], tuple: &Tuple) -> f64 {
        self.inner.example_loss(model, tuple)
    }

    fn regularizer(&self, model: &[f64]) -> f64 {
        self.inner.regularizer(model)
    }

    fn proximal_step(&self, model: &mut [f64], alpha: f64) {
        self.inner.proximal_step(model, alpha)
    }

    fn proximal_policy(&self) -> ProximalPolicy {
        self.inner.proximal_policy()
    }
}
