//! **Bismarck**: a unified architecture for in-RDBMS analytics, reproduced in Rust.
//!
//! The paper's central claim (Feng, Kumar, Recht, Ré — SIGMOD 2012) is that a
//! wide range of analytics tasks are convex programs solvable by incremental
//! gradient descent (IGD), and that IGD's data-access pattern is exactly that
//! of a SQL user-defined aggregate. A single architecture therefore suffices:
//! the *state* of the aggregate is the model, the *transition* function takes
//! one gradient step on one tuple, and the aggregate is re-run over the table
//! (one *epoch* per run) until a convergence test fires.
//!
//! This crate provides:
//!
//! * [`task::IgdTask`] — the handful of functions a developer writes to add a
//!   new analytics technique ("as little as ten lines of C code" in the
//!   paper; comparably small here, see [`tasks::svm`] vs [`tasks::logistic`]);
//! * the [`tasks`] module — every task from Figure 1(B): logistic regression,
//!   SVM classification, low-rank matrix factorization, conditional random
//!   fields, least squares / Kalman smoothing, and portfolio optimization;
//! * [`igd::IgdAggregate`] — IGD packaged as a UDA (initialize / transition /
//!   terminate / merge);
//! * [`trainer::Trainer`] — the epoch loop with data-ordering policies
//!   (clustered, shuffle-once, shuffle-always) from Section 3.2;
//! * [`parallel`] — the pure-UDA (model averaging) and shared-memory (Lock /
//!   AIG / NoLock a.k.a. Hogwild) parallelization schemes of Section 3.3;
//! * [`mrs`] — multiplexed reservoir sampling for data that cannot be
//!   shuffled (Section 3.4);
//! * [`frontend`] — `SVMTrain`-style entry points that read a training table
//!   from a [`bismarck_storage::Database`] and persist the model back as a
//!   table, mimicking the MADlib-style SQL interface of Section 2.1;
//! * [`serving`] — the concurrent read path: epoch-versioned model
//!   snapshots published by the trainers ([`TrainerConfig::with_serving`])
//!   and batched prediction against them while training runs;
//! * [`governor`] — per-statement resource governance: deadlines,
//!   cooperative cancellation via [`QueryGuard`], byte-accounted memory
//!   budgets, admission control and graceful shutdown.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod error;
pub mod evaluation;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod frontend;
pub mod governor;
pub mod igd;
pub mod metrics;
pub mod model;
pub mod mrs;
pub mod parallel;
pub mod serving;
pub mod stepsize;
pub mod task;
pub mod tasks;
pub mod trainer;

pub use crate::checkpoint::TrainingCheckpoint;
pub use crate::error::TrainError;
#[cfg(feature = "fault-injection")]
pub use crate::fault::{Fault, FaultyTask};
pub use crate::governor::{
    AdmissionError, BudgetExceeded, Governor, GuardViolation, MemoryBudget, QueryGuard,
    QueryLimits, ShutdownReport,
};
pub use crate::igd::{IgdAggregate, IgdState};
pub use crate::model::{AigStore, DenseModelStore, ModelStore, NoLockStore};
pub use crate::mrs::{MrsConfig, MrsTrainer};
pub use crate::parallel::{ParallelStrategy, ParallelTrainer, UpdateDiscipline};
pub use crate::serving::{Link, ModelHandle, ModelSnapshot, PublishError, ServingTask};
pub use crate::stepsize::StepSizeSchedule;
pub use crate::task::{IgdTask, ProximalPolicy};
pub use crate::trainer::{BackoffPolicy, CheckpointPolicy, TrainedModel, Trainer, TrainerConfig};
