//! Concurrent model serving: epoch-versioned snapshots and batched
//! prediction while training runs.
//!
//! The paper's architecture lives *inside* an RDBMS, where queries score
//! tuples against models while training continues in the background. This
//! module is that read path: a [`ModelHandle`] is a publication point the
//! trainer pushes a fresh [`ModelSnapshot`] through after every healthy
//! epoch (see [`crate::TrainerConfig::with_serving`]), and any number of
//! reader threads pull the latest snapshot and score feature vectors against
//! it — through the same [`ModelStore::dot_view`] slice kernels the gradient
//! hot path uses.
//!
//! # Publication protocol
//!
//! The handle keeps **two** snapshot slots and an atomic index saying which
//! one is live. A publish writes the new `Arc<ModelSnapshot>` into the
//! *inactive* slot, flips the index, then advances the published-version
//! counter; readers therefore never wait on an in-progress publish — the
//! slot they read is by construction not the one being written. The per-slot
//! mutex guards nothing but the `Arc` pointer swap (a few instructions), and
//! a reader that catches a torn view of the index (seeing the version
//! counter advance past the slot it just read) simply retries, which
//! guarantees each reader observes **monotonically non-decreasing
//! versions**.
//!
//! Only finite models can be published: [`ModelHandle::publish`] rejects any
//! weight vector containing a NaN or infinity, and the trainers only publish
//! epochs that passed their divergence scan — so a served model is never
//! non-finite, even while a run is mid-backoff.
//!
//! # Example
//!
//! ```
//! use bismarck_core::serving::{ModelHandle, ServingTask};
//! use bismarck_linalg::FeatureVectorRef;
//!
//! let handle = ModelHandle::new(ServingTask::Logistic, 3);
//! handle.publish(&[0.5, -0.25, 0.0]).unwrap();
//!
//! let batch = [
//!     FeatureVectorRef::Dense(&[1.0, 0.0, 2.0]),
//!     FeatureVectorRef::Dense(&[0.0, 4.0, 0.0]),
//! ];
//! let mut probs = Vec::new();
//! let snapshot = handle.predict_batch(&batch, &mut probs);
//! assert_eq!(snapshot.version(), 1);
//! assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use bismarck_linalg::{sigmoid, FeatureVectorRef};
use parking_lot::Mutex;

use crate::governor::{GuardViolation, QueryGuard};
use crate::model::{DenseModelStore, ModelStore};

/// How many rows a guarded batch predict scores between guard polls: small
/// enough that a cancel or deadline is observed promptly, large enough that
/// the poll is invisible next to the dot products it amortizes over.
const GUARD_CHECK_INTERVAL: usize = 1024;

/// Link function mapping a raw linear score `wᵀx` to a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Link {
    /// The raw score itself (least-squares value, SVM margin).
    Identity,
    /// `1 / (1 + e^{-wᵀx})` — logistic-regression class-1 probability.
    Sigmoid,
    /// `sign(wᵀx)` as ±1 (0 stays 0) — SVM class label.
    Sign,
}

impl Link {
    /// Apply the link to a raw score.
    #[inline]
    pub fn apply(self, score: f64) -> f64 {
        match self {
            Link::Identity => score,
            Link::Sigmoid => sigmoid(score),
            Link::Sign => {
                if score > 0.0 {
                    1.0
                } else if score < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Which task family a served model belongs to; determines the default link
/// applied by [`ModelSnapshot::predict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingTask {
    /// Logistic regression: predictions are class-1 probabilities.
    Logistic,
    /// SVM classification: predictions are the class sign (±1); use
    /// [`ModelSnapshot::predict_with`] with [`Link::Identity`] for the raw
    /// margin.
    Svm,
    /// Least squares / generic linear models: predictions are the raw value.
    LeastSquares,
}

impl ServingTask {
    /// The link [`ModelSnapshot::predict`] applies for this task.
    pub fn default_link(self) -> Link {
        match self {
            ServingTask::Logistic => Link::Sigmoid,
            ServingTask::Svm => Link::Sign,
            ServingTask::LeastSquares => Link::Identity,
        }
    }

    /// Human-readable task name (`"LR"`, `"SVM"`, `"LS"`).
    pub fn label(self) -> &'static str {
        match self {
            ServingTask::Logistic => "LR",
            ServingTask::Svm => "SVM",
            ServingTask::LeastSquares => "LS",
        }
    }
}

/// An immutable, versioned copy of a model as published to a
/// [`ModelHandle`].
///
/// Snapshots are shared via `Arc`, so holding one is cheap and never blocks
/// the trainer: a reader scoring a long batch keeps scoring against the
/// version it acquired while newer epochs publish concurrently.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSnapshot {
    version: u64,
    task: ServingTask,
    store: DenseModelStore,
}

impl ModelSnapshot {
    /// A free-standing snapshot not tied to any handle (version 0) — used
    /// for models loaded back from persisted tables.
    pub fn detached(task: ServingTask, weights: Vec<f64>) -> Self {
        ModelSnapshot {
            version: 0,
            task,
            store: DenseModelStore::new(weights),
        }
    }

    /// Publication version: 0 for the handle's initial model, incremented on
    /// every successful [`ModelHandle::publish`].
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The task family the snapshot serves.
    pub fn task(&self) -> ServingTask {
        self.task
    }

    /// Model dimension.
    pub fn dimension(&self) -> usize {
        self.store.len()
    }

    /// The model weights.
    pub fn weights(&self) -> &[f64] {
        self.store.as_slice()
    }

    /// Raw linear score `wᵀx`, computed through the dense slice kernel
    /// ([`ModelStore::dot_view`]); entries past the model dimension
    /// contribute zero.
    #[inline]
    pub fn score(&self, x: FeatureVectorRef<'_>) -> f64 {
        self.store.dot_view(x)
    }

    /// Score one feature vector through the task's default link
    /// (LR → probability, SVM → ±1 class, LS → raw value).
    #[inline]
    pub fn predict(&self, x: FeatureVectorRef<'_>) -> f64 {
        self.task.default_link().apply(self.score(x))
    }

    /// Score one feature vector through an explicit link (e.g.
    /// [`Link::Identity`] for an SVM margin).
    #[inline]
    pub fn predict_with(&self, x: FeatureVectorRef<'_>, link: Link) -> f64 {
        link.apply(self.score(x))
    }
}

/// Why a [`ModelHandle::publish`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PublishError {
    /// The weight vector contains a NaN or infinity. Serving a non-finite
    /// model is never acceptable; the trainer-side divergence scan should
    /// have caught this before publishing.
    NonFinite,
    /// The weight vector's length does not match the handle's dimension.
    DimensionMismatch {
        /// Dimension the handle was created with.
        expected: usize,
        /// Length of the rejected weight vector.
        got: usize,
    },
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::NonFinite => {
                write!(f, "refusing to publish a model with non-finite weights")
            }
            PublishError::DimensionMismatch { expected, got } => write!(
                f,
                "model has {got} weights, the serving handle expects {expected}"
            ),
        }
    }
}

impl std::error::Error for PublishError {}

/// The slots-plus-index state shared by all clones of a handle.
#[derive(Debug)]
struct HandleShared {
    task: ServingTask,
    dimension: usize,
    /// Version of the most recently *completed* publish. Stored with
    /// `Release` after the active-slot flip, so a reader that observes
    /// version `v` is guaranteed to find a snapshot with version `>= v`
    /// behind the active index.
    version: AtomicU64,
    /// Index of the live slot (0 or 1).
    active: AtomicUsize,
    /// Double-buffered snapshots: publishes write the inactive slot, so a
    /// reader never waits on a publish in progress.
    slots: [Mutex<Arc<ModelSnapshot>>; 2],
    /// Serializes writers (multiple publishers would otherwise race the
    /// read-modify-write of `active`/`version`). Readers never take this.
    publish: Mutex<()>,
}

/// The publication point connecting one trainer to any number of prediction
/// readers.
///
/// Cloning a handle is cheap (an `Arc` clone) and every clone addresses the
/// same underlying slots: hand one clone to
/// [`crate::TrainerConfig::with_serving`] and keep others on the serving
/// threads. See the [module docs](self) for the publication protocol and its
/// guarantees.
#[derive(Debug, Clone)]
pub struct ModelHandle {
    shared: Arc<HandleShared>,
}

impl ModelHandle {
    /// A handle serving a zero model of dimension `dimension` at version 0
    /// (predictions are well-defined before the first publish: a zero model
    /// scores every vector as 0).
    pub fn new(task: ServingTask, dimension: usize) -> Self {
        let initial = Arc::new(ModelSnapshot {
            version: 0,
            task,
            store: DenseModelStore::zeros(dimension),
        });
        ModelHandle {
            shared: Arc::new(HandleShared {
                task,
                dimension,
                version: AtomicU64::new(0),
                active: AtomicUsize::new(0),
                slots: [Mutex::new(Arc::clone(&initial)), Mutex::new(initial)],
                publish: Mutex::new(()),
            }),
        }
    }

    /// A handle whose version-0 snapshot is `initial` (e.g. a task's
    /// [`crate::task::IgdTask::initial_model`], or a model loaded from a
    /// checkpoint). Rejects non-finite weights.
    pub fn with_initial(task: ServingTask, initial: Vec<f64>) -> Result<Self, PublishError> {
        if !initial.iter().all(|v| v.is_finite()) {
            return Err(PublishError::NonFinite);
        }
        let dimension = initial.len();
        let snapshot = Arc::new(ModelSnapshot {
            version: 0,
            task,
            store: DenseModelStore::new(initial),
        });
        Ok(ModelHandle {
            shared: Arc::new(HandleShared {
                task,
                dimension,
                version: AtomicU64::new(0),
                active: AtomicUsize::new(0),
                slots: [Mutex::new(Arc::clone(&snapshot)), Mutex::new(snapshot)],
                publish: Mutex::new(()),
            }),
        })
    }

    /// The task family this handle serves.
    pub fn task(&self) -> ServingTask {
        self.shared.task
    }

    /// Model dimension every published weight vector must match.
    pub fn dimension(&self) -> usize {
        self.shared.dimension
    }

    /// Version of the most recently published snapshot (0 until the first
    /// publish).
    pub fn version(&self) -> u64 {
        self.shared.version.load(Ordering::Acquire)
    }

    /// Publish a new model, returning its version.
    ///
    /// Rejects non-finite weights ([`PublishError::NonFinite`]) and length
    /// mismatches ([`PublishError::DimensionMismatch`]); on `Err` the served
    /// snapshot is unchanged. Readers concurrently calling
    /// [`Self::snapshot`] see either the previous snapshot or the new one,
    /// never a torn mix.
    pub fn publish(&self, weights: &[f64]) -> Result<u64, PublishError> {
        if weights.len() != self.shared.dimension {
            return Err(PublishError::DimensionMismatch {
                expected: self.shared.dimension,
                got: weights.len(),
            });
        }
        if !weights.iter().all(|v| v.is_finite()) {
            return Err(PublishError::NonFinite);
        }
        let _writer = self.shared.publish.lock();
        let version = self.shared.version.load(Ordering::Relaxed) + 1;
        let snapshot = Arc::new(ModelSnapshot {
            version,
            task: self.shared.task,
            store: DenseModelStore::new(weights.to_vec()),
        });
        // Write the inactive slot, flip, then advance the version counter.
        // The Release store on `version` orders both prior writes, so a
        // reader acquiring version v also sees the flip that published v.
        let inactive = 1 - self.shared.active.load(Ordering::Relaxed);
        *self.shared.slots[inactive].lock() = snapshot;
        self.shared.active.store(inactive, Ordering::Release);
        self.shared.version.store(version, Ordering::Release);
        Ok(version)
    }

    /// Acquire the latest published snapshot.
    ///
    /// Never blocks on a publish in progress (publishes write the slot this
    /// call is *not* reading). Retries on the narrow race where the active
    /// index is observed before a concurrent flip completes, which makes the
    /// versions observed by any single reader monotonically non-decreasing.
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        loop {
            let version = self.shared.version.load(Ordering::Acquire);
            let active = self.shared.active.load(Ordering::Acquire);
            let snapshot = Arc::clone(&self.shared.slots[active].lock());
            if snapshot.version >= version {
                return snapshot;
            }
        }
    }

    /// Score a batch of feature vectors against one consistent snapshot,
    /// using the task's default link; amortizes snapshot acquisition across
    /// the whole batch and reuses `out`'s allocation.
    ///
    /// Returns the snapshot the batch was scored against, so callers can
    /// report which model version produced the predictions.
    pub fn predict_batch(
        &self,
        features: &[FeatureVectorRef<'_>],
        out: &mut Vec<f64>,
    ) -> Arc<ModelSnapshot> {
        let snapshot = self.snapshot();
        out.clear();
        out.extend(features.iter().map(|&x| snapshot.predict(x)));
        snapshot
    }

    /// [`Self::predict_batch`] with an explicit link (e.g. SVM margins via
    /// [`Link::Identity`]).
    pub fn predict_batch_with(
        &self,
        features: &[FeatureVectorRef<'_>],
        link: Link,
        out: &mut Vec<f64>,
    ) -> Arc<ModelSnapshot> {
        let snapshot = self.snapshot();
        out.clear();
        out.extend(features.iter().map(|&x| snapshot.predict_with(x, link)));
        snapshot
    }

    /// Governed [`Self::predict_batch`]: scores under a
    /// [`QueryGuard`], polling it before the batch and every
    /// thousand-or-so rows within it, so a cancelled guard (including one
    /// cancelled by [`crate::governor::Governor::shutdown`]) or a passed
    /// deadline stops the batch promptly instead of scoring to the end.
    ///
    /// On `Err`, `out` holds the rows scored before the stop — callers
    /// wanting all-or-nothing semantics should discard it.
    pub fn try_predict_batch(
        &self,
        guard: &QueryGuard,
        features: &[FeatureVectorRef<'_>],
        out: &mut Vec<f64>,
    ) -> Result<Arc<ModelSnapshot>, GuardViolation> {
        out.clear();
        guard.check()?;
        let snapshot = self.snapshot();
        for chunk in features.chunks(GUARD_CHECK_INTERVAL) {
            guard.check()?;
            out.extend(chunk.iter().map(|&x| snapshot.predict(x)));
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_handle_serves_version_zero() {
        let handle = ModelHandle::new(ServingTask::LeastSquares, 3);
        assert_eq!(handle.version(), 0);
        assert_eq!(handle.dimension(), 3);
        let snap = handle.snapshot();
        assert_eq!(snap.version(), 0);
        assert_eq!(snap.weights(), &[0.0, 0.0, 0.0]);
        assert_eq!(snap.predict(FeatureVectorRef::Dense(&[5.0, 5.0, 5.0])), 0.0);
    }

    #[test]
    fn publish_bumps_version_and_swaps_the_snapshot() {
        let handle = ModelHandle::new(ServingTask::LeastSquares, 2);
        let before = handle.snapshot();
        assert_eq!(handle.publish(&[1.0, 2.0]).unwrap(), 1);
        assert_eq!(handle.publish(&[3.0, 4.0]).unwrap(), 2);
        let after = handle.snapshot();
        assert_eq!(after.version(), 2);
        assert_eq!(after.weights(), &[3.0, 4.0]);
        // The old snapshot is immutable: holders keep scoring against it.
        assert_eq!(before.weights(), &[0.0, 0.0]);
    }

    #[test]
    fn publish_rejects_non_finite_and_wrong_dimension() {
        let handle = ModelHandle::new(ServingTask::Logistic, 2);
        assert_eq!(
            handle.publish(&[1.0, f64::NAN]),
            Err(PublishError::NonFinite)
        );
        assert_eq!(
            handle.publish(&[1.0, f64::INFINITY]),
            Err(PublishError::NonFinite)
        );
        assert_eq!(
            handle.publish(&[1.0]),
            Err(PublishError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        );
        // Rejected publishes leave the served snapshot untouched.
        assert_eq!(handle.version(), 0);
        assert_eq!(handle.snapshot().weights(), &[0.0, 0.0]);
        assert!(ModelHandle::with_initial(ServingTask::Svm, vec![f64::NAN]).is_err());
    }

    #[test]
    fn links_apply_per_task() {
        let weights = vec![1.0, -1.0];
        let x = FeatureVectorRef::Dense(&[2.0, 0.0]); // score 2.0
        let lr = ModelSnapshot::detached(ServingTask::Logistic, weights.clone());
        assert!((lr.predict(x) - sigmoid(2.0)).abs() < 1e-15);
        let svm = ModelSnapshot::detached(ServingTask::Svm, weights.clone());
        assert_eq!(svm.predict(x), 1.0);
        assert_eq!(svm.predict_with(x, Link::Identity), 2.0);
        let ls = ModelSnapshot::detached(ServingTask::LeastSquares, weights);
        assert_eq!(ls.predict(x), 2.0);
        assert_eq!(Link::Sign.apply(0.0), 0.0);
        assert_eq!(Link::Sign.apply(-3.5), -1.0);
    }

    #[test]
    fn batched_predict_scores_against_one_version() {
        let handle = ModelHandle::with_initial(ServingTask::Svm, vec![1.0, 0.0]).unwrap();
        handle.publish(&[1.0, -2.0]).unwrap();
        let batch = [
            FeatureVectorRef::Dense(&[1.0, 0.0]),
            FeatureVectorRef::Dense(&[0.0, 1.0]),
            FeatureVectorRef::Sparse {
                indices: &[1],
                values: &[1.0],
            },
        ];
        let mut out = vec![999.0; 1];
        let snap = handle.predict_batch(&batch, &mut out);
        assert_eq!(snap.version(), 1);
        assert_eq!(out, vec![1.0, -1.0, -1.0]);
        let mut margins = Vec::new();
        handle.predict_batch_with(&batch, Link::Identity, &mut margins);
        assert_eq!(margins, vec![1.0, -2.0, -2.0]);
    }

    #[test]
    fn guarded_predict_honors_cancellation() {
        use crate::governor::{GuardViolation, QueryGuard};

        let handle = ModelHandle::with_initial(ServingTask::LeastSquares, vec![2.0]).unwrap();
        let batch = [FeatureVectorRef::Dense(&[1.0]); 4];
        let mut out = Vec::new();

        let guard = QueryGuard::unlimited();
        let snap = handle.try_predict_batch(&guard, &batch, &mut out).unwrap();
        assert_eq!(snap.version(), 0);
        assert_eq!(out, vec![2.0; 4]);

        guard.cancel();
        let err = handle
            .try_predict_batch(&guard, &batch, &mut out)
            .unwrap_err();
        assert_eq!(err, GuardViolation::Cancelled);
        assert!(out.is_empty(), "cancelled before any row was scored");
    }

    #[test]
    fn sparse_features_past_the_dimension_contribute_zero() {
        let snap = ModelSnapshot::detached(ServingTask::LeastSquares, vec![2.0, 3.0]);
        let ragged = FeatureVectorRef::Sparse {
            indices: &[0, 7],
            values: &[1.0, 100.0],
        };
        assert_eq!(snap.predict(ragged), 2.0);
    }

    #[test]
    fn concurrent_publishes_and_reads_keep_versions_monotone() {
        let handle = ModelHandle::new(ServingTask::LeastSquares, 4);
        let publishes = 500u64;
        std::thread::scope(|scope| {
            let writer = handle.clone();
            scope.spawn(move || {
                for v in 1..=publishes {
                    writer.publish(&[v as f64; 4]).unwrap();
                }
            });
            for _ in 0..4 {
                let reader = handle.clone();
                scope.spawn(move || {
                    let mut last = 0u64;
                    while last < publishes {
                        let snap = reader.snapshot();
                        assert!(
                            snap.version() >= last,
                            "version went backwards: {} after {last}",
                            snap.version()
                        );
                        // A snapshot is internally consistent: its weights
                        // are exactly the ones published under its version.
                        let expected = snap.version() as f64;
                        assert!(snap.weights().iter().all(|&w| w == expected));
                        last = snap.version();
                    }
                });
            }
        });
        assert_eq!(handle.version(), publishes);
    }
}
