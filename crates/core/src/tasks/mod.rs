//! The analytics tasks of Figure 1(B).
//!
//! Each task implements [`crate::task::IgdTask`]; the per-task code is
//! essentially just the objective's gradient on one example (compare
//! [`logistic`] and [`svm`] — they differ by a handful of lines, exactly the
//! point Figure 4 makes).
//!
//! | Paper task | Module | Objective |
//! |---|---|---|
//! | Logistic Regression (LR) | [`logistic`] | `Σ log(1 + exp(−y_i wᵀx_i)) + µ‖w‖₁` |
//! | Classification (SVM) | [`svm`] | `Σ (1 − y_i wᵀx_i)₊ + µ‖w‖₁` |
//! | Recommendation (LMF) | [`lmf`] | `Σ_{(i,j)∈Ω} (L_iᵀR_j − M_ij)² + µ‖L,R‖²_F` |
//! | Labeling (CRF) | [`crf`] | `Σ_k [Σ_j w_j F_j(y_k, x_k) − log Z(x_k)]` |
//! | Kalman filters | [`kalman`] | `Σ_t ‖w_t − y_t‖² + λ‖w_t − w_{t−1}‖²` |
//! | Portfolio optimization | [`portfolio`] | `γ wᵀΣw − pᵀw  s.t. w ∈ Δ` |
//! | Least squares | [`least_squares`] | `½ Σ (wᵀx_i − y_i)²` (the CA-TX example) |

pub mod crf;
pub mod kalman;
pub mod least_squares;
pub mod lmf;
pub mod logistic;
pub mod portfolio;
pub mod svm;

pub use self::crf::CrfTask;
pub use self::kalman::KalmanTask;
pub use self::least_squares::LeastSquaresTask;
pub use self::lmf::LmfTask;
pub use self::logistic::LogisticRegressionTask;
pub use self::portfolio::PortfolioTask;
pub use self::svm::SvmTask;
