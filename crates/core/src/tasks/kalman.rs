//! Kalman-filter style time-series smoothing.
//!
//! Figure 1(B) lists Kalman filters with the objective
//! `Σ_t ‖C w_t − f(y_t)‖² + ‖w_t − A w_{t−1}‖²`: fit a latent state sequence
//! `w_1..w_T` to noisy observations while keeping consecutive states close.
//! We implement the common smoothing instantiation with `C = I`, `A = I` and
//! a tunable smoothness weight `λ` (the paper keeps the general matrices
//! abstract; the identity case already exercises the interesting property —
//! the model is the *whole state trajectory* and each observation's gradient
//! touches two adjacent states).
//!
//! Each tuple is `(t, observation vector)`; the flat model stacks the `T`
//! state vectors, so the dimension is `T · d`.

use bismarck_linalg::FeatureVectorRef;
use bismarck_storage::Tuple;

use crate::model::ModelStore;
use crate::task::{IgdTask, ProximalPolicy};

/// Kalman smoothing over `(timestep, observation)` tuples.
#[derive(Debug, Clone)]
pub struct KalmanTask {
    time_col: usize,
    obs_col: usize,
    horizon: usize,
    state_dim: usize,
    smoothness: f64,
}

impl KalmanTask {
    /// Create a smoothing task.
    ///
    /// * `time_col` — tuple position of the integer timestep in `0..horizon`;
    /// * `obs_col` — tuple position of the observation vector;
    /// * `horizon` — number of timesteps `T`;
    /// * `state_dim` — dimensionality `d` of each state/observation;
    /// * `smoothness` — the weight `λ` of `‖w_t − w_{t−1}‖²`.
    pub fn new(
        time_col: usize,
        obs_col: usize,
        horizon: usize,
        state_dim: usize,
        smoothness: f64,
    ) -> Self {
        assert!(
            horizon > 0 && state_dim > 0,
            "horizon and state_dim must be positive"
        );
        assert!(smoothness >= 0.0, "smoothness must be non-negative");
        KalmanTask {
            time_col,
            obs_col,
            horizon,
            state_dim,
            smoothness,
        }
    }

    /// Number of timesteps.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Per-state dimensionality.
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// Flat offset of component `k` of state `t`.
    #[inline]
    fn offset(&self, t: usize, k: usize) -> usize {
        t * self.state_dim + k
    }

    /// Borrow the observation view for a valid timestep — zero-copy.
    fn example<'t>(&self, tuple: &'t Tuple) -> Option<(usize, FeatureVectorRef<'t>)> {
        let t = tuple.get_int(self.time_col)?;
        if t < 0 || t as usize >= self.horizon {
            return None;
        }
        let obs = tuple.feature_view(self.obs_col)?;
        Some((t as usize, obs))
    }

    /// Extract the smoothed state at timestep `t` from a flat model.
    pub fn state(&self, model: &[f64], t: usize) -> Vec<f64> {
        (0..self.state_dim)
            .map(|k| model[self.offset(t, k)])
            .collect()
    }
}

impl IgdTask for KalmanTask {
    fn name(&self) -> &'static str {
        "KALMAN"
    }

    fn dimension(&self) -> usize {
        self.horizon * self.state_dim
    }

    fn gradient_step(&self, model: &mut dyn ModelStore, tuple: &Tuple, alpha: f64) {
        let Some((t, obs)) = self.example(tuple) else {
            return;
        };
        // Read observation components straight through the view: no dense
        // materialization per tuple (dense views index directly; sparse ones
        // binary-search their few stored entries).
        for k in 0..self.state_dim {
            let wt = model.read(self.offset(t, k));
            // Observation term: 2 (w_t - y_t)
            let mut grad_t = 2.0 * (wt - obs.get(k));
            // Smoothness with the previous state couples w_t and w_{t-1}.
            if t > 0 {
                let wprev = model.read(self.offset(t - 1, k));
                let diff = wt - wprev;
                grad_t += 2.0 * self.smoothness * diff;
                model.update(self.offset(t - 1, k), alpha * 2.0 * self.smoothness * diff);
            }
            model.update(self.offset(t, k), -alpha * grad_t);
        }
    }

    fn example_loss(&self, model: &[f64], tuple: &Tuple) -> f64 {
        match self.example(tuple) {
            Some((t, obs)) => {
                let mut loss = 0.0;
                for k in 0..self.state_dim {
                    let wt = model[self.offset(t, k)];
                    loss += (wt - obs.get(k)).powi(2);
                    if t > 0 {
                        let wprev = model[self.offset(t - 1, k)];
                        loss += self.smoothness * (wt - wprev).powi(2);
                    }
                }
                loss
            }
            None => 0.0,
        }
    }

    fn proximal_policy(&self) -> ProximalPolicy {
        ProximalPolicy::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DenseModelStore;
    use bismarck_storage::{Column, DataType, Schema, Table, Value};

    fn obs_table(observations: &[Vec<f64>]) -> Table {
        let schema = Schema::new(vec![
            Column::new("t", DataType::Int),
            Column::new("obs", DataType::DenseVec),
        ])
        .unwrap();
        let mut table = Table::new("ts", schema);
        for (t, obs) in observations.iter().enumerate() {
            table
                .insert(vec![Value::Int(t as i64), Value::from(obs.clone())])
                .unwrap();
        }
        table
    }

    fn train(task: &KalmanTask, table: &Table, epochs: usize, alpha: f64) -> Vec<f64> {
        let mut store = DenseModelStore::zeros(task.dimension());
        for _ in 0..epochs {
            for tuple in table.scan() {
                task.gradient_step(&mut store, tuple, alpha);
            }
        }
        store.into_vec()
    }

    #[test]
    fn without_smoothing_states_track_observations() {
        let obs = vec![vec![1.0], vec![5.0], vec![-2.0]];
        let table = obs_table(&obs);
        let task = KalmanTask::new(0, 1, 3, 1, 0.0);
        let model = train(&task, &table, 300, 0.1);
        for (t, o) in obs.iter().enumerate() {
            assert!((task.state(&model, t)[0] - o[0]).abs() < 1e-3);
        }
    }

    #[test]
    fn smoothing_pulls_states_towards_each_other() {
        let obs = vec![vec![0.0], vec![10.0]];
        let table = obs_table(&obs);
        let rough = train(&KalmanTask::new(0, 1, 2, 1, 0.0), &table, 400, 0.1);
        let smooth = train(&KalmanTask::new(0, 1, 2, 1, 5.0), &table, 400, 0.05);
        let gap_rough = (rough[1] - rough[0]).abs();
        let gap_smooth = (smooth[1] - smooth[0]).abs();
        assert!(
            gap_smooth < gap_rough,
            "smooth {gap_smooth} vs rough {gap_rough}"
        );
    }

    #[test]
    fn loss_decreases_with_training() {
        let obs: Vec<Vec<f64>> = (0..10).map(|t| vec![(t as f64).sin(), t as f64]).collect();
        let table = obs_table(&obs);
        let task = KalmanTask::new(0, 1, 10, 2, 1.0);
        let zero = vec![0.0; task.dimension()];
        let initial: f64 = table.scan().map(|tup| task.example_loss(&zero, tup)).sum();
        let model = train(&task, &table, 200, 0.05);
        let trained: f64 = table.scan().map(|tup| task.example_loss(&model, tup)).sum();
        assert!(trained < initial * 0.5);
    }

    #[test]
    fn out_of_range_timestep_ignored() {
        let schema = Schema::new(vec![
            Column::new("t", DataType::Int),
            Column::new("obs", DataType::DenseVec),
        ])
        .unwrap();
        let mut table = Table::new("ts", schema);
        table
            .insert(vec![Value::Int(99), Value::from(vec![1.0])])
            .unwrap();
        let task = KalmanTask::new(0, 1, 3, 1, 0.0);
        let mut store = DenseModelStore::zeros(task.dimension());
        task.gradient_step(&mut store, table.get(0).unwrap(), 0.1);
        assert!(store.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(
            task.example_loss(store.as_slice(), table.get(0).unwrap()),
            0.0
        );
    }

    #[test]
    fn accessors() {
        let task = KalmanTask::new(0, 1, 4, 3, 0.5);
        assert_eq!(task.dimension(), 12);
        assert_eq!(task.horizon(), 4);
        assert_eq!(task.state_dim(), 3);
        assert_eq!(task.name(), "KALMAN");
    }
}
