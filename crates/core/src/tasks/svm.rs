//! Linear support vector machine classification (SVM).
//!
//! Objective (Figure 1(B)): `Σ_i (1 − y_i wᵀx_i)₊ + µ‖w‖₁` — the hinge loss
//! with an optional L1 penalty; a ridge penalty is also supported since the
//! classic soft-margin SVM uses `(λ/2)‖w‖²`.
//!
//! The transition is the paper's Figure 4 `SVM_Transition` and differs from
//! logistic regression by two lines (the margin test replaces the sigmoid):
//!
//! ```c
//! wx = Dot_Product(w, e.x);
//! c  = stepsize * e.y;
//! if (1 - wx * e.y > 0) { Scale_And_Add(w, e.x, c); }
//! ```

use bismarck_linalg::projection::soft_threshold_vec;
use bismarck_linalg::FeatureVectorRef;
use bismarck_storage::Tuple;

use crate::model::ModelStore;
use crate::task::{IgdTask, ProximalPolicy};

/// Binary linear SVM over a feature-vector column and a ±1 label column.
#[derive(Debug, Clone)]
pub struct SvmTask {
    features_col: usize,
    label_col: usize,
    dimension: usize,
    l1: f64,
    l2: f64,
}

impl SvmTask {
    /// Create a task reading features from column `features_col` and the ±1
    /// label from `label_col`, with a model of `dimension` coefficients.
    pub fn new(features_col: usize, label_col: usize, dimension: usize) -> Self {
        SvmTask {
            features_col,
            label_col,
            dimension,
            l1: 0.0,
            l2: 0.0,
        }
    }

    /// Add an L1 penalty `µ‖w‖₁` (per-epoch soft thresholding).
    pub fn with_l1(mut self, mu: f64) -> Self {
        assert!(mu >= 0.0, "L1 penalty must be non-negative");
        self.l1 = mu;
        self
    }

    /// Add a ridge penalty `(λ/2)‖w‖²` (per-epoch shrinkage).
    pub fn with_l2(mut self, lambda: f64) -> Self {
        assert!(lambda >= 0.0, "L2 penalty must be non-negative");
        self.l2 = lambda;
        self
    }

    /// Borrow the example's feature view and label — zero-copy, so the
    /// per-tuple transition never touches the heap.
    fn example<'t>(&self, tuple: &'t Tuple) -> Option<(FeatureVectorRef<'t>, f64)> {
        let x = tuple.feature_view(self.features_col)?;
        let y = tuple.get_double(self.label_col)?;
        Some((x, y))
    }

    /// Decision value `wᵀx`; the predicted class is its sign.
    pub fn decision_value(model: &[f64], x: FeatureVectorRef<'_>) -> f64 {
        x.dot(model)
    }
}

impl IgdTask for SvmTask {
    fn name(&self) -> &'static str {
        "SVM"
    }

    fn dimension(&self) -> usize {
        self.dimension
    }

    fn gradient_step(&self, model: &mut dyn ModelStore, tuple: &Tuple, alpha: f64) {
        let Some((x, y)) = self.example(tuple) else {
            return;
        };
        // Figure 4 SVM_Transition: the margin test replaces LR's sigmoid.
        let wx = model.dot_view(x);
        if 1.0 - wx * y > 0.0 {
            model.axpy_view(x, alpha * y);
        }
    }

    fn example_loss(&self, model: &[f64], tuple: &Tuple) -> f64 {
        match self.example(tuple) {
            Some((x, y)) => (1.0 - y * x.dot(model)).max(0.0),
            None => 0.0,
        }
    }

    fn regularizer(&self, model: &[f64]) -> f64 {
        let l1 = self.l1 * model.iter().map(|v| v.abs()).sum::<f64>();
        let l2 = 0.5 * self.l2 * model.iter().map(|v| v * v).sum::<f64>();
        l1 + l2
    }

    fn proximal_step(&self, model: &mut [f64], alpha: f64) {
        if self.l2 > 0.0 {
            let shrink = 1.0 / (1.0 + alpha * self.l2);
            for v in model.iter_mut() {
                *v *= shrink;
            }
        }
        if self.l1 > 0.0 {
            soft_threshold_vec(model, alpha * self.l1);
        }
    }

    fn proximal_policy(&self) -> ProximalPolicy {
        if self.l1 > 0.0 || self.l2 > 0.0 {
            ProximalPolicy::PerEpoch
        } else {
            ProximalPolicy::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DenseModelStore;
    use bismarck_storage::{Column, DataType, Schema, Table, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Column::new("vec", DataType::DenseVec),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("svm", schema);
        let pts = [
            (vec![2.0, 1.0], 1.0),
            (vec![1.5, 2.0], 1.0),
            (vec![3.0, 0.5], 1.0),
            (vec![-2.0, -1.0], -1.0),
            (vec![-1.5, -2.0], -1.0),
            (vec![-3.0, -0.5], -1.0),
        ];
        for (x, y) in pts {
            t.insert(vec![Value::from(x), Value::Double(y)]).unwrap();
        }
        t
    }

    fn train(task: &SvmTask, table: &Table, epochs: usize, alpha: f64) -> Vec<f64> {
        let mut store = DenseModelStore::zeros(task.dimension());
        for _ in 0..epochs {
            for tuple in table.scan() {
                task.gradient_step(&mut store, tuple, alpha);
            }
            let mut model = store.into_vec();
            task.proximal_step(&mut model, alpha);
            store = DenseModelStore::new(model);
        }
        store.into_vec()
    }

    #[test]
    fn hinge_loss_decreases_and_classes_separate() {
        let t = table();
        let task = SvmTask::new(0, 1, 2);
        let zero = vec![0.0; 2];
        let initial: f64 = t.scan().map(|tup| task.example_loss(&zero, tup)).sum();
        let model = train(&task, &t, 50, 0.1);
        let trained: f64 = t.scan().map(|tup| task.example_loss(&model, tup)).sum();
        assert!(trained < initial);
        for tuple in t.scan() {
            let x = tuple.feature_view(0).unwrap();
            let y = tuple.get_double(1).unwrap();
            assert!(SvmTask::decision_value(&model, x) * y > 0.0);
        }
    }

    #[test]
    fn no_update_when_margin_satisfied() {
        let task = SvmTask::new(0, 1, 2);
        let schema = Schema::new(vec![
            Column::new("vec", DataType::DenseVec),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("svm1", schema);
        t.insert(vec![Value::from(vec![1.0, 0.0]), Value::Double(1.0)])
            .unwrap();
        // Model already classifies with margin > 1: w.x*y = 2 > 1.
        let mut store = DenseModelStore::new(vec![2.0, 0.0]);
        task.gradient_step(&mut store, t.get(0).unwrap(), 0.5);
        assert_eq!(store.as_slice(), &[2.0, 0.0]);
        // hinge loss is zero
        assert_eq!(task.example_loss(&[2.0, 0.0], t.get(0).unwrap()), 0.0);
    }

    #[test]
    fn update_applied_inside_margin() {
        let task = SvmTask::new(0, 1, 2);
        let schema = Schema::new(vec![
            Column::new("vec", DataType::DenseVec),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("svm1", schema);
        t.insert(vec![Value::from(vec![1.0, 0.0]), Value::Double(-1.0)])
            .unwrap();
        let mut store = DenseModelStore::new(vec![0.5, 0.0]);
        task.gradient_step(&mut store, t.get(0).unwrap(), 0.1);
        // negative example pushes the coefficient down
        assert!(store.read(0) < 0.5);
    }

    #[test]
    fn regularizers_and_policy() {
        let plain = SvmTask::new(0, 1, 2);
        assert_eq!(plain.proximal_policy(), ProximalPolicy::None);
        let reg = SvmTask::new(0, 1, 2).with_l1(1.0).with_l2(2.0);
        assert_eq!(reg.proximal_policy(), ProximalPolicy::PerEpoch);
        let w = vec![2.0, -2.0];
        // l1 = 1*4, l2 = 0.5*2*8 = 8
        assert!((reg.regularizer(&w) - 12.0).abs() < 1e-12);
        let mut wm = w.clone();
        reg.proximal_step(&mut wm, 0.5);
        assert!(wm[0].abs() < w[0].abs());
    }

    #[test]
    fn name_is_svm() {
        assert_eq!(SvmTask::new(0, 1, 2).name(), "SVM");
    }
}
