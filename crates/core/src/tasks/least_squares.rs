//! Linear least squares: `½ Σ_i (wᵀx_i − y_i)²`.
//!
//! This is the objective of Example 2.1 and of the 1-D CA-TX analysis
//! (Example 3.1 / Figure 5): with `x_i = 1` and labels `+1` for the first
//! half of the data and `−1` for the second, the optimum is the mean `w = 0`,
//! but IGD run in *clustered* order oscillates between `+1` and `−1` and
//! converges far more slowly than under a random order.

use bismarck_linalg::FeatureVectorRef;
use bismarck_storage::Tuple;

use crate::model::ModelStore;
use crate::task::{IgdTask, ProximalPolicy};

/// Linear least-squares regression over a feature-vector column and a
/// numeric target column.
#[derive(Debug, Clone)]
pub struct LeastSquaresTask {
    features_col: usize,
    label_col: usize,
    dimension: usize,
    l2: f64,
}

impl LeastSquaresTask {
    /// Create a task reading features from column `features_col` and the
    /// target from `label_col`, with a model of `dimension` coefficients.
    pub fn new(features_col: usize, label_col: usize, dimension: usize) -> Self {
        LeastSquaresTask {
            features_col,
            label_col,
            dimension,
            l2: 0.0,
        }
    }

    /// Add a ridge penalty `(λ/2)‖w‖²`.
    pub fn with_l2(mut self, lambda: f64) -> Self {
        assert!(lambda >= 0.0, "L2 penalty must be non-negative");
        self.l2 = lambda;
        self
    }

    /// Borrow the example's feature view and target — zero-copy.
    fn example<'t>(&self, tuple: &'t Tuple) -> Option<(FeatureVectorRef<'t>, f64)> {
        let x = tuple.feature_view(self.features_col)?;
        let y = tuple.get_double(self.label_col)?;
        Some((x, y))
    }

    /// Predicted value `wᵀx`.
    pub fn predict(model: &[f64], x: FeatureVectorRef<'_>) -> f64 {
        x.dot(model)
    }
}

impl IgdTask for LeastSquaresTask {
    fn name(&self) -> &'static str {
        "LS"
    }

    fn dimension(&self) -> usize {
        self.dimension
    }

    fn gradient_step(&self, model: &mut dyn ModelStore, tuple: &Tuple, alpha: f64) {
        let Some((x, y)) = self.example(tuple) else {
            return;
        };
        let residual = model.dot_view(x) - y;
        model.axpy_view(x, -alpha * residual);
    }

    fn example_loss(&self, model: &[f64], tuple: &Tuple) -> f64 {
        match self.example(tuple) {
            Some((x, y)) => 0.5 * (x.dot(model) - y).powi(2),
            None => 0.0,
        }
    }

    fn regularizer(&self, model: &[f64]) -> f64 {
        0.5 * self.l2 * model.iter().map(|v| v * v).sum::<f64>()
    }

    fn proximal_step(&self, model: &mut [f64], alpha: f64) {
        if self.l2 > 0.0 {
            let shrink = 1.0 / (1.0 + alpha * self.l2);
            for v in model.iter_mut() {
                *v *= shrink;
            }
        }
    }

    fn proximal_policy(&self) -> ProximalPolicy {
        if self.l2 > 0.0 {
            ProximalPolicy::PerEpoch
        } else {
            ProximalPolicy::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DenseModelStore;
    use bismarck_storage::{Column, DataType, Schema, Table, Value};

    /// Example 2.1: 2n points, x_i = 1, labels ±1. `clustered` puts all the
    /// positive labels before the negative ones (the CA-TX pathology);
    /// otherwise the labels alternate (a benign ordering).
    fn ca_tx_table(n: usize, clustered: bool) -> Table {
        let schema = Schema::new(vec![
            Column::new("vec", DataType::DenseVec),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("catx", schema);
        for i in 0..2 * n {
            let y = if clustered {
                if i < n {
                    1.0
                } else {
                    -1.0
                }
            } else if i % 2 == 0 {
                1.0
            } else {
                -1.0
            };
            t.insert(vec![Value::from(vec![1.0]), Value::Double(y)])
                .unwrap();
        }
        t
    }

    #[test]
    fn converges_to_mean_on_interleaved_ca_tx() {
        let t = ca_tx_table(50, false);
        let task = LeastSquaresTask::new(0, 1, 1);
        let mut store = DenseModelStore::new(vec![0.8]);
        // Diminishing step size, several epochs.
        for epoch in 0..200 {
            let alpha = 0.5 / (1.0 + epoch as f64);
            for tuple in t.scan() {
                task.gradient_step(&mut store, tuple, alpha);
            }
        }
        assert!(store.read(0).abs() < 0.05, "w = {}", store.read(0));
    }

    #[test]
    fn clustered_ca_tx_converges_much_more_slowly() {
        // The Figure 5 phenomenon: with the same diminishing schedule, the
        // clustered ordering is still far from the optimum (w = 0) when the
        // interleaved ordering has long since converged.
        let task = LeastSquaresTask::new(0, 1, 1);
        let mut end_of_epoch_w = [0.0f64; 2];
        for (slot, clustered) in [false, true].into_iter().enumerate() {
            let t = ca_tx_table(50, clustered);
            let mut store = DenseModelStore::new(vec![0.8]);
            for epoch in 0..50 {
                let alpha = 0.5 / (1.0 + epoch as f64);
                for tuple in t.scan() {
                    task.gradient_step(&mut store, tuple, alpha);
                }
            }
            end_of_epoch_w[slot] = store.read(0).abs();
        }
        assert!(
            end_of_epoch_w[1] > 5.0 * end_of_epoch_w[0],
            "clustered |w|={} should lag interleaved |w|={}",
            end_of_epoch_w[1],
            end_of_epoch_w[0]
        );
    }

    #[test]
    fn clustered_order_oscillates_within_epoch() {
        // After visiting only the positive half, w is pulled towards +1.
        let t = ca_tx_table(100, true);
        let task = LeastSquaresTask::new(0, 1, 1);
        let mut store = DenseModelStore::zeros(1);
        for tuple in t.scan().take(100) {
            task.gradient_step(&mut store, tuple, 0.2);
        }
        assert!(store.read(0) > 0.5);
        for tuple in t.scan().skip(100) {
            task.gradient_step(&mut store, tuple, 0.2);
        }
        assert!(store.read(0) < 0.0);
    }

    #[test]
    fn fits_a_linear_function() {
        // y = 2*x0 - x1
        let schema = Schema::new(vec![
            Column::new("vec", DataType::DenseVec),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("lin", schema);
        let xs = [[1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [2.0, 1.0], [0.5, 2.0]];
        for x in xs {
            let y = 2.0 * x[0] - x[1];
            t.insert(vec![Value::from(x.to_vec()), Value::Double(y)])
                .unwrap();
        }
        let task = LeastSquaresTask::new(0, 1, 2);
        let mut store = DenseModelStore::zeros(2);
        for _ in 0..500 {
            for tuple in t.scan() {
                task.gradient_step(&mut store, tuple, 0.05);
            }
        }
        let w = store.into_vec();
        assert!((w[0] - 2.0).abs() < 0.05, "w0 = {}", w[0]);
        assert!((w[1] + 1.0).abs() < 0.05, "w1 = {}", w[1]);
        let loss: f64 = t.scan().map(|tup| task.example_loss(&w, tup)).sum();
        assert!(loss < 1e-2);
    }

    #[test]
    fn ridge_shrinks_model_per_epoch() {
        let task = LeastSquaresTask::new(0, 1, 2).with_l2(1.0);
        assert_eq!(task.proximal_policy(), ProximalPolicy::PerEpoch);
        let mut w = vec![2.0, -2.0];
        task.proximal_step(&mut w, 1.0);
        assert_eq!(w, vec![1.0, -1.0]);
        assert!((task.regularizer(&[2.0, 0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn name_and_predict() {
        let task = LeastSquaresTask::new(0, 1, 2);
        assert_eq!(task.name(), "LS");
        let x = [1.0, 2.0];
        let view = FeatureVectorRef::Dense(&x);
        assert!((LeastSquaresTask::predict(&[3.0, 0.5], view) - 4.0).abs() < 1e-12);
    }
}
