//! Low-rank matrix factorization (LMF) for recommendation.
//!
//! Objective (Figure 1(B)):
//! `Σ_{(i,j)∈Ω} (L_iᵀ R_j − M_ij)² + µ‖L, R‖²_F`.
//!
//! The model is the pair of factor matrices `L (rows × rank)` and
//! `R (cols × rank)` stored as one flat vector `[L | R]`, so the same
//! shared-memory parallel machinery used for linear models applies: each
//! rating touches only `2·rank` coordinates, which is exactly the sparse
//! update pattern where Hogwild!-style NoLock updates shine.
//!
//! This problem is not convex, but as the paper notes it can still be solved
//! with IGD (following Gemulla et al.).

use bismarck_storage::Tuple;

use crate::model::ModelStore;
use crate::task::{IgdTask, ProximalPolicy};

/// Low-rank matrix factorization over `(row, col, rating)` tuples.
#[derive(Debug, Clone)]
pub struct LmfTask {
    row_col: usize,
    col_col: usize,
    rating_col: usize,
    rows: usize,
    cols: usize,
    rank: usize,
    mu: f64,
    init_scale: f64,
}

impl LmfTask {
    /// Create a factorization task.
    ///
    /// * `row_col`, `col_col`, `rating_col` — tuple positions of the row
    ///   index, column index and observed rating;
    /// * `rows`, `cols` — matrix dimensions;
    /// * `rank` — latent dimensionality.
    pub fn new(
        row_col: usize,
        col_col: usize,
        rating_col: usize,
        rows: usize,
        cols: usize,
        rank: usize,
    ) -> Self {
        assert!(rank > 0, "rank must be positive");
        LmfTask {
            row_col,
            col_col,
            rating_col,
            rows,
            cols,
            rank,
            mu: 0.0,
            init_scale: 0.1,
        }
    }

    /// Add Frobenius-norm regularization `µ‖L,R‖²_F`.
    pub fn with_regularization(mut self, mu: f64) -> Self {
        assert!(mu >= 0.0, "regularization must be non-negative");
        self.mu = mu;
        self
    }

    /// Override the magnitude of the deterministic factor initialization.
    pub fn with_init_scale(mut self, scale: f64) -> Self {
        self.init_scale = scale;
        self
    }

    /// Latent rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of rows in the factored matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns in the factored matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Offset of `L_i[k]` in the flat model.
    #[inline]
    fn l_offset(&self, i: usize, k: usize) -> usize {
        i * self.rank + k
    }

    /// Offset of `R_j[k]` in the flat model.
    #[inline]
    fn r_offset(&self, j: usize, k: usize) -> usize {
        self.rows * self.rank + j * self.rank + k
    }

    fn example(&self, tuple: &Tuple) -> Option<(usize, usize, f64)> {
        let i = tuple.get_int(self.row_col)?;
        let j = tuple.get_int(self.col_col)?;
        let m = tuple.get_double(self.rating_col)?;
        if i < 0 || j < 0 {
            return None;
        }
        let (i, j) = (i as usize, j as usize);
        if i >= self.rows || j >= self.cols {
            return None;
        }
        Some((i, j, m))
    }

    /// Predicted rating `L_i · R_j` from a flat model.
    pub fn predict(&self, model: &[f64], i: usize, j: usize) -> f64 {
        let mut acc = 0.0;
        for k in 0..self.rank {
            acc += model[self.l_offset(i, k)] * model[self.r_offset(j, k)];
        }
        acc
    }
}

impl IgdTask for LmfTask {
    fn name(&self) -> &'static str {
        "LMF"
    }

    fn dimension(&self) -> usize {
        (self.rows + self.cols) * self.rank
    }

    fn initial_model(&self) -> Vec<f64> {
        // A deterministic, non-degenerate initialization: small values that
        // vary with position so the factors are not collinear. (Zero
        // initialization is a saddle point of the factorization objective.)
        let mut model = vec![0.0; self.dimension()];
        for (idx, slot) in model.iter_mut().enumerate() {
            // A cheap hash spread into (0, 1), then scaled.
            let h = (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            *slot = self.init_scale * (unit - 0.5);
        }
        model
    }

    fn gradient_step(&self, model: &mut dyn ModelStore, tuple: &Tuple, alpha: f64) {
        let Some((i, j, m)) = self.example(tuple) else {
            return;
        };
        // error = L_i . R_j - M_ij
        let mut pred = 0.0;
        let mut li = Vec::with_capacity(self.rank);
        let mut rj = Vec::with_capacity(self.rank);
        for k in 0..self.rank {
            let l = model.read(self.l_offset(i, k));
            let r = model.read(self.r_offset(j, k));
            pred += l * r;
            li.push(l);
            rj.push(r);
        }
        let err = pred - m;
        for k in 0..self.rank {
            let grad_l = 2.0 * err * rj[k] + 2.0 * self.mu * li[k];
            let grad_r = 2.0 * err * li[k] + 2.0 * self.mu * rj[k];
            model.update(self.l_offset(i, k), -alpha * grad_l);
            model.update(self.r_offset(j, k), -alpha * grad_r);
        }
    }

    fn example_loss(&self, model: &[f64], tuple: &Tuple) -> f64 {
        match self.example(tuple) {
            Some((i, j, m)) => {
                let err = self.predict(model, i, j) - m;
                err * err
            }
            None => 0.0,
        }
    }

    fn regularizer(&self, model: &[f64]) -> f64 {
        self.mu * model.iter().map(|v| v * v).sum::<f64>()
    }

    fn proximal_policy(&self) -> ProximalPolicy {
        ProximalPolicy::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DenseModelStore;
    use bismarck_storage::{Column, DataType, Schema, Table, Value};

    fn rating_table(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Table {
        let schema = Schema::new(vec![
            Column::new("row", DataType::Int),
            Column::new("col", DataType::Int),
            Column::new("rating", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("ratings", schema);
        for i in 0..rows {
            for j in 0..cols {
                t.insert(vec![
                    Value::Int(i as i64),
                    Value::Int(j as i64),
                    Value::Double(f(i, j)),
                ])
                .unwrap();
            }
        }
        t
    }

    #[test]
    fn dimension_counts_both_factors() {
        let task = LmfTask::new(0, 1, 2, 10, 7, 3);
        assert_eq!(task.dimension(), (10 + 7) * 3);
        assert_eq!(task.rank(), 3);
        assert_eq!(task.rows(), 10);
        assert_eq!(task.cols(), 7);
    }

    #[test]
    fn initial_model_is_nonzero_and_deterministic() {
        let task = LmfTask::new(0, 1, 2, 4, 4, 2);
        let m1 = task.initial_model();
        let m2 = task.initial_model();
        assert_eq!(m1, m2);
        assert!(m1.iter().any(|&v| v != 0.0));
        assert!(m1.iter().all(|&v| v.abs() <= 0.05 + 1e-12));
    }

    #[test]
    fn factorizes_a_rank_one_matrix() {
        // M_ij = a_i * b_j is exactly rank 1; rank-2 factors can fit it.
        let a = [1.0, 2.0, 0.5, 1.5];
        let b = [1.0, -1.0, 2.0];
        let t = rating_table(4, 3, |i, j| a[i] * b[j]);
        let task = LmfTask::new(0, 1, 2, 4, 3, 2);
        let mut store = DenseModelStore::new(task.initial_model());
        for epoch in 0..400 {
            let alpha = 0.05 / (1.0 + 0.01 * epoch as f64);
            for tuple in t.scan() {
                task.gradient_step(&mut store, tuple, alpha);
            }
        }
        let model = store.into_vec();
        let loss: f64 = t.scan().map(|tup| task.example_loss(&model, tup)).sum();
        assert!(loss < 0.05, "loss = {loss}");
        assert!((task.predict(&model, 1, 2) - 4.0).abs() < 0.2);
    }

    #[test]
    fn regularization_contributes_to_objective() {
        let task = LmfTask::new(0, 1, 2, 2, 2, 1).with_regularization(0.5);
        let model = vec![1.0, 1.0, 2.0, 0.0];
        assert!((task.regularizer(&model) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_indices_are_ignored() {
        let task = LmfTask::new(0, 1, 2, 2, 2, 1);
        let schema = Schema::new(vec![
            Column::new("row", DataType::Int),
            Column::new("col", DataType::Int),
            Column::new("rating", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("bad", schema);
        t.insert(vec![Value::Int(5), Value::Int(0), Value::Double(1.0)])
            .unwrap();
        t.insert(vec![Value::Int(-1), Value::Int(0), Value::Double(1.0)])
            .unwrap();
        let init = task.initial_model();
        let mut store = DenseModelStore::new(init.clone());
        for tuple in t.scan() {
            task.gradient_step(&mut store, tuple, 0.1);
        }
        assert_eq!(store.as_slice(), init.as_slice());
        assert_eq!(task.example_loss(&init, t.get(0).unwrap()), 0.0);
    }

    #[test]
    fn gradient_step_touches_only_one_row_and_column() {
        let task = LmfTask::new(0, 1, 2, 3, 3, 2);
        let t = rating_table(1, 1, |_, _| 5.0);
        let init = task.initial_model();
        let mut store = DenseModelStore::new(init.clone());
        task.gradient_step(&mut store, t.get(0).unwrap(), 0.1);
        let updated = store.into_vec();
        let changed: Vec<usize> = updated
            .iter()
            .zip(init.iter())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        // Only L_0 (indices 0..2) and R_0 (indices 6..8) may change.
        assert!(
            changed.iter().all(|&i| i < 2 || (6..8).contains(&i)),
            "changed: {changed:?}"
        );
        assert!(!changed.is_empty());
    }
}
