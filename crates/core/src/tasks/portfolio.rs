//! Markowitz-style portfolio optimization with a simplex constraint.
//!
//! Figure 1(B): minimize a risk/return trade-off subject to the allocation
//! lying on the probability simplex `Δ = { w : Σ w_i = 1, w_i ≥ 0 }`. The
//! risk term `wᵀΣw` uses the sample covariance, which decomposes over the
//! historical return observations `r_i` as `Σ_i (wᵀ(r_i − μ))² / N`; that
//! decomposition is what makes the task an incremental-gradient program: each
//! tuple is one day's return vector, and its gradient step is followed by a
//! Euclidean projection onto the simplex — the proximal-point operator of
//! Appendix A.
//!
//! Per-example objective (with `γ` the risk-aversion weight, `p` the expected
//! return vector and `N` the number of observations):
//! `f_i(w) = γ (wᵀ(r_i − μ))² − (pᵀw) / N`.

use bismarck_linalg::projection::project_simplex;
use bismarck_linalg::FeatureVectorRef;
use bismarck_storage::Tuple;

use crate::model::ModelStore;
use crate::task::{IgdTask, ProximalPolicy};

/// Simplex-constrained portfolio optimization over daily-return tuples.
#[derive(Debug, Clone)]
pub struct PortfolioTask {
    returns_col: usize,
    num_assets: usize,
    expected_returns: Vec<f64>,
    mean_returns: Vec<f64>,
    risk_aversion: f64,
    num_observations: usize,
}

impl PortfolioTask {
    /// Create a portfolio task.
    ///
    /// * `returns_col` — tuple position of the per-day return vector;
    /// * `expected_returns` — the vector `p` of expected per-asset returns;
    /// * `mean_returns` — the historical mean `μ` used to centre the risk
    ///   term (often equal to `expected_returns`);
    /// * `risk_aversion` — the weight `γ` on the risk term;
    /// * `num_observations` — the number `N` of return tuples, used to scale
    ///   the return term so the full objective is `γ wᵀΣw − pᵀw`.
    pub fn new(
        returns_col: usize,
        expected_returns: Vec<f64>,
        mean_returns: Vec<f64>,
        risk_aversion: f64,
        num_observations: usize,
    ) -> Self {
        assert!(!expected_returns.is_empty(), "need at least one asset");
        assert_eq!(
            expected_returns.len(),
            mean_returns.len(),
            "expected and mean return vectors must agree in length"
        );
        assert!(risk_aversion >= 0.0, "risk aversion must be non-negative");
        assert!(num_observations > 0, "need at least one observation");
        let num_assets = expected_returns.len();
        PortfolioTask {
            returns_col,
            num_assets,
            expected_returns,
            mean_returns,
            risk_aversion,
            num_observations,
        }
    }

    /// Number of assets (model dimension).
    pub fn num_assets(&self) -> usize {
        self.num_assets
    }

    /// Borrow the day's return vector — zero-copy.
    fn example<'t>(&self, tuple: &'t Tuple) -> Option<FeatureVectorRef<'t>> {
        tuple.feature_view(self.returns_col)
    }

    /// Expected portfolio return `pᵀw` for an allocation.
    pub fn expected_return(&self, w: &[f64]) -> f64 {
        self.expected_returns
            .iter()
            .zip(w.iter())
            .map(|(p, w)| p * w)
            .sum()
    }
}

impl IgdTask for PortfolioTask {
    fn name(&self) -> &'static str {
        "PORTFOLIO"
    }

    fn dimension(&self) -> usize {
        self.num_assets
    }

    fn initial_model(&self) -> Vec<f64> {
        // The uniform allocation is feasible (lies on the simplex).
        vec![1.0 / self.num_assets as f64; self.num_assets]
    }

    fn gradient_step(&self, model: &mut dyn ModelStore, tuple: &Tuple, alpha: f64) {
        let Some(returns) = self.example(tuple) else {
            return;
        };
        // centred return c = r - mu; exposure = w . c
        let mut exposure = 0.0;
        for (i, r) in returns.iter_entries() {
            if i < self.num_assets {
                exposure += model.read(i) * (r - self.mean_returns[i]);
            }
        }
        // Risk gradient: 2 γ exposure · c  (only touches observed assets).
        let risk_coeff = 2.0 * self.risk_aversion * exposure;
        for (i, r) in returns.iter_entries() {
            if i < self.num_assets {
                model.update(i, -alpha * risk_coeff * (r - self.mean_returns[i]));
            }
        }
        // Return gradient: −p / N (dense but cheap: num_assets is small).
        let scale = alpha / self.num_observations as f64;
        for (i, &p) in self.expected_returns.iter().enumerate() {
            model.update(i, scale * p);
        }
    }

    fn example_loss(&self, model: &[f64], tuple: &Tuple) -> f64 {
        match self.example(tuple) {
            Some(returns) => {
                let mut exposure = 0.0;
                for (i, r) in returns.iter_entries() {
                    if i < self.num_assets {
                        exposure += model[i] * (r - self.mean_returns[i]);
                    }
                }
                self.risk_aversion * exposure * exposure
                    - self.expected_return(model) / self.num_observations as f64
            }
            None => 0.0,
        }
    }

    fn proximal_step(&self, model: &mut [f64], _alpha: f64) {
        project_simplex(model);
    }

    fn proximal_policy(&self) -> ProximalPolicy {
        // The simplex is a hard constraint, so project after every step.
        ProximalPolicy::PerStep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::igd::IgdAggregate;
    use bismarck_storage::{Column, DataType, Schema, Table, Value};
    use bismarck_uda::run_sequential;

    /// Three assets: asset 0 has high return and high variance, asset 1 low
    /// return and no variance, asset 2 moderate return and low variance.
    fn returns_table(days: usize) -> Table {
        let schema = Schema::new(vec![Column::new("returns", DataType::DenseVec)]).unwrap();
        let mut t = Table::new("returns", schema);
        for d in 0..days {
            let wiggle = if d % 2 == 0 { 1.0 } else { -1.0 };
            let r = vec![0.08 + 0.20 * wiggle, 0.01, 0.04 + 0.02 * wiggle];
            t.insert(vec![Value::from(r)]).unwrap();
        }
        t
    }

    fn task(days: usize, gamma: f64) -> PortfolioTask {
        let expected = vec![0.08, 0.01, 0.04];
        PortfolioTask::new(0, expected.clone(), expected, gamma, days)
    }

    fn train(task: &PortfolioTask, table: &Table, epochs: usize, alpha: f64) -> Vec<f64> {
        let mut model = task.initial_model();
        for _ in 0..epochs {
            let agg = IgdAggregate::new(task, alpha, model);
            model = run_sequential(&agg, table, None).model.into_vec();
        }
        model
    }

    #[test]
    fn allocation_stays_on_simplex() {
        let t = returns_table(40);
        let task = task(40, 1.0);
        let w = train(&task, &t, 30, 0.05);
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        assert!(w.iter().all(|&v| v >= -1e-9));
    }

    #[test]
    fn high_risk_aversion_avoids_volatile_asset() {
        let t = returns_table(40);
        let cautious = train(&task(40, 50.0), &t, 200, 0.1);
        let aggressive = train(&task(40, 0.001), &t, 200, 0.1);
        // The cautious portfolio holds less of volatile asset 0 than the
        // aggressive one, which chases expected return.
        assert!(
            cautious[0] < aggressive[0],
            "cautious {cautious:?} aggressive {aggressive:?}"
        );
        // With negligible risk aversion the return term pulls the allocation
        // above its uniform share of the highest-return asset; with strong
        // risk aversion the volatile asset is nearly eliminated.
        assert!(aggressive[0] > 0.5, "aggressive {aggressive:?}");
        assert!(cautious[0] < 0.2, "cautious {cautious:?}");
    }

    #[test]
    fn loss_reflects_risk_and_return() {
        let t = returns_table(4);
        let task = task(4, 1.0);
        let all_in_risky = vec![1.0, 0.0, 0.0];
        let all_in_safe = vec![0.0, 1.0, 0.0];
        let risky_loss: f64 = t
            .scan()
            .map(|tup| task.example_loss(&all_in_risky, tup))
            .sum();
        let safe_loss: f64 = t
            .scan()
            .map(|tup| task.example_loss(&all_in_safe, tup))
            .sum();
        // The risky asset has much higher variance, so with γ = 1 its total
        // objective is worse despite the higher expected return.
        assert!(risky_loss > safe_loss);
    }

    #[test]
    fn initial_model_is_uniform_and_feasible() {
        let task = task(10, 1.0);
        let w = task.initial_model();
        assert_eq!(w.len(), 3);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(task.proximal_policy(), ProximalPolicy::PerStep);
        assert_eq!(task.name(), "PORTFOLIO");
        assert_eq!(task.num_assets(), 3);
    }

    #[test]
    fn expected_return_helper() {
        let task = task(10, 1.0);
        assert!((task.expected_return(&[1.0, 0.0, 0.0]) - 0.08).abs() < 1e-12);
        assert!((task.expected_return(&[0.0, 0.0, 1.0]) - 0.04).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "agree in length")]
    fn mismatched_return_vectors_panic() {
        PortfolioTask::new(0, vec![0.1, 0.2], vec![0.1], 1.0, 10);
    }
}
